//! The TCP server: listener, accept loop, and lifecycle handle.

use crate::executor::{self, ExecutorConfig, Job};
use crate::metrics::Metrics;
use crate::repl::ReplState;
use crate::scrape;
use crate::session::run_session;
use crate::shard::{Lane, ShardRouter, ShardStats};
use elephant_repl::{follower, leader, FollowerConfig, FollowerStatus};
use etypes::SharedSpanRing;
use sqlengine::{ExecMode, FsyncPolicy, TxnDecisionLog, TXN_LOG_FILE};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Finished spans retained per shard ring. Large enough that a multi-span
/// distributed query tree survives a busy `TRACE` window, small enough to
/// bound memory (spans are a few hundred bytes each).
const SPAN_RING_CAPACITY: usize = 512;

/// Accept-loop poll interval for the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(50);

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Bound on the executor job queue — the backpressure threshold.
    pub queue_capacity: usize,
    /// In-memory (Umbra-like) engine profile when true, disk-based
    /// (PostgreSQL-like) when false.
    pub in_memory: bool,
    /// Default execution mode (`row`, `columnar`, or `auto`) for every
    /// session; clients override per session with `SET exec_mode`.
    pub exec_mode: ExecMode,
    /// Virtual files served to `INSPECT` pipelines' `read_csv` calls.
    pub files: Vec<(String, String)>,
    /// Directory for the write-ahead log and snapshots. `None` (the
    /// default) keeps the server volatile; `Some` makes every acknowledged
    /// DDL/DML durable and enables `CHECKPOINT`.
    pub data_dir: Option<PathBuf>,
    /// Fsync policy for the durable store (ignored without `data_dir`).
    pub fsync: FsyncPolicy,
    /// Log commands slower than this many microseconds to stderr, with
    /// their operator profile. `None` (the default) disables the log.
    pub slow_query_us: Option<u64>,
    /// Cancel statements cooperatively after this many milliseconds with a
    /// retryable `ERR_TIMEOUT`. `None` (the default) lets statements run
    /// unbounded.
    pub statement_timeout_ms: Option<u64>,
    /// Bind a replication listener here (leader mode) and stream committed
    /// WAL frames to every follower that connects. Requires `data_dir`.
    /// Use port 0 to let the OS pick (tests do).
    pub repl_addr: Option<String>,
    /// Follow the leader replicating at this address (follower mode): the
    /// engine stays volatile, pins itself read-only, and applies the
    /// leader's WAL. Mutually exclusive with `data_dir` and `repl_addr`.
    pub replicate_from: Option<String>,
    /// Checkpoint automatically once the WAL grows past this many bytes
    /// (counted after each acknowledged write). `None` disables.
    pub auto_checkpoint_wal_bytes: Option<u64>,
    /// Engine shards. Each shard is an independent engine on its own
    /// executor thread (durable servers give each its own WAL/snapshot
    /// subdirectory); tables are routed to shards by name hash. Must be at
    /// least 1; values above 1 are mutually exclusive with replication.
    pub shards: usize,
    /// Bind a plain-HTTP metrics listener here and serve the Prometheus
    /// text exposition on `GET /metrics`. `None` (the default) disables
    /// the listener. Use port 0 to let the OS pick (tests do).
    pub metrics_addr: Option<String>,
    /// Largest result body (bytes) a protocol-v2 session will buffer for
    /// one response. Bodies above [`crate::proto2::V2_CHUNK`] stream as
    /// chunks; bodies above this cap are refused with `ERR_OVERSIZED`
    /// instead of being buffered, bounding per-response server memory.
    /// v1 sessions are unaffected (their byte-level behavior is frozen).
    pub max_result_buffer_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            queue_capacity: 64,
            in_memory: true,
            exec_mode: ExecMode::default(),
            files: Vec::new(),
            data_dir: None,
            fsync: FsyncPolicy::Always,
            slow_query_us: None,
            statement_timeout_ms: None,
            repl_addr: None,
            replicate_from: None,
            auto_checkpoint_wal_bytes: None,
            shards: 1,
            metrics_addr: None,
            max_result_buffer_bytes: 64 << 20,
        }
    }
}

impl ServerConfig {
    /// Pre-register the standard synthetic pipeline datasets under the file
    /// names the paper's pipelines read (`patients.csv`, `histories.csv`,
    /// `compas_train.csv`, ... , `taxi.csv`), so `INSPECT` works for the
    /// stock pipelines out of the box.
    pub fn with_standard_pipeline_data(mut self, rows: usize, seed: u64) -> Self {
        let test_rows = (rows / 3).max(30);
        self.files = vec![
            ("patients.csv".into(), datagen::patients_csv(rows, seed)),
            ("histories.csv".into(), datagen::histories_csv(rows, seed)),
            ("compas_train.csv".into(), datagen::compas_csv(rows, seed)),
            (
                "compas_test.csv".into(),
                datagen::compas_csv(test_rows, seed + 1),
            ),
            ("adult_train.csv".into(), datagen::adult_csv(rows, seed)),
            (
                "adult_test.csv".into(),
                datagen::adult_csv(test_rows, seed + 1),
            ),
            ("taxi.csv".into(), datagen::taxi_csv(rows, seed)),
        ];
        self
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// send `SHUTDOWN` (or call [`ServerHandle::shutdown`]) and [`join`].
///
/// [`join`]: ServerHandle::join
pub struct ServerHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    accept_join: Option<JoinHandle<()>>,
    scrape_join: Option<JoinHandle<()>>,
    executor_joins: Vec<JoinHandle<()>>,
    repl_leader: Option<leader::LeaderHandle>,
    follower_join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the OS-assigned port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The metrics listener's bound address, when one was configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The replication listener's bound address (leader mode only).
    pub fn repl_addr(&self) -> Option<SocketAddr> {
        self.repl_leader.as_ref().map(|l| l.local_addr())
    }

    /// Shared server counters (live view).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// Trigger the drain without a client (same effect as `SHUTDOWN`).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Wait for the drain to finish: the accept loop stops, every session
    /// runs to completion, then each shard's executor exhausts its queue
    /// and exits.
    pub fn join(mut self) {
        if let Some(h) = self.accept_join.take() {
            let _ = h.join();
        }
        // The scrape thread polls the same shutdown flag the accept loop
        // just observed; it holds only a Weak router reference, so it never
        // keeps the executors alive.
        if let Some(h) = self.scrape_join.take() {
            let _ = h.join();
        }
        // The follower loop must drop its queue sender before the executor
        // can observe disconnection and exit.
        if let Some(h) = self.follower_join.take() {
            let _ = h.join();
        }
        for h in self.executor_joins.drain(..) {
            let _ = h.join();
        }
        if let Some(l) = self.repl_leader.take() {
            l.join();
        }
    }
}

/// Bind and start serving; returns immediately with a [`ServerHandle`].
pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
    if config.replicate_from.is_some() && config.data_dir.is_some() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "follower mode is volatile — it bootstraps from the leader; drop --data-dir",
        ));
    }
    if config.replicate_from.is_some() && config.repl_addr.is_some() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "a server is a leader or a follower, not both",
        ));
    }
    if config.repl_addr.is_some() && config.data_dir.is_none() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "replication streams the WAL; a leader needs --data-dir",
        ));
    }
    if config.shards == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "a server needs at least one shard (--shards 1)",
        ));
    }
    if config.shards > 1 && (config.repl_addr.is_some() || config.replicate_from.is_some()) {
        // WAL shipping replicates exactly one log; a sharded server has
        // one per shard. Combining them is follow-up work.
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "replication and --shards > 1 are mutually exclusive",
        ));
    }
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let follower_status = config
        .replicate_from
        .as_ref()
        .map(|_| Arc::new(FollowerStatus::default()));
    let repl = Arc::new(match (&config.replicate_from, &config.repl_addr) {
        (Some(upstream), _) => ReplState::follower(
            upstream.clone(),
            Arc::clone(follower_status.as_ref().expect("status built above")),
        ),
        (None, Some(_)) => ReplState::leader(),
        (None, None) => ReplState::standalone(),
    });

    let metrics = Arc::new(Metrics::default());
    let shutdown = Arc::new(AtomicBool::new(false));
    // The coordinator's 2PC decision log lives at the top of the data
    // directory (beside the per-shard subdirectories) and must be open
    // BEFORE any shard recovers: each shard's recovery resolves in-doubt
    // prepared groups against the replayed verdict map.
    let txn_log = match &config.data_dir {
        Some(dir) if config.shards > 1 => {
            std::fs::create_dir_all(dir)?;
            Some(
                TxnDecisionLog::open(&dir.join(TXN_LOG_FILE))
                    .map_err(|e| io::Error::other(format!("txn decision log: {e}")))?,
            )
        }
        _ => None,
    };
    let txn_decisions: HashMap<u64, bool> = txn_log
        .as_ref()
        .map(TxnDecisionLog::decisions)
        .unwrap_or_default();
    // One executor (engine + WAL directory) per shard. With one shard the
    // layout is unchanged from pre-sharding servers — existing data dirs
    // keep working; with more, each shard gets its own subdirectory.
    let mut lanes: Vec<Lane> = Vec::with_capacity(config.shards);
    let mut executor_joins: Vec<JoinHandle<()>> = Vec::with_capacity(config.shards);
    let mut recovered_per_shard: Vec<Vec<String>> = Vec::with_capacity(config.shards);
    let mut wal_handle = None;
    for shard_id in 0..config.shards {
        let data_dir = config.data_dir.as_ref().map(|dir| {
            if config.shards > 1 {
                dir.join(format!("shard-{shard_id}"))
            } else {
                dir.clone()
            }
        });
        let lane_stats = Arc::new(ShardStats::default());
        // The span ring is shared between this shard's executor (writer)
        // and the router (the TRACE reader / root-span owner).
        let ring = Arc::new(SharedSpanRing::new(SPAN_RING_CAPACITY));
        let (tx, join, wal, recovered) = executor::spawn(
            ExecutorConfig {
                in_memory: config.in_memory,
                exec_mode: config.exec_mode,
                files: config.files.clone(),
                queue_capacity: config.queue_capacity,
                data_dir,
                fsync: config.fsync,
                slow_query_us: config.slow_query_us,
                statement_timeout_ms: config.statement_timeout_ms,
                auto_checkpoint_wal_bytes: config.auto_checkpoint_wal_bytes,
                repl: Arc::clone(&repl),
                shard_id,
                lane: Arc::clone(&lane_stats),
                ring: Arc::clone(&ring),
                txn_decisions: txn_decisions.clone(),
            },
            Arc::clone(&metrics),
            Arc::clone(&shutdown),
        )?;
        if shard_id == 0 {
            // Replication (shards == 1 only) ships shard 0's WAL.
            wal_handle = wal.clone();
        }
        lanes.push(Lane {
            tx,
            stats: lane_stats,
            ring,
            wal,
        });
        executor_joins.push(join);
        recovered_per_shard.push(recovered);
    }
    let tx = lanes[0].tx.clone();
    let router = Arc::new(ShardRouter::new(lanes, Arc::clone(&metrics), txn_log));
    for (shard_id, names) in recovered_per_shard.into_iter().enumerate() {
        router.seed(shard_id, &names);
    }

    // The metrics listener holds only a Weak router reference: the accept
    // loop owns the strong Arc, and dropping it at drain end must remain
    // what lets the executors observe disconnection and exit.
    let (metrics_addr, scrape_join) = match &config.metrics_addr {
        Some(bind) => {
            let metrics_listener = TcpListener::bind(bind)?;
            let bound = metrics_listener.local_addr()?;
            let join = scrape::spawn(
                metrics_listener,
                Arc::downgrade(&router),
                Arc::clone(&shutdown),
            )?;
            (Some(bound), Some(join))
        }
        None => (None, None),
    };

    let repl_leader = match &config.repl_addr {
        Some(bind) => {
            let wal = wal_handle.expect("leader mode requires a durable engine");
            let repl_listener = TcpListener::bind(bind)?;
            let handle = leader::spawn(repl_listener, wal, Arc::clone(&shutdown))?;
            repl.set_registry(handle.registry());
            Some(handle)
        }
        None => None,
    };

    let follower_join = match (&config.replicate_from, follower_status) {
        (Some(upstream), Some(status)) => {
            // Shipped ops ride the executor queue like client commands; the
            // closure's sender clone keeps the executor alive until the
            // follower loop observes shutdown and exits.
            let repl_tx = tx.clone();
            Some(follower::spawn(
                FollowerConfig::new(upstream.clone()),
                status,
                Arc::clone(&shutdown),
                move |op| {
                    let (reply_tx, reply_rx) = mpsc::channel();
                    repl_tx
                        .send(Job::Repl {
                            op,
                            reply: reply_tx,
                        })
                        .map_err(|_| "executor is gone".to_string())?;
                    reply_rx
                        .recv()
                        .map_err(|_| "executor dropped the repl op".to_string())?
                },
            ))
        }
        _ => None,
    };

    let accept_metrics = Arc::clone(&metrics);
    let accept_shutdown = Arc::clone(&shutdown);
    let max_result_buffer = config.max_result_buffer_bytes;
    // The accept loop owns the router (and with it every lane sender):
    // dropping it at drain end is what lets the executors observe
    // disconnection and exit. It must never be stored in the handle.
    let accept_join = thread::Builder::new()
        .name("elephant-accept".into())
        .spawn(move || {
            let mut sessions: Vec<JoinHandle<()>> = Vec::new();
            let mut next_session: u64 = 1;
            while !accept_shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let id = next_session;
                        next_session += 1;
                        accept_metrics
                            .sessions_opened
                            .fetch_add(1, Ordering::Relaxed);
                        let router = Arc::clone(&router);
                        let metrics = Arc::clone(&accept_metrics);
                        let shutdown = Arc::clone(&accept_shutdown);
                        let result_cap = max_result_buffer;
                        match thread::Builder::new()
                            .name(format!("elephant-session-{id}"))
                            .spawn(move || {
                                run_session(stream, id, router, metrics, shutdown, result_cap)
                            }) {
                            Ok(h) => sessions.push(h),
                            Err(_) => {
                                accept_metrics
                                    .sessions_closed
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        // Opportunistically reap finished sessions so the
                        // vector does not grow with server lifetime.
                        sessions.retain(|h| !h.is_finished());
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => thread::sleep(ACCEPT_POLL),
                }
            }
            // Draining: no new connections; wait for live sessions, then
            // drop the router (every lane sender with it) so the executors
            // can finish their queues and exit.
            for h in sessions {
                let _ = h.join();
            }
            drop(router);
        })
        .expect("spawn accept thread");

    Ok(ServerHandle {
        addr,
        metrics_addr,
        metrics,
        shutdown,
        accept_join: Some(accept_join),
        scrape_join,
        executor_joins,
        repl_leader,
        follower_join,
    })
}
