//! The shard router: table-affine statement routing over N executor lanes.
//!
//! With `--shards N` the server runs N independent engines, each on its own
//! executor thread over its own WAL/snapshot directory. Tables are assigned
//! to shards by a stable FNV-1a hash of the table name ([`shard_of`]), so
//! placement is deterministic across restarts and across servers with the
//! same shard count; DDL additionally registers ownership in a shared
//! catalog map (needed for views, whose home shard is the shard of the
//! tables they read, not of their own name).
//!
//! Routing rules, in order:
//!
//! * Statements whose dependencies resolve to **one** shard (the common
//!   case) are forwarded to that shard's lane unchanged.
//! * **Read-only** statements spanning several shards run scatter-gather:
//!   the foreign shards export the touched tables as images, the
//!   coordinator shard (the one owning most of the touched names) installs
//!   them as WAL-bypassing foreign tables, runs the full query locally, and
//!   drops them again. Results are byte-identical to a single-shard server
//!   because one engine executes the complete plan over identical tables
//!   (ctids included).
//! * **Writes** spanning several shards are refused with the typed
//!   [`codes::CROSS_SHARD`] error — there is no distributed transaction
//!   (yet; see `docs/SHARDING.md` for the follow-up).
//! * SQL the router cannot parse falls back to shard 0 (the coordinator
//!   shard), counted in `shard_fallbacks`, where the engine produces the
//!   canonical error text.
//!
//! Sessions are shard-agnostic: every session talks to the router, which
//! also owns admission control (bounded wait for a queue slot, then the
//! retryable `ERR_BUSY` naming the saturated shard so clients can salt
//! their backoff per shard).

use crate::executor::{Job, Reply, ShardSnapshot};
use crate::metrics::Metrics;
use crate::protocol::{codes, Command};
use sqlengine::{parse_sql, statement_deps, TableImage};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How long admission control waits for a queue slot before refusing the
/// command with [`codes::BUSY`]. Short: the point is to convert unbounded
/// head-of-line blocking into a bounded, retryable signal.
const ADMISSION_WAIT: Duration = Duration::from_millis(250);

/// Sleep between queue retries inside the admission wait.
const ADMISSION_POLL: Duration = Duration::from_millis(10);

/// The shard owning `name`: FNV-1a over the bytes, mod the shard count.
/// Deterministic, so base-table placement needs no coordination and
/// survives restarts (recovery re-seeds ownership from each shard's own
/// catalog, which holds exactly the tables hashed to it).
pub fn shard_of(name: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h % shards.max(1) as u64) as usize
}

/// Per-shard gauges rendered as `shard{k}.*` STATS lines. Shared between
/// the router (increments on admit) and the executor thread (decrements on
/// dequeue, counts processed commands).
#[derive(Debug, Default)]
pub(crate) struct ShardStats {
    /// Jobs queued for (or running on) this shard's executor.
    pub queue_depth: AtomicU64,
    /// Jobs this shard's executor has dequeued over its lifetime.
    pub commands: AtomicU64,
}

impl ShardStats {
    /// Decrement the queue gauge, saturating at zero (unit tests feed jobs
    /// straight into the queue without going through the router).
    pub fn dec_queue_depth(&self) {
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
    }
}

/// One shard's submission endpoint.
pub(crate) struct Lane {
    /// The executor's bounded job queue.
    pub tx: SyncSender<Job>,
    /// Gauges shared with the executor thread.
    pub stats: Arc<ShardStats>,
}

/// What the ownership map knows about a name.
#[derive(Debug, Clone, Copy)]
struct Owner {
    shard: usize,
    is_view: bool,
}

/// Whether an admitted job counts into the server-wide queue gauge (client
/// commands) or only into the lane gauge (internal scatter-gather legs).
#[derive(Clone, Copy, PartialEq)]
enum Admission {
    Client,
    Internal,
}

/// How a statement's dependencies resolved against the ownership map.
enum Resolution {
    /// The router could not parse the SQL; shard 0's engine will produce
    /// the canonical error text.
    Unparsed,
    /// All dependencies live on one shard (or the statement touches
    /// nothing known — constants, unknown names).
    Single {
        shard: usize,
        changes: Vec<OwnershipChange>,
    },
    /// Dependencies span shards; `resolved` maps each known touched name
    /// to its owner.
    Multi {
        resolved: BTreeMap<String, Owner>,
        any_write: bool,
    },
}

/// Ownership-map updates applied after the owning shard acknowledged the
/// statement.
enum OwnershipChange {
    Create { name: String, is_view: bool },
    Drop { name: String },
}

/// Routes commands from shard-agnostic sessions to shard-affine executors.
pub(crate) struct ShardRouter {
    lanes: Vec<Lane>,
    /// Shared catalog map: which shard owns each table/view name.
    ownership: Mutex<HashMap<String, Owner>>,
    /// Which shard holds each prepared statement, keyed by (session, name).
    prepare_shards: Mutex<HashMap<(u64, String), usize>>,
    /// Statements routed to shard 0 because the router could not parse
    /// them.
    fallbacks: AtomicU64,
    /// Cross-shard read-only queries answered via export + gather.
    scatter_gathers: AtomicU64,
    /// Cross-shard writes refused with [`codes::CROSS_SHARD`].
    cross_shard_rejects: AtomicU64,
    metrics: Arc<Metrics>,
}

impl ShardRouter {
    /// Build a router over already-spawned lanes.
    pub fn new(lanes: Vec<Lane>, metrics: Arc<Metrics>) -> ShardRouter {
        assert!(!lanes.is_empty(), "a server needs at least one shard");
        ShardRouter {
            lanes,
            ownership: Mutex::new(HashMap::new()),
            prepare_shards: Mutex::new(HashMap::new()),
            fallbacks: AtomicU64::new(0),
            scatter_gathers: AtomicU64::new(0),
            cross_shard_rejects: AtomicU64::new(0),
            metrics,
        }
    }

    /// Register recovered base tables as owned by `shard` (called once per
    /// shard at startup, before any session exists). Views are volatile —
    /// they are never recovered, so recovery seeding is tables only.
    pub fn seed(&self, shard: usize, names: &[String]) {
        let mut own = self.ownership.lock().expect("ownership lock");
        for name in names {
            own.insert(
                name.clone(),
                Owner {
                    shard,
                    is_view: false,
                },
            );
        }
    }

    /// Route one client command and wait for its reply.
    pub fn submit(&self, session: u64, command: Command) -> Reply {
        if command == Command::Stats {
            return self.stats(session);
        }
        if self.lanes.len() == 1 {
            return self.run_on(0, session, command);
        }
        match command {
            Command::Query(_) | Command::Explain { .. } => self.route_sql(session, command),
            Command::Prepare { .. } => self.route_prepare(session, command),
            Command::Execute(ref name) => {
                let shard = self.prepared_shard(session, name);
                self.run_on(shard, session, command)
            }
            Command::Deallocate(ref name) => {
                let shard = self.prepared_shard(session, name);
                let key = (session, name.clone());
                let reply = self.run_on(shard, session, command);
                if reply.is_ok() {
                    self.prepare_shards
                        .lock()
                        .expect("prepare lock")
                        .remove(&key);
                }
                reply
            }
            Command::Set { .. } => self.broadcast_set(session, command),
            Command::Checkpoint => self.broadcast_checkpoint(session),
            // Single-shard surfaces: trace spans, inspection scratch
            // tables, replication topology, and the shared drain flag all
            // live on (or are reachable from) shard 0.
            Command::Trace(_)
            | Command::Inspect { .. }
            | Command::Replica
            | Command::Lag
            | Command::Shutdown => self.run_on(0, session, command),
            Command::Stats => unreachable!("handled above"),
        }
    }

    /// A session disconnected: drop its prepared statements and exec-mode
    /// override on every shard.
    pub fn close_session(&self, session: u64) {
        for lane in &self.lanes {
            let _ = lane.tx.send(Job::CloseSession { session });
        }
        self.prepare_shards
            .lock()
            .expect("prepare lock")
            .retain(|(s, _), _| *s != session);
        self.metrics.sessions_closed.fetch_add(1, Ordering::Relaxed);
    }

    fn prepared_shard(&self, session: u64, name: &str) -> usize {
        self.prepare_shards
            .lock()
            .expect("prepare lock")
            .get(&(session, name.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Admit one job to a shard's queue within the bounded admission wait.
    fn admit(
        &self,
        shard: usize,
        mut job: Job,
        admission: Admission,
    ) -> Result<(), (&'static str, String)> {
        let lane = &self.lanes[shard];
        if admission == Admission::Client {
            self.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
        }
        lane.stats.queue_depth.fetch_add(1, Ordering::Relaxed);
        let undo = |busy: bool| {
            if admission == Admission::Client {
                self.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
            }
            lane.stats.dec_queue_depth();
            if busy {
                self.metrics.busy_rejections.fetch_add(1, Ordering::Relaxed);
            }
        };
        let deadline = Instant::now() + ADMISSION_WAIT;
        loop {
            match lane.tx.try_send(job) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Full(j)) => {
                    if Instant::now() >= deadline {
                        undo(true);
                        return Err((
                            codes::BUSY,
                            format!(
                                "executor queue full after {} ms (shard={shard}); retry with backoff",
                                ADMISSION_WAIT.as_millis()
                            ),
                        ));
                    }
                    job = j;
                    thread::sleep(ADMISSION_POLL);
                }
                Err(TrySendError::Disconnected(_)) => {
                    undo(false);
                    return Err((codes::INTERNAL, "executor unavailable".into()));
                }
            }
        }
    }

    /// Run one command on one shard and wait for the reply.
    fn run_on(&self, shard: usize, session: u64, command: Command) -> Reply {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.admit(
            shard,
            Job::Command {
                session,
                command,
                reply: reply_tx,
            },
            Admission::Client,
        )?;
        reply_rx
            .recv()
            .map_err(|_| (codes::INTERNAL, "executor dropped the job".to_string()))?
    }

    /// Resolve the dependency set of a (possibly `;`-separated) SQL text
    /// against the ownership map.
    fn resolve(&self, sql: &str) -> Resolution {
        let stmts = match parse_sql(sql) {
            Ok(stmts) => stmts,
            Err(_) => return Resolution::Unparsed,
        };
        let n = self.lanes.len();
        let mut resolved: BTreeMap<String, Owner> = BTreeMap::new();
        let mut targets: BTreeSet<usize> = BTreeSet::new();
        let mut changes: Vec<OwnershipChange> = Vec::new();
        let mut any_write = false;
        let own = self.ownership.lock().expect("ownership lock");
        for stmt in &stmts {
            let deps = statement_deps(stmt);
            any_write |= deps.is_write();
            for w in &deps.writes {
                let created_view = deps
                    .creates
                    .as_ref()
                    .is_some_and(|(name, is_view)| *is_view && name == w);
                let owner = match own.get(w) {
                    Some(o) => Some(*o),
                    // A new view has no shard of its own: it lives with
                    // the tables it reads (resolved below), so the owning
                    // shard can plan it locally.
                    None if created_view => None,
                    None => Some(Owner {
                        shard: shard_of(w, n),
                        is_view: false,
                    }),
                };
                if let Some(o) = owner {
                    resolved.insert(w.clone(), o);
                    targets.insert(o.shard);
                }
            }
            for r in &deps.reads {
                // Unknown pure reads are ignored on purpose: the routed
                // shard's binder produces the canonical "unknown table"
                // error text, identical to a single-shard server's.
                if let Some(o) = own.get(r) {
                    resolved.insert(r.clone(), *o);
                    targets.insert(o.shard);
                }
            }
            if let Some((name, is_view)) = &deps.creates {
                changes.push(OwnershipChange::Create {
                    name: name.clone(),
                    is_view: *is_view,
                });
            }
            if let Some((name, _)) = &deps.drops {
                changes.push(OwnershipChange::Drop { name: name.clone() });
            }
        }
        drop(own);
        match targets.len() {
            0 => Resolution::Single { shard: 0, changes },
            1 => Resolution::Single {
                shard: *targets.iter().next().expect("one target"),
                changes,
            },
            _ => Resolution::Multi {
                resolved,
                any_write,
            },
        }
    }

    /// Route a `QUERY` or `EXPLAIN` by its dependency set.
    fn route_sql(&self, session: u64, command: Command) -> Reply {
        let sql = match &command {
            Command::Query(sql) | Command::Explain { sql, .. } => sql.clone(),
            _ => unreachable!("route_sql only sees QUERY/EXPLAIN"),
        };
        match self.resolve(&sql) {
            Resolution::Unparsed => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                self.run_on(0, session, command)
            }
            Resolution::Single { shard, changes } => {
                let reply = self.run_on(shard, session, command);
                if reply.is_ok() {
                    self.apply_changes(shard, changes);
                }
                reply
            }
            Resolution::Multi {
                resolved,
                any_write,
            } => {
                if any_write {
                    self.cross_shard_rejects.fetch_add(1, Ordering::Relaxed);
                    return Err((
                        codes::CROSS_SHARD,
                        format!(
                            "statement writes across shards ({}); cross-shard writes are \
                             unsupported — keep co-written tables on one shard",
                            render_placement(&resolved)
                        ),
                    ));
                }
                self.scatter_gather(session, command, &resolved)
            }
        }
    }

    /// Route a `PREPARE`: prepared statements are pinned to one shard.
    fn route_prepare(&self, session: u64, command: Command) -> Reply {
        let (name, sql) = match &command {
            Command::Prepare { name, sql } => (name.clone(), sql.clone()),
            _ => unreachable!("route_prepare only sees PREPARE"),
        };
        let shard = match self.resolve(&sql) {
            Resolution::Unparsed => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                0
            }
            Resolution::Single { shard, .. } => shard,
            Resolution::Multi { resolved, .. } => {
                self.cross_shard_rejects.fetch_add(1, Ordering::Relaxed);
                return Err((
                    codes::CROSS_SHARD,
                    format!(
                        "prepared statements are single-shard; this one reads across \
                         shards ({})",
                        render_placement(&resolved)
                    ),
                ));
            }
        };
        let reply = self.run_on(shard, session, command);
        if reply.is_ok() {
            self.prepare_shards
                .lock()
                .expect("prepare lock")
                .insert((session, name), shard);
        }
        reply
    }

    /// Answer a cross-shard read-only query: export every foreign table to
    /// the coordinator shard, run the whole query there, drop the copies.
    fn scatter_gather(
        &self,
        session: u64,
        command: Command,
        resolved: &BTreeMap<String, Owner>,
    ) -> Reply {
        // Coordinator: the shard owning most of the touched names (fewest
        // exports); ties break toward the lowest shard id.
        let mut counts = vec![0usize; self.lanes.len()];
        for owner in resolved.values() {
            counts[owner.shard] += 1;
        }
        let coordinator = counts
            .iter()
            .enumerate()
            .max_by_key(|(shard, count)| (**count, std::cmp::Reverse(*shard)))
            .map(|(shard, _)| shard)
            .unwrap_or(0);
        let mut per_shard: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        for (name, owner) in resolved {
            if owner.shard == coordinator {
                continue;
            }
            if owner.is_view {
                // Views have no rows to export; planning them needs the
                // owning shard's catalog. Cross-shard view reads are a
                // documented limitation.
                self.cross_shard_rejects.fetch_add(1, Ordering::Relaxed);
                return Err((
                    codes::CROSS_SHARD,
                    format!(
                        "query joins view '{name}' (shard {}) with tables on shard \
                         {coordinator}; cross-shard view reads are unsupported",
                        owner.shard
                    ),
                ));
            }
            per_shard.entry(owner.shard).or_default().push(name.clone());
        }
        // Scatter: all exports run in parallel on their shard threads.
        let mut waits = Vec::with_capacity(per_shard.len());
        for (shard, names) in per_shard {
            let (reply_tx, reply_rx) = mpsc::channel();
            self.admit(
                shard,
                Job::ExportTables {
                    names,
                    reply: reply_tx,
                },
                Admission::Internal,
            )?;
            waits.push(reply_rx);
        }
        let mut images: Vec<TableImage> = Vec::new();
        for reply_rx in waits {
            let exported = reply_rx
                .recv()
                .map_err(|_| (codes::INTERNAL, "executor dropped the job".to_string()))??;
            images.extend(exported);
        }
        self.scatter_gathers.fetch_add(1, Ordering::Relaxed);
        // Gather: the coordinator installs the images, runs the query, and
        // removes them before answering.
        let (reply_tx, reply_rx) = mpsc::channel();
        self.admit(
            coordinator,
            Job::Gather {
                session,
                command,
                images,
                reply: reply_tx,
            },
            Admission::Client,
        )?;
        reply_rx
            .recv()
            .map_err(|_| (codes::INTERNAL, "executor dropped the job".to_string()))?
    }

    /// Apply DDL ownership changes after the owning shard acknowledged.
    fn apply_changes(&self, shard: usize, changes: Vec<OwnershipChange>) {
        if changes.is_empty() {
            return;
        }
        let mut own = self.ownership.lock().expect("ownership lock");
        for change in changes {
            match change {
                OwnershipChange::Create { name, is_view } => {
                    own.insert(name, Owner { shard, is_view });
                }
                OwnershipChange::Drop { name } => {
                    own.remove(&name);
                }
            }
        }
    }

    /// `SET` affects per-session state held by every executor, so it is
    /// broadcast; the first error (or the first body) answers. With more
    /// than one shard each broadcast counts once per shard in the per-verb
    /// metrics (documented in `docs/SHARDING.md`).
    fn broadcast_set(&self, session: u64, command: Command) -> Reply {
        let mut first: Option<String> = None;
        for shard in 0..self.lanes.len() {
            let body = self.run_on(shard, session, command.clone())?;
            first.get_or_insert(body);
        }
        Ok(first.unwrap_or_default())
    }

    /// `CHECKPOINT` runs on every shard in parallel; the per-shard summary
    /// lines are summed into one.
    fn broadcast_checkpoint(&self, session: u64) -> Reply {
        let mut waits = Vec::with_capacity(self.lanes.len());
        for shard in 0..self.lanes.len() {
            let (reply_tx, reply_rx) = mpsc::channel();
            self.admit(
                shard,
                Job::Command {
                    session,
                    command: Command::Checkpoint,
                    reply: reply_tx,
                },
                Admission::Client,
            )?;
            waits.push(reply_rx);
        }
        let mut bodies = Vec::with_capacity(waits.len());
        for reply_rx in waits {
            bodies.push(
                reply_rx
                    .recv()
                    .map_err(|_| (codes::INTERNAL, "executor dropped the job".to_string()))??,
            );
        }
        Ok(sum_checkpoints(&bodies).unwrap_or_else(|| bodies.swap_remove(0)))
    }

    /// `STATS`: shard 0's full body plus per-shard gauges and the sharding
    /// aggregates (always present, even with one shard, so dashboards need
    /// no shard-count special case).
    fn stats(&self, session: u64) -> Reply {
        let mut body = self.run_on(0, session, Command::Stats)?;
        let mut waits = Vec::with_capacity(self.lanes.len());
        for lane in &self.lanes {
            let (reply_tx, reply_rx) = mpsc::channel();
            if lane.tx.send(Job::ShardInfo { reply: reply_tx }).is_err() {
                return Err((codes::INTERNAL, "executor unavailable".into()));
            }
            waits.push(reply_rx);
        }
        let mut snapshots: Vec<ShardSnapshot> = Vec::with_capacity(waits.len());
        for reply_rx in waits {
            snapshots.push(
                reply_rx
                    .recv()
                    .map_err(|_| (codes::INTERNAL, "executor dropped the job".to_string()))?,
            );
        }
        use std::fmt::Write as _;
        for (k, snap) in snapshots.iter().enumerate() {
            let queued = self.lanes[k].stats.queue_depth.load(Ordering::Relaxed);
            let commands = self.lanes[k].stats.commands.load(Ordering::Relaxed);
            let _ = write!(body, "\nshard{k}.queue_depth {queued}");
            let _ = write!(body, "\nshard{k}.commands {commands}");
            let _ = write!(body, "\nshard{k}.health {}", snap.health);
            let _ = write!(
                body,
                "\nshard{k}.wal_group_commits {}",
                snap.wal_group_commits
            );
        }
        let records: u64 = snapshots.iter().map(|s| s.wal_records).sum();
        let fsyncs: u64 = snapshots.iter().map(|s| s.wal_fsyncs).sum();
        let group_commits: u64 = snapshots.iter().map(|s| s.wal_group_commits).sum();
        let group_records: u64 = snapshots.iter().map(|s| s.wal_group_records).sum();
        let per_fsync = if fsyncs == 0 {
            0.0
        } else {
            records as f64 / fsyncs as f64
        };
        let _ = write!(body, "\nshards {}", self.lanes.len());
        let _ = write!(
            body,
            "\nshard_fallbacks {}",
            self.fallbacks.load(Ordering::Relaxed)
        );
        let _ = write!(
            body,
            "\nshard_scatter_gather {}",
            self.scatter_gathers.load(Ordering::Relaxed)
        );
        let _ = write!(
            body,
            "\ncross_shard_rejects {}",
            self.cross_shard_rejects.load(Ordering::Relaxed)
        );
        let _ = write!(body, "\nwal_group_commits {group_commits}");
        let _ = write!(body, "\nwal_group_committed_records {group_records}");
        let _ = write!(body, "\nwal_commits_per_fsync {per_fsync:.2}");
        Ok(body)
    }
}

/// Render a resolved placement for error messages: `a=shard0, b=shard2`.
fn render_placement(resolved: &BTreeMap<String, Owner>) -> String {
    resolved
        .iter()
        .map(|(name, owner)| format!("{name}=shard{}", owner.shard))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Sum per-shard `checkpoint tables=.. rows=.. snapshot_bytes=..
/// wal_truncated=..` summaries into one line; `None` when a body does not
/// match the expected shape.
fn sum_checkpoints(bodies: &[String]) -> Option<String> {
    let mut totals = [0u64; 4];
    for body in bodies {
        for (slot, key) in ["tables=", "rows=", "snapshot_bytes=", "wal_truncated="]
            .iter()
            .enumerate()
        {
            let value = body
                .split(key)
                .nth(1)?
                .split_whitespace()
                .next()?
                .parse::<u64>()
                .ok()?;
            totals[slot] += value;
        }
    }
    Some(format!(
        "checkpoint tables={} rows={} snapshot_bytes={} wal_truncated={}",
        totals[0], totals[1], totals[2], totals[3]
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_bounded() {
        for name in ["t1", "t2", "orders", "lineitem", "a", ""] {
            let s = shard_of(name, 4);
            assert!(s < 4);
            assert_eq!(s, shard_of(name, 4), "placement must be deterministic");
        }
        assert_eq!(shard_of("anything", 1), 0);
        assert_eq!(shard_of("anything", 0), 0, "shards=0 clamps to one shard");
    }

    #[test]
    fn shard_of_spreads_names() {
        // Not a statistical test — just require that the hash is not
        // degenerate over a realistic name population.
        let mut seen = [false; 4];
        for i in 0..64 {
            seen[shard_of(&format!("table_{i}"), 4)] = true;
        }
        assert!(seen.iter().all(|s| *s), "64 names must cover 4 shards");
    }

    #[test]
    fn checkpoint_summaries_sum() {
        let bodies = vec![
            "checkpoint tables=2 rows=10 snapshot_bytes=100 wal_truncated=7".to_string(),
            "checkpoint tables=1 rows=5 snapshot_bytes=50 wal_truncated=3".to_string(),
        ];
        assert_eq!(
            sum_checkpoints(&bodies).unwrap(),
            "checkpoint tables=3 rows=15 snapshot_bytes=150 wal_truncated=10"
        );
        assert!(sum_checkpoints(&["nonsense".to_string()]).is_none());
    }

    #[test]
    fn queue_gauge_decrement_saturates() {
        let stats = ShardStats::default();
        stats.dec_queue_depth();
        assert_eq!(stats.queue_depth.load(Ordering::Relaxed), 0);
        stats.queue_depth.fetch_add(2, Ordering::Relaxed);
        stats.dec_queue_depth();
        assert_eq!(stats.queue_depth.load(Ordering::Relaxed), 1);
    }
}
