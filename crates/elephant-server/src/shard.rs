//! The shard router: table-affine statement routing over N executor lanes.
//!
//! With `--shards N` the server runs N independent engines, each on its own
//! executor thread over its own WAL/snapshot directory. Tables are assigned
//! to shards by a stable FNV-1a hash of the table name ([`shard_of`]), so
//! placement is deterministic across restarts and across servers with the
//! same shard count; DDL additionally registers ownership in a shared
//! catalog map (needed for views, whose home shard is the shard of the
//! tables they read, not of their own name).
//!
//! Routing rules, in order:
//!
//! * Statements whose dependencies resolve to **one** shard (the common
//!   case) are forwarded to that shard's lane unchanged.
//! * **Read-only** statements spanning several shards run scatter-gather:
//!   the foreign shards export the touched tables as images, the
//!   coordinator shard (the one owning most of the touched names) installs
//!   them as WAL-bypassing foreign tables, runs the full query locally, and
//!   drops them again. Results are byte-identical to a single-shard server
//!   because one engine executes the complete plan over identical tables
//!   (ctids included).
//! * **Writes** spanning several shards run as a distributed transaction:
//!   the router splits the script per statement, becomes the two-phase-
//!   commit coordinator (each participant shard durably stages a `PREPARE`
//!   frame, the router fsyncs the commit verdict into the `txn.log`
//!   decision log, then every participant applies), and acknowledges only
//!   after the verdict is durable. A single *statement* whose tables live
//!   on several shards is still refused with [`codes::CROSS_SHARD`] — the
//!   transaction splits at statement boundaries. See `docs/TXN.md`.
//! * SQL the router cannot parse falls back to shard 0 (the coordinator
//!   shard), counted in `shard_fallbacks`, where the engine produces the
//!   canonical error text.
//!
//! **Consistent read cut**: cross-shard writes take the router's
//! transaction gate exclusively; scatter-gather reads take it shared. A
//! multi-shard read therefore never overlaps a two-phase-commit window and
//! observes every distributed transaction either on all shards or on none.
//! The per-shard committed-LSN watermarks at gate acquisition (the cut
//! vector) are recorded on the query's route span for observability.
//!
//! Sessions are shard-agnostic: every session talks to the router, which
//! also owns admission control (bounded wait for a queue slot, then the
//! retryable `ERR_BUSY` naming the saturated shard so clients can salt
//! their backoff per shard).
//!
//! **Tracing**: the router is where a command becomes a *query*. Every
//! routed command gets a process-unique `query_id` and a root
//! [`SpanKind::Command`] span, opened on the ring of the shard that will
//! execute it (the coordinator for scatter-gather, shard 0 for broadcasts)
//! and closed when the reply comes back. The correlation ids travel with
//! the job as a [`TraceContext`]; executors hang queue-wait, exec,
//! engine-phase, export/install and group-fsync children under the root.
//! `TRACE` is answered here, without an executor round-trip: the router
//! walks every shard's ring, so `TRACE q<id>` reassembles the spans of one
//! distributed query into a single tree with per-shard time attribution.
//!
//! The router also serves the machine-readable metrics plane:
//! [`ShardRouter::prometheus_body`] collects the same typed samples that
//! `STATS` renders — server counters, every shard's engine samples, lane
//! gauges, and the sharding aggregates — and renders them in the
//! Prometheus text exposition format for the `/metrics` listener.

use crate::executor::{Job, Reply, ShardSnapshot};
use crate::metrics::{render_prometheus, Metric, Metrics};
use crate::protocol::{codes, Command, TraceRequest};
use etypes::{SharedSpanRing, Span, SpanKind, SpanRecord, TraceContext};
use sqlengine::{parse_sql, statement_deps, TableImage, TxnDecisionLog, WalHandle};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

/// How long admission control waits for a queue slot before refusing the
/// command with [`codes::BUSY`]. Short: the point is to convert unbounded
/// head-of-line blocking into a bounded, retryable signal.
const ADMISSION_WAIT: Duration = Duration::from_millis(250);

/// Sleep between queue retries inside the admission wait.
const ADMISSION_POLL: Duration = Duration::from_millis(10);

/// Pull the 1-based failing-statement index out of an executor batch error
/// (`batch statement <i>/<k>: ...`). `None` for non-batch error shapes.
fn batch_error_index(msg: &str) -> Option<usize> {
    let rest = msg.strip_prefix("batch statement ")?;
    let (i, _) = rest.split_once('/')?;
    i.parse().ok()
}

/// The shard owning `name`: FNV-1a over the bytes, mod the shard count.
/// Deterministic, so base-table placement needs no coordination and
/// survives restarts (recovery re-seeds ownership from each shard's own
/// catalog, which holds exactly the tables hashed to it).
pub fn shard_of(name: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h % shards.max(1) as u64) as usize
}

/// Per-shard gauges rendered as `shard{k}.*` STATS lines. Shared between
/// the router (increments on admit) and the executor thread (decrements on
/// dequeue, counts processed commands).
#[derive(Debug, Default)]
pub(crate) struct ShardStats {
    /// Jobs queued for (or running on) this shard's executor.
    pub queue_depth: AtomicU64,
    /// Jobs this shard's executor has dequeued over its lifetime.
    pub commands: AtomicU64,
}

impl ShardStats {
    /// Decrement the queue gauge, saturating at zero (unit tests feed jobs
    /// straight into the queue without going through the router).
    pub fn dec_queue_depth(&self) {
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
    }
}

/// One shard's submission endpoint.
pub(crate) struct Lane {
    /// The executor's bounded job queue.
    pub tx: SyncSender<Job>,
    /// Gauges shared with the executor thread.
    pub stats: Arc<ShardStats>,
    /// Span ring shared with the executor thread (the router opens roots
    /// and answers `TRACE`; the executor records children).
    pub ring: Arc<SharedSpanRing>,
    /// This shard's WAL handle (durable servers only): the router reads the
    /// committed-LSN watermark off it to record consistent-cut vectors.
    pub wal: Option<WalHandle>,
}

/// What the ownership map knows about a name.
#[derive(Debug, Clone, Copy)]
struct Owner {
    shard: usize,
    is_view: bool,
}

/// Whether an admitted job counts into the server-wide queue gauge (client
/// commands) or only into the lane gauge (internal scatter-gather legs).
#[derive(Clone, Copy, PartialEq)]
enum Admission {
    Client,
    Internal,
}

/// How a statement's dependencies resolved against the ownership map.
enum Resolution {
    /// The router could not parse the SQL; shard 0's engine will produce
    /// the canonical error text.
    Unparsed,
    /// All dependencies live on one shard (or the statement touches
    /// nothing known — constants, unknown names).
    Single {
        shard: usize,
        changes: Vec<OwnershipChange>,
    },
    /// Dependencies span shards; `resolved` maps each known touched name
    /// to its owner.
    Multi {
        resolved: BTreeMap<String, Owner>,
        any_write: bool,
    },
}

/// A command queued through [`ShardRouter::submit_pipelined`] whose reply
/// has not been collected yet. The executor's reply and the open root
/// span both live in here until [`ShardRouter::finish_pipelined`].
pub(crate) struct PendingReply {
    rx: mpsc::Receiver<Reply>,
    shard: usize,
    ctx: TraceContext,
    started: Instant,
}

/// What [`ShardRouter::submit_pipelined`] did with a command.
pub(crate) enum Submission {
    /// Queued on its shard; the reply is in flight.
    Pending(PendingReply),
    /// Not eligible for overlapped execution — the command is handed back
    /// so the caller can drain its pending replies first and then use the
    /// synchronous [`ShardRouter::submit`] path.
    Sync(Command),
    /// The shard's queue is full right now. The command was NOT queued and
    /// is handed back; the session should settle its oldest in-flight
    /// reply (proof the executor has freed a slot) and resubmit, falling
    /// back to the synchronous path — and its bounded admission wait that
    /// turns sustained overload into `ERR_BUSY` — once nothing is in
    /// flight. Pipelined admission never sleeps.
    Backpressure(Command),
}

/// Outcome of the non-blocking admission used by the pipelined path.
enum TryAdmit {
    Admitted,
    /// Queue full: the job is handed back (boxed to keep the variant
    /// small).
    Full(Box<Job>),
    Disconnected,
}

/// Ownership-map updates applied after the owning shard acknowledged the
/// statement.
enum OwnershipChange {
    Create { name: String, is_view: bool },
    Drop { name: String },
}

/// A cross-shard write script split per statement: each participant shard's
/// slice (original statement order preserved within a shard) plus the
/// ownership changes to apply if the transaction commits.
struct TxnPlan {
    per_shard: BTreeMap<usize, Vec<String>>,
    changes: Vec<(usize, OwnershipChange)>,
}

/// The coordinator's channels to one admitted transaction participant.
struct TxnLeg {
    shard: usize,
    /// Prepare ack: rows affected, or the participant's error.
    prepared_rx: Receiver<Result<usize, (&'static str, String)>>,
    /// The verdict channel; dropping it without sending reads as abort.
    decision_tx: Sender<bool>,
    /// Apply/unwind ack.
    done_rx: Receiver<Result<(), (&'static str, String)>>,
}

/// Split a script at top-level `;` boundaries, respecting single- and
/// double-quoted runs (a `''` escape inside a string toggles twice, which
/// lands in the same state). Empty fragments (trailing `;`) are dropped.
fn split_statements(sql: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let (mut in_single, mut in_double) = (false, false);
    for ch in sql.chars() {
        match ch {
            '\'' if !in_double => {
                in_single = !in_single;
                current.push(ch);
            }
            '"' if !in_single => {
                in_double = !in_double;
                current.push(ch);
            }
            ';' if !in_single && !in_double => {
                if !current.trim().is_empty() {
                    out.push(std::mem::take(&mut current));
                } else {
                    current.clear();
                }
            }
            _ => current.push(ch),
        }
    }
    if !current.trim().is_empty() {
        out.push(current);
    }
    out
}

/// Routes commands from shard-agnostic sessions to shard-affine executors.
pub(crate) struct ShardRouter {
    lanes: Vec<Lane>,
    /// Shared catalog map: which shard owns each table/view name.
    ownership: Mutex<HashMap<String, Owner>>,
    /// Which shard holds each prepared statement, keyed by (session, name).
    prepare_shards: Mutex<HashMap<(u64, String), usize>>,
    /// Statements routed to shard 0 because the router could not parse
    /// them.
    fallbacks: AtomicU64,
    /// Cross-shard read-only queries answered via export + gather.
    scatter_gathers: AtomicU64,
    /// Cross-shard statements refused with [`codes::CROSS_SHARD`] (a single
    /// statement spanning shards, cross-shard view reads, multi-shard
    /// PREPARE).
    cross_shard_rejects: AtomicU64,
    /// Distributed transactions committed by this router.
    txn_commits: AtomicU64,
    /// Distributed transactions aborted (prepare failure, admission
    /// failure, or decision-log failure).
    txn_aborts: AtomicU64,
    /// The coordinator's durable commit-decision log (`txn.log` beside the
    /// shard directories). `None` on volatile servers: 2PC still runs its
    /// prepare/decide/apply phases, there is just nothing to fsync.
    txn_log: Option<Mutex<TxnDecisionLog>>,
    /// Transaction-id allocator, seeded past the highest id the decision
    /// log has seen so recovered decisions can never collide with new ones.
    next_txn_id: AtomicU64,
    /// The consistent-cut gate: two-phase commits hold it exclusively,
    /// scatter-gather reads hold it shared. This is what makes cross-shard
    /// reads all-or-none with respect to cross-shard writes.
    txn_gate: RwLock<()>,
    /// Per-command query-id allocator (`q<N>` on the wire, 1-based).
    next_query_id: AtomicU64,
    metrics: Arc<Metrics>,
}

impl ShardRouter {
    /// Build a router over already-spawned lanes. `txn_log` is the durable
    /// commit-decision log for cross-shard transactions (durable multi-shard
    /// servers only).
    pub fn new(
        lanes: Vec<Lane>,
        metrics: Arc<Metrics>,
        txn_log: Option<TxnDecisionLog>,
    ) -> ShardRouter {
        assert!(!lanes.is_empty(), "a server needs at least one shard");
        let next_txn_id = txn_log.as_ref().map_or(1, |log| log.max_txn_id() + 1);
        ShardRouter {
            lanes,
            ownership: Mutex::new(HashMap::new()),
            prepare_shards: Mutex::new(HashMap::new()),
            fallbacks: AtomicU64::new(0),
            scatter_gathers: AtomicU64::new(0),
            cross_shard_rejects: AtomicU64::new(0),
            txn_commits: AtomicU64::new(0),
            txn_aborts: AtomicU64::new(0),
            txn_log: txn_log.map(Mutex::new),
            next_txn_id: AtomicU64::new(next_txn_id),
            txn_gate: RwLock::new(()),
            next_query_id: AtomicU64::new(1),
            metrics,
        }
    }

    /// Register recovered base tables as owned by `shard` (called once per
    /// shard at startup, before any session exists). Views are volatile —
    /// they are never recovered, so recovery seeding is tables only.
    pub fn seed(&self, shard: usize, names: &[String]) {
        let mut own = self.ownership.lock().expect("ownership lock");
        for name in names {
            own.insert(
                name.clone(),
                Owner {
                    shard,
                    is_view: false,
                },
            );
        }
    }

    /// Route one client command and wait for its reply.
    pub fn submit(&self, session: u64, command: Command) -> Reply {
        match command {
            // TRACE is answered by the router itself: it is the only verb
            // that needs every shard's ring, and answering it here keeps it
            // out of the rings (a TRACE never traces itself). STATS keeps
            // its composed multi-shard body.
            Command::Trace(req) => return self.serve_trace(req),
            Command::Stats => return self.stats(session),
            _ => {}
        }
        let query_id = self.next_query_id.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        if self.lanes.len() == 1 {
            return self.run_traced(0, session, command, query_id, started, None);
        }
        match command {
            Command::Query(_) | Command::Explain { .. } => {
                self.route_sql(session, command, query_id, started)
            }
            Command::Batch(_) => self.route_batch(session, command, query_id, started),
            Command::Prepare { .. } => self.route_prepare(session, command, query_id, started),
            Command::Execute { ref name, .. } => {
                let shard = self.prepared_shard(session, name);
                self.run_traced(shard, session, command, query_id, started, None)
            }
            Command::Deallocate(ref name) => {
                let shard = self.prepared_shard(session, name);
                let key = (session, name.clone());
                let reply = self.run_traced(shard, session, command, query_id, started, None);
                if reply.is_ok() {
                    self.prepare_shards
                        .lock()
                        .expect("prepare lock")
                        .remove(&key);
                }
                reply
            }
            Command::Set { .. } => self.broadcast_set(session, command, query_id, started),
            Command::Checkpoint => self.broadcast_checkpoint(session, query_id, started),
            // Single-shard surfaces: inspection scratch tables, replication
            // topology, and the shared drain flag all live on (or are
            // reachable from) shard 0.
            Command::Inspect { .. } | Command::Replica | Command::Lag | Command::Shutdown => {
                self.run_traced(0, session, command, query_id, started, None)
            }
            Command::Trace(_) | Command::Stats => unreachable!("handled above"),
        }
    }

    /// A session disconnected: drop its prepared statements and exec-mode
    /// override on every shard.
    pub fn close_session(&self, session: u64) {
        for lane in &self.lanes {
            let _ = lane.tx.send(Job::CloseSession { session });
        }
        self.prepare_shards
            .lock()
            .expect("prepare lock")
            .retain(|(s, _), _| *s != session);
        self.metrics.sessions_closed.fetch_add(1, Ordering::Relaxed);
    }

    fn prepared_shard(&self, session: u64, name: &str) -> usize {
        self.prepare_shards
            .lock()
            .expect("prepare lock")
            .get(&(session, name.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Admit one job to a shard's queue within the bounded admission wait.
    fn admit(
        &self,
        shard: usize,
        mut job: Job,
        admission: Admission,
    ) -> Result<(), (&'static str, String)> {
        let lane = &self.lanes[shard];
        if admission == Admission::Client {
            self.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
        }
        lane.stats.queue_depth.fetch_add(1, Ordering::Relaxed);
        let undo = |busy: bool| {
            if admission == Admission::Client {
                self.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
            }
            lane.stats.dec_queue_depth();
            if busy {
                self.metrics.busy_rejections.fetch_add(1, Ordering::Relaxed);
            }
        };
        let deadline = Instant::now() + ADMISSION_WAIT;
        loop {
            match lane.tx.try_send(job) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Full(j)) => {
                    if Instant::now() >= deadline {
                        undo(true);
                        return Err((
                            codes::BUSY,
                            format!(
                                "executor queue full after {} ms (shard={shard}); retry with backoff",
                                ADMISSION_WAIT.as_millis()
                            ),
                        ));
                    }
                    job = j;
                    thread::sleep(ADMISSION_POLL);
                }
                Err(TrySendError::Disconnected(_)) => {
                    undo(false);
                    return Err((codes::INTERNAL, "executor unavailable".into()));
                }
            }
        }
    }

    /// Run one command on one shard and wait for the reply, threading the
    /// optional trace context into the job. `counted` says whether this leg
    /// ticks the per-verb counters — broadcasts fan one client command out
    /// to every shard and must count it exactly once (shard 0's leg).
    fn run_on_ctx(
        &self,
        shard: usize,
        session: u64,
        command: Command,
        ctx: Option<TraceContext>,
        counted: bool,
    ) -> Reply {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.admit(
            shard,
            Job::Command {
                session,
                command,
                reply: reply_tx,
                ctx,
                enqueued: Instant::now(),
                counted,
            },
            Admission::Client,
        )?;
        reply_rx
            .recv()
            .map_err(|_| (codes::INTERNAL, "executor dropped the job".to_string()))?
    }

    /// Run one command on one shard without a trace context (STATS, and
    /// paths that manage their own roots).
    fn run_on(&self, shard: usize, session: u64, command: Command) -> Reply {
        self.run_on_ctx(shard, session, command, None, true)
    }

    /// Route one client command WITHOUT waiting for its reply, so a
    /// pipelining session can overlap executor work with its own socket
    /// I/O. Eligible commands are queued on their shard and come back as
    /// [`Submission::Pending`]; collect the reply (in submission order)
    /// with [`ShardRouter::finish_pipelined`].
    ///
    /// Eligibility is about cross-command effects: a command may only be
    /// queued behind-the-back if nothing the *next* command's routing
    /// depends on changes when it completes. On a single shard that is
    /// every verb except the router-answered ones (`TRACE`, `STATS`) and
    /// `SHUTDOWN` (kept synchronous so a draining pipeline has observed
    /// every earlier reply). On a multi-shard router it is `QUERY`/
    /// `EXPLAIN` resolving to one shard with no ownership changes, plus
    /// `EXECUTE` (pinned at PREPARE time) — DDL, scatter-gather, 2PC,
    /// broadcasts, and prepare bookkeeping are handed back as
    /// [`Submission::Sync`] for the ordinary [`ShardRouter::submit`] path.
    ///
    /// Ordering: each shard's queue is FIFO, so two pipelined commands on
    /// the same shard execute in submission order. Commands on *different*
    /// shards may execute concurrently — their replies still return in
    /// order, and any command whose dependency set spans shards comes back
    /// `Sync`, which makes the caller drain first.
    ///
    /// Admission here never sleeps: a full shard queue hands the command
    /// back as [`Submission::Backpressure`] (not queued, not executed)
    /// instead of polling inside the bounded admission wait.
    pub(crate) fn submit_pipelined(
        &self,
        session: u64,
        command: Command,
    ) -> Result<Submission, (&'static str, String)> {
        if self.lanes.len() == 1 {
            return match command {
                Command::Trace(_) | Command::Stats | Command::Shutdown => {
                    Ok(Submission::Sync(command))
                }
                _ => self.start_pipelined(0, session, command, None),
            };
        }
        match command {
            Command::Query(_) | Command::Explain { .. } => {
                let sql = match &command {
                    Command::Query(sql) | Command::Explain { sql, .. } => sql.clone(),
                    _ => unreachable!("matched above"),
                };
                let resolve_started = Instant::now();
                match self.resolve(&sql) {
                    Resolution::Single { shard, changes } if changes.is_empty() => {
                        let resolve_us = resolve_started.elapsed().as_micros() as u64;
                        let router = Some((resolve_us, format!("single shard={shard}")));
                        self.start_pipelined(shard, session, command, router)
                    }
                    _ => Ok(Submission::Sync(command)),
                }
            }
            Command::Execute { ref name, .. } => {
                let shard = self.prepared_shard(session, name);
                self.start_pipelined(shard, session, command, None)
            }
            _ => Ok(Submission::Sync(command)),
        }
    }

    /// Open the root span and queue one pipelined command; the reply stays
    /// in flight inside the returned [`PendingReply`].
    fn start_pipelined(
        &self,
        shard: usize,
        session: u64,
        command: Command,
        router: Option<(u64, String)>,
    ) -> Result<Submission, (&'static str, String)> {
        let query_id = self.next_query_id.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let ctx = self.begin_root(shard, query_id, &command);
        if let Some((us, detail)) = router {
            self.lanes[shard].ring.record(SpanRecord::child(
                ctx,
                SpanKind::Router,
                shard as u16,
                "route",
                &detail,
                us,
                true,
            ));
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        match self.try_admit(
            shard,
            Job::Command {
                session,
                command,
                reply: reply_tx,
                ctx: Some(ctx),
                enqueued: Instant::now(),
                counted: true,
            },
        ) {
            TryAdmit::Admitted => Ok(Submission::Pending(PendingReply {
                rx: reply_rx,
                shard,
                ctx,
                started,
            })),
            TryAdmit::Full(job) => {
                self.finish_root(shard, ctx, started, false);
                let Job::Command { command, .. } = *job else {
                    unreachable!("try_admit round-trips the job it was given")
                };
                Ok(Submission::Backpressure(command))
            }
            TryAdmit::Disconnected => {
                self.finish_root(shard, ctx, started, false);
                Err((codes::INTERNAL, "executor unavailable".into()))
            }
        }
    }

    /// One-shot admission for the pipelined path: a single `try_send` with
    /// the usual queue-gauge accounting but no bounded wait — a full queue
    /// hands the job back for the caller to handle without sleeping, and
    /// does not count as a busy rejection (nothing was refused to a
    /// client yet).
    fn try_admit(&self, shard: usize, job: Job) -> TryAdmit {
        let lane = &self.lanes[shard];
        self.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
        lane.stats.queue_depth.fetch_add(1, Ordering::Relaxed);
        match lane.tx.try_send(job) {
            Ok(()) => TryAdmit::Admitted,
            Err(e) => {
                self.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                lane.stats.dec_queue_depth();
                match e {
                    TrySendError::Full(job) => TryAdmit::Full(Box::new(job)),
                    TrySendError::Disconnected(_) => TryAdmit::Disconnected,
                }
            }
        }
    }

    /// Wait for a pipelined command's reply and close its root span. Every
    /// [`PendingReply`] must come back through here — dropping one leaks
    /// its root span as pinned-unfinished in the shard's trace ring.
    pub(crate) fn finish_pipelined(&self, pending: PendingReply) -> Reply {
        let reply = pending
            .rx
            .recv()
            .map_err(|_| (codes::INTERNAL, "executor dropped the job".to_string()))
            .and_then(|r| r);
        self.finish_root(pending.shard, pending.ctx, pending.started, reply.is_ok());
        reply
    }

    /// Open a root span for `query_id` on `shard`'s ring; returns the
    /// context children hang under. The root is pinned (excluded from ring
    /// eviction) until [`ShardRouter::finish_root`] closes it.
    fn begin_root(&self, shard: usize, query_id: u64, command: &Command) -> TraceContext {
        let rec = SpanRecord::root(query_id, shard as u16, command.verb(), &command.summary());
        let ctx = TraceContext {
            query_id,
            parent_span: rec.id,
        };
        self.lanes[shard].ring.begin_root(rec);
        ctx
    }

    /// Close the root span opened by [`ShardRouter::begin_root`].
    fn finish_root(&self, shard: usize, ctx: TraceContext, started: Instant, ok: bool) {
        self.lanes[shard].ring.finish_root(
            ctx.parent_span,
            started.elapsed().as_micros() as u64,
            ok,
        );
    }

    /// Run one command under a fresh root span on `shard`. `router` carries
    /// the resolve duration and placement detail when the SQL router made a
    /// decision worth a span of its own.
    fn run_traced(
        &self,
        shard: usize,
        session: u64,
        command: Command,
        query_id: u64,
        started: Instant,
        router: Option<(u64, String)>,
    ) -> Reply {
        let ctx = self.begin_root(shard, query_id, &command);
        if let Some((us, detail)) = router {
            self.lanes[shard].ring.record(SpanRecord::child(
                ctx,
                SpanKind::Router,
                shard as u16,
                "route",
                &detail,
                us,
                true,
            ));
        }
        let reply = self.run_on_ctx(shard, session, command, Some(ctx), true);
        self.finish_root(shard, ctx, started, reply.is_ok());
        reply
    }

    /// Resolve the dependency set of a (possibly `;`-separated) SQL text
    /// against the ownership map.
    fn resolve(&self, sql: &str) -> Resolution {
        let stmts = match parse_sql(sql) {
            Ok(stmts) => stmts,
            Err(_) => return Resolution::Unparsed,
        };
        let n = self.lanes.len();
        let mut resolved: BTreeMap<String, Owner> = BTreeMap::new();
        let mut targets: BTreeSet<usize> = BTreeSet::new();
        let mut changes: Vec<OwnershipChange> = Vec::new();
        let mut any_write = false;
        let own = self.ownership.lock().expect("ownership lock");
        for stmt in &stmts {
            let deps = statement_deps(stmt);
            any_write |= deps.is_write();
            for w in &deps.writes {
                let created_view = deps
                    .creates
                    .as_ref()
                    .is_some_and(|(name, is_view)| *is_view && name == w);
                let owner = match own.get(w) {
                    Some(o) => Some(*o),
                    // A new view has no shard of its own: it lives with
                    // the tables it reads (resolved below), so the owning
                    // shard can plan it locally.
                    None if created_view => None,
                    None => Some(Owner {
                        shard: shard_of(w, n),
                        is_view: false,
                    }),
                };
                if let Some(o) = owner {
                    resolved.insert(w.clone(), o);
                    targets.insert(o.shard);
                }
            }
            for r in &deps.reads {
                // Unknown pure reads are ignored on purpose: the routed
                // shard's binder produces the canonical "unknown table"
                // error text, identical to a single-shard server's.
                if let Some(o) = own.get(r) {
                    resolved.insert(r.clone(), *o);
                    targets.insert(o.shard);
                }
            }
            if let Some((name, is_view)) = &deps.creates {
                changes.push(OwnershipChange::Create {
                    name: name.clone(),
                    is_view: *is_view,
                });
            }
            if let Some((name, _)) = &deps.drops {
                changes.push(OwnershipChange::Drop { name: name.clone() });
            }
        }
        drop(own);
        match targets.len() {
            0 => Resolution::Single { shard: 0, changes },
            1 => Resolution::Single {
                shard: *targets.iter().next().expect("one target"),
                changes,
            },
            _ => Resolution::Multi {
                resolved,
                any_write,
            },
        }
    }

    /// Route a `QUERY` or `EXPLAIN` by its dependency set.
    fn route_sql(&self, session: u64, command: Command, query_id: u64, started: Instant) -> Reply {
        let sql = match &command {
            Command::Query(sql) | Command::Explain { sql, .. } => sql.clone(),
            _ => unreachable!("route_sql only sees QUERY/EXPLAIN"),
        };
        let resolve_started = Instant::now();
        let resolution = self.resolve(&sql);
        let resolve_us = resolve_started.elapsed().as_micros() as u64;
        match resolution {
            Resolution::Unparsed => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                self.run_traced(
                    0,
                    session,
                    command,
                    query_id,
                    started,
                    Some((resolve_us, "fallback shard=0".into())),
                )
            }
            Resolution::Single { shard, changes } => {
                let reply = self.run_traced(
                    shard,
                    session,
                    command,
                    query_id,
                    started,
                    Some((resolve_us, format!("single shard={shard}"))),
                );
                if reply.is_ok() {
                    self.apply_changes(shard, changes);
                }
                reply
            }
            Resolution::Multi {
                resolved,
                any_write,
            } => {
                if any_write {
                    return match command {
                        Command::Query(_) => self.two_phase_commit(
                            session, &sql, &resolved, query_id, started, resolve_us,
                        ),
                        // EXPLAIN plans on one engine; a cross-shard write
                        // script has no single planning site.
                        _ => {
                            self.cross_shard_rejects.fetch_add(1, Ordering::Relaxed);
                            Err((
                                codes::CROSS_SHARD,
                                format!(
                                    "EXPLAIN of a cross-shard write is unsupported: the \
                                     statement touches {}; EXPLAIN each statement on its \
                                     owning shard instead",
                                    render_placement(&resolved)
                                ),
                            ))
                        }
                    };
                }
                self.scatter_gather(session, command, &resolved, query_id, started, resolve_us)
            }
        }
    }

    /// Route a `PREPARE`: prepared statements are pinned to one shard.
    fn route_prepare(
        &self,
        session: u64,
        command: Command,
        query_id: u64,
        started: Instant,
    ) -> Reply {
        let (name, sql) = match &command {
            Command::Prepare { name, sql } => (name.clone(), sql.clone()),
            _ => unreachable!("route_prepare only sees PREPARE"),
        };
        let shard = match self.resolve(&sql) {
            Resolution::Unparsed => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                0
            }
            Resolution::Single { shard, .. } => shard,
            Resolution::Multi { resolved, .. } => {
                self.cross_shard_rejects.fetch_add(1, Ordering::Relaxed);
                return Err((
                    codes::CROSS_SHARD,
                    format!(
                        "prepared statements are pinned to one shard, but this one \
                         touches {}; prepare it per shard against the tables each \
                         owns, or run it directly as QUERY (cross-shard reads \
                         scatter-gather, cross-shard writes run two-phase commit)",
                        render_placement(&resolved)
                    ),
                ));
            }
        };
        let reply = self.run_traced(shard, session, command, query_id, started, None);
        if reply.is_ok() {
            self.prepare_shards
                .lock()
                .expect("prepare lock")
                .insert((session, name), shard);
        }
        reply
    }

    /// Route a `BATCH` frame. When every statement resolves to the same
    /// shard the whole frame travels as **one** job: the executor runs the
    /// N statements inside a single drained batch, so under `fsync=always`
    /// the entire frame shares one group-commit window — that amortization
    /// is the point of BATCH. A batch whose statements span shards falls
    /// back to per-statement routing in frame order (each leg counts into
    /// the `queries` counter, exactly as if the client had sent N QUERY
    /// frames); the first failing statement stops the batch, earlier
    /// statements stand, and the error names the 1-based statement index.
    fn route_batch(
        &self,
        session: u64,
        command: Command,
        query_id: u64,
        started: Instant,
    ) -> Reply {
        let stmts = match &command {
            Command::Batch(stmts) => stmts.clone(),
            _ => unreachable!("route_batch only sees BATCH"),
        };
        let resolve_started = Instant::now();
        let mut per_stmt_changes: Vec<Vec<OwnershipChange>> = Vec::with_capacity(stmts.len());
        let mut target: Option<usize> = None;
        let mut splits = false;
        for sql in &stmts {
            match self.resolve(sql) {
                Resolution::Unparsed => {
                    // Shard 0's engine produces the canonical error text.
                    per_stmt_changes.push(Vec::new());
                    splits |= *target.get_or_insert(0) != 0;
                }
                Resolution::Single { shard, changes } => {
                    per_stmt_changes.push(changes);
                    splits |= *target.get_or_insert(shard) != shard;
                }
                Resolution::Multi { .. } => {
                    per_stmt_changes.push(Vec::new());
                    splits = true;
                }
            }
        }
        let resolve_us = resolve_started.elapsed().as_micros() as u64;
        if !splits {
            let shard = target.unwrap_or(0);
            let reply = self.run_traced(
                shard,
                session,
                command,
                query_id,
                started,
                Some((resolve_us, format!("batch single shard={shard}"))),
            );
            // A mid-batch failure leaves the earlier statements applied
            // (they are individually acknowledged); their ownership changes
            // must land even though the frame as a whole errored.
            let applied = match &reply {
                Ok(_) => per_stmt_changes.len(),
                Err((_, msg)) => batch_error_index(msg).map_or(0, |i| i.saturating_sub(1)),
            };
            for changes in per_stmt_changes.into_iter().take(applied) {
                self.apply_changes(shard, changes);
            }
            return reply;
        }
        let total = stmts.len();
        let mut bodies = Vec::with_capacity(total);
        for (i, sql) in stmts.into_iter().enumerate() {
            let stmt_id = self.next_query_id.fetch_add(1, Ordering::Relaxed);
            match self.route_sql(session, Command::Query(sql), stmt_id, Instant::now()) {
                Ok(body) => {
                    self.metrics
                        .batch_statements
                        .fetch_add(1, Ordering::Relaxed);
                    bodies.push(body);
                }
                Err((code, msg)) => {
                    return Err((code, format!("batch statement {}/{total}: {msg}", i + 1)))
                }
            }
        }
        Ok(bodies.join(&crate::protocol::BATCH_SEP.to_string()))
    }

    /// Split a cross-shard write script per statement and run it as a
    /// distributed transaction: every participant shard durably stages its
    /// slice (`PREPARE`), the router fsyncs the commit verdict into the
    /// decision log, then every participant applies. The client is
    /// acknowledged only after the verdict is durable, so an acked
    /// transaction survives any single crash — recovery completes it from
    /// the prepare frames plus the decision log. A missing verdict reads as
    /// abort (presumed abort), so an unacked transaction vanishes.
    fn two_phase_commit(
        &self,
        session: u64,
        sql: &str,
        resolved: &BTreeMap<String, Owner>,
        query_id: u64,
        started: Instant,
        resolve_us: u64,
    ) -> Reply {
        // `resolved` drove the multi-shard classification; the plan redoes
        // resolution per statement so its errors can name the exact
        // statement that cannot be split.
        let _ = resolved;
        let plan = match self.plan_txn(sql) {
            Ok(plan) => plan,
            Err(e) => {
                self.cross_shard_rejects.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        };
        if plan.per_shard.len() <= 1 {
            // The per-statement split landed everything on one shard after
            // all (the multi-ness came from names a statement never pinned);
            // run it as an ordinary single-shard script.
            let shard = plan.per_shard.keys().next().copied().unwrap_or(0);
            let reply = self.run_traced(
                shard,
                session,
                Command::Query(sql.to_string()),
                query_id,
                started,
                Some((resolve_us, format!("single shard={shard}"))),
            );
            if reply.is_ok() {
                self.apply_txn_changes(plan.changes);
            }
            return reply;
        }
        let txn_id = self.next_txn_id.fetch_add(1, Ordering::Relaxed);
        // Hold the gate exclusively for the whole prepare→decide→apply
        // window: scatter-gather readers hold it shared, so a cross-shard
        // read can never observe this transaction half-applied.
        let gate = self.txn_gate.write().unwrap_or_else(|e| e.into_inner());
        let command = Command::Query(sql.to_string());
        let participants: Vec<usize> = plan.per_shard.keys().copied().collect();
        let root_shard = participants[0];
        let ctx = self.begin_root(root_shard, query_id, &command);
        self.lanes[root_shard].ring.record(SpanRecord::child(
            ctx,
            SpanKind::Router,
            root_shard as u16,
            "route",
            &format!(
                "2pc txn={txn_id} participants={participants:?} cut=[{}]",
                self.cut_vector()
            ),
            resolve_us,
            true,
        ));
        let reply = self.two_phase_commit_inner(session, txn_id, &plan, ctx, root_shard);
        drop(gate);
        if reply.is_ok() {
            self.txn_commits.fetch_add(1, Ordering::Relaxed);
            self.apply_txn_changes(plan.changes);
        } else {
            self.txn_aborts.fetch_add(1, Ordering::Relaxed);
            self.metrics.exec_errors.fetch_add(1, Ordering::Relaxed);
        }
        // Participants never count Txn jobs into the per-verb metrics; the
        // transaction is one client QUERY and counts once, here.
        self.metrics.record_latency("QUERY", started.elapsed());
        if reply.is_ok() {
            self.metrics.count_verb("QUERY");
        }
        self.finish_root(root_shard, ctx, started, reply.is_ok());
        reply
    }

    /// The fallible phases of a two-phase commit, split out so the caller
    /// can close the root span and release the gate on every exit path.
    fn two_phase_commit_inner(
        &self,
        session: u64,
        txn_id: u64,
        plan: &TxnPlan,
        ctx: TraceContext,
        root_shard: usize,
    ) -> Reply {
        // Phase 1: fan each participant its slice. The executor stages the
        // statements, appends one PREPARE frame to its WAL, fsyncs, and
        // acks; it then blocks until our verdict arrives, which is what
        // keeps prepared-but-undecided state invisible to every other job
        // on that shard.
        let mut legs: Vec<TxnLeg> = Vec::new();
        for (&shard, stmts) in &plan.per_shard {
            let (prepared_tx, prepared_rx) = mpsc::channel();
            let (decision_tx, decision_rx) = mpsc::channel();
            let (done_tx, done_rx) = mpsc::channel();
            let job = Job::Txn {
                session,
                txn_id,
                sql: stmts.join("; "),
                prepared: prepared_tx,
                decision: decision_rx,
                done: done_tx,
                ctx: Some(ctx),
                enqueued: Instant::now(),
            };
            if let Err(e) = self.admit(shard, job, Admission::Client) {
                // This shard never saw the transaction; everyone who did
                // gets an explicit abort verdict.
                self.abort_legs(txn_id, &legs, ctx, root_shard);
                return Err(e);
            }
            legs.push(TxnLeg {
                shard,
                prepared_rx,
                decision_tx,
                done_rx,
            });
        }
        let mut rows = 0usize;
        let mut failure: Option<(&'static str, String)> = None;
        for leg in &legs {
            match leg.prepared_rx.recv() {
                Ok(Ok(n)) => rows += n,
                Ok(Err(e)) => {
                    failure.get_or_insert(e);
                }
                Err(_) => {
                    failure.get_or_insert((
                        codes::INTERNAL,
                        format!("shard {} dropped the transaction", leg.shard),
                    ));
                }
            }
        }
        if let Some(e) = failure {
            self.abort_legs(txn_id, &legs, ctx, root_shard);
            return Err(e);
        }
        // Phase 2: make the commit verdict durable BEFORE any participant
        // may apply. Until this write completes, a crash anywhere aborts
        // the transaction (presumed abort); after it, recovery commits it
        // on every shard even if no participant ever hears the verdict.
        let decide_started = Instant::now();
        if let Some(log) = &self.txn_log {
            if let Err(e) = log.lock().expect("txn log lock").decide(txn_id, true) {
                self.abort_legs(txn_id, &legs, ctx, root_shard);
                return Err((
                    codes::EXEC,
                    format!("commit decision could not be made durable; transaction aborted: {e}"),
                ));
            }
        }
        self.lanes[root_shard].ring.record(SpanRecord::child(
            ctx,
            SpanKind::TxnDecision,
            root_shard as u16,
            "DECIDE",
            &format!("txn={txn_id} commit participants={}", legs.len()),
            decide_started.elapsed().as_micros() as u64,
            true,
        ));
        for leg in &legs {
            let _ = leg.decision_tx.send(true);
        }
        for leg in &legs {
            // The commit decision is durable: even if a shard failed to
            // append its COMMIT marker (it degrades to read-only), recovery
            // completes the transaction from the prepare frame plus the
            // decision log. The client ack stands either way.
            let _ = leg.done_rx.recv();
        }
        Ok(format!("ok {rows}"))
    }

    /// Deliver an abort verdict to every already-admitted participant and
    /// wait until each has unwound. Presumed abort: nothing is written to
    /// the decision log — at recovery, a prepared transaction with no
    /// durable commit verdict aborts.
    fn abort_legs(&self, txn_id: u64, legs: &[TxnLeg], ctx: TraceContext, root_shard: usize) {
        self.lanes[root_shard].ring.record(SpanRecord::child(
            ctx,
            SpanKind::TxnDecision,
            root_shard as u16,
            "DECIDE",
            &format!("txn={txn_id} abort (presumed)"),
            0,
            false,
        ));
        for leg in legs {
            let _ = leg.decision_tx.send(false);
        }
        for leg in legs {
            // Legs whose prepare failed already returned (their done sender
            // is dropped); recv erroring is that, not a problem.
            let _ = leg.done_rx.recv();
        }
    }

    /// Split a write script per statement and pin each statement to the one
    /// shard owning its tables. Names created earlier in the script resolve
    /// for later statements. A single statement whose dependencies span
    /// shards cannot be split and refuses the whole transaction.
    fn plan_txn(&self, sql: &str) -> Result<TxnPlan, (&'static str, String)> {
        let n = self.lanes.len();
        let mut per_shard: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        let mut changes: Vec<(usize, OwnershipChange)> = Vec::new();
        let mut created: HashMap<String, Owner> = HashMap::new();
        let own = self.ownership.lock().expect("ownership lock");
        for fragment in split_statements(sql) {
            let stmts = match parse_sql(&fragment) {
                Ok(stmts) => stmts,
                Err(_) => {
                    return Err((
                        codes::CROSS_SHARD,
                        format!(
                            "cross-shard write script could not be split at statement \
                             boundaries: '{fragment}' did not parse as one statement"
                        ),
                    ));
                }
            };
            for stmt in &stmts {
                let deps = statement_deps(stmt);
                let mut placement: BTreeMap<String, Owner> = BTreeMap::new();
                let mut targets: BTreeSet<usize> = BTreeSet::new();
                for w in &deps.writes {
                    let created_view = deps
                        .creates
                        .as_ref()
                        .is_some_and(|(name, is_view)| *is_view && name == w);
                    let owner = match own.get(w).or_else(|| created.get(w)) {
                        Some(o) => Some(*o),
                        None if created_view => None,
                        None => Some(Owner {
                            shard: shard_of(w, n),
                            is_view: false,
                        }),
                    };
                    if let Some(o) = owner {
                        placement.insert(w.clone(), o);
                        targets.insert(o.shard);
                    }
                }
                for r in &deps.reads {
                    if let Some(o) = own.get(r).or_else(|| created.get(r)) {
                        placement.insert(r.clone(), *o);
                        targets.insert(o.shard);
                    }
                }
                if targets.len() > 1 {
                    return Err((
                        codes::CROSS_SHARD,
                        format!(
                            "a cross-shard transaction splits per statement, but \
                             '{fragment}' alone touches {}; rewrite it to touch one \
                             shard per statement",
                            render_placement(&placement)
                        ),
                    ));
                }
                let shard = targets.iter().next().copied().unwrap_or(0);
                if let Some((name, is_view)) = &deps.creates {
                    created.insert(
                        name.clone(),
                        Owner {
                            shard,
                            is_view: *is_view,
                        },
                    );
                    changes.push((
                        shard,
                        OwnershipChange::Create {
                            name: name.clone(),
                            is_view: *is_view,
                        },
                    ));
                }
                if let Some((name, _)) = &deps.drops {
                    changes.push((shard, OwnershipChange::Drop { name: name.clone() }));
                }
                per_shard
                    .entry(shard)
                    .or_default()
                    .push(fragment.trim().to_string());
            }
        }
        drop(own);
        Ok(TxnPlan { per_shard, changes })
    }

    /// Apply per-shard ownership changes after a transaction committed.
    fn apply_txn_changes(&self, changes: Vec<(usize, OwnershipChange)>) {
        for (shard, change) in changes {
            self.apply_changes(shard, vec![change]);
        }
    }

    /// The per-shard committed-LSN watermarks, rendered `lsn0,lsn1,...`
    /// (`-` for volatile shards). Read under the transaction gate, this is
    /// the consistent cut a scatter-gather observes.
    fn cut_vector(&self) -> String {
        self.lanes
            .iter()
            .map(|l| {
                l.wal
                    .as_ref()
                    .map_or_else(|| "-".to_string(), |w| w.committed_lsn().to_string())
            })
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Answer a cross-shard read-only query: export every foreign table to
    /// the coordinator shard, run the whole query there, drop the copies.
    /// The root span lives on the coordinator's ring; export spans land on
    /// the exporting shards' rings with the same `query_id`.
    fn scatter_gather(
        &self,
        session: u64,
        command: Command,
        resolved: &BTreeMap<String, Owner>,
        query_id: u64,
        started: Instant,
        resolve_us: u64,
    ) -> Reply {
        // Coordinator: the shard owning most of the touched names (fewest
        // exports); ties break toward the lowest shard id.
        let mut counts = vec![0usize; self.lanes.len()];
        for owner in resolved.values() {
            counts[owner.shard] += 1;
        }
        let coordinator = counts
            .iter()
            .enumerate()
            .max_by_key(|(shard, count)| (**count, std::cmp::Reverse(*shard)))
            .map(|(shard, _)| shard)
            .unwrap_or(0);
        let mut per_shard: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        for (name, owner) in resolved {
            if owner.shard == coordinator {
                continue;
            }
            if owner.is_view {
                // Views have no rows to export; planning them needs the
                // owning shard's catalog. Cross-shard view reads are a
                // documented limitation (docs/SHARDING.md).
                self.cross_shard_rejects.fetch_add(1, Ordering::Relaxed);
                return Err((
                    codes::CROSS_SHARD,
                    format!(
                        "view '{name}' lives on shard{} with the tables it reads, but \
                         this query would gather on shard{coordinator} ({}); views \
                         cannot be exported — query the view alone, or join it only \
                         with tables on shard{}",
                        owner.shard,
                        render_placement(resolved),
                        owner.shard
                    ),
                ));
            }
            per_shard.entry(owner.shard).or_default().push(name.clone());
        }
        // Shared side of the consistent-cut gate: no two-phase commit can
        // be mid-flight anywhere while we hold this, so the exported images
        // reflect every distributed transaction entirely or not at all.
        let gate = self.txn_gate.read().unwrap_or_else(|e| e.into_inner());
        let ctx = self.begin_root(coordinator, query_id, &command);
        self.lanes[coordinator].ring.record(SpanRecord::child(
            ctx,
            SpanKind::Router,
            coordinator as u16,
            "route",
            &format!(
                "scatter-gather coordinator={coordinator} exports={} cut=[{}]",
                per_shard.len(),
                self.cut_vector()
            ),
            resolve_us,
            true,
        ));
        let reply = self.scatter_gather_inner(session, command, per_shard, ctx, coordinator);
        drop(gate);
        self.finish_root(coordinator, ctx, started, reply.is_ok());
        reply
    }

    /// The fallible phase of a scatter-gather, split out so the caller can
    /// close the root span on every exit path.
    fn scatter_gather_inner(
        &self,
        session: u64,
        command: Command,
        per_shard: BTreeMap<usize, Vec<String>>,
        ctx: TraceContext,
        coordinator: usize,
    ) -> Reply {
        // Scatter: all exports run in parallel on their shard threads.
        let mut waits = Vec::with_capacity(per_shard.len());
        for (shard, names) in per_shard {
            let (reply_tx, reply_rx) = mpsc::channel();
            self.admit(
                shard,
                Job::ExportTables {
                    names,
                    reply: reply_tx,
                    ctx: Some(ctx),
                },
                Admission::Internal,
            )?;
            waits.push(reply_rx);
        }
        let mut images: Vec<TableImage> = Vec::new();
        for reply_rx in waits {
            let exported = reply_rx
                .recv()
                .map_err(|_| (codes::INTERNAL, "executor dropped the job".to_string()))??;
            images.extend(exported);
        }
        self.scatter_gathers.fetch_add(1, Ordering::Relaxed);
        // Gather: the coordinator installs the images, runs the query, and
        // removes them before answering.
        let (reply_tx, reply_rx) = mpsc::channel();
        self.admit(
            coordinator,
            Job::Gather {
                session,
                command,
                images,
                reply: reply_tx,
                ctx: Some(ctx),
                enqueued: Instant::now(),
            },
            Admission::Client,
        )?;
        reply_rx
            .recv()
            .map_err(|_| (codes::INTERNAL, "executor dropped the job".to_string()))?
    }

    /// Apply DDL ownership changes after the owning shard acknowledged.
    fn apply_changes(&self, shard: usize, changes: Vec<OwnershipChange>) {
        if changes.is_empty() {
            return;
        }
        let mut own = self.ownership.lock().expect("ownership lock");
        for change in changes {
            match change {
                OwnershipChange::Create { name, is_view } => {
                    own.insert(name, Owner { shard, is_view });
                }
                OwnershipChange::Drop { name } => {
                    own.remove(&name);
                }
            }
        }
    }

    /// `SET` affects per-session state held by every executor, so it is
    /// broadcast; the first error (or the first body) answers. Only shard
    /// 0's leg ticks the per-verb counters, so one client `SET` counts once
    /// no matter the shard count. The root span lives on shard 0's ring;
    /// every shard's exec span is a child of it.
    fn broadcast_set(
        &self,
        session: u64,
        command: Command,
        query_id: u64,
        started: Instant,
    ) -> Reply {
        let ctx = self.begin_root(0, query_id, &command);
        let mut reply: Reply = Ok(String::new());
        let mut first: Option<String> = None;
        for shard in 0..self.lanes.len() {
            match self.run_on_ctx(shard, session, command.clone(), Some(ctx), shard == 0) {
                Ok(body) => {
                    first.get_or_insert(body);
                }
                Err(e) => {
                    reply = Err(e);
                    break;
                }
            }
        }
        if reply.is_ok() {
            reply = Ok(first.unwrap_or_default());
        }
        self.finish_root(0, ctx, started, reply.is_ok());
        reply
    }

    /// `CHECKPOINT` runs on every shard in parallel; the per-shard summary
    /// lines are summed into one. The root span lives on shard 0's ring.
    fn broadcast_checkpoint(&self, session: u64, query_id: u64, started: Instant) -> Reply {
        let ctx = self.begin_root(0, query_id, &Command::Checkpoint);
        let reply = self.broadcast_checkpoint_inner(session, ctx);
        self.finish_root(0, ctx, started, reply.is_ok());
        reply
    }

    fn broadcast_checkpoint_inner(&self, session: u64, ctx: TraceContext) -> Reply {
        let mut waits = Vec::with_capacity(self.lanes.len());
        for shard in 0..self.lanes.len() {
            let (reply_tx, reply_rx) = mpsc::channel();
            self.admit(
                shard,
                Job::Command {
                    session,
                    command: Command::Checkpoint,
                    reply: reply_tx,
                    ctx: Some(ctx),
                    enqueued: Instant::now(),
                    // One client CHECKPOINT counts once, not once per shard.
                    counted: shard == 0,
                },
                Admission::Client,
            )?;
            waits.push(reply_rx);
        }
        let mut bodies = Vec::with_capacity(waits.len());
        for reply_rx in waits {
            bodies.push(
                reply_rx
                    .recv()
                    .map_err(|_| (codes::INTERNAL, "executor dropped the job".to_string()))??,
            );
        }
        Ok(sum_checkpoints(&bodies).unwrap_or_else(|| bodies.swap_remove(0)))
    }

    /// Answer `TRACE` from the shard rings, without an executor round-trip.
    /// The router counts the verb and its latency itself — the executors
    /// never see the command, and the rings never record it (a fresh server
    /// truthfully answers "no spans recorded").
    fn serve_trace(&self, req: TraceRequest) -> Reply {
        let started = Instant::now();
        let body = match req {
            TraceRequest::Recent(n) => {
                let mut spans: Vec<Span> = Vec::new();
                for lane in &self.lanes {
                    let held = lane.ring.len();
                    spans.extend(lane.ring.recent(held));
                }
                render_recent_roots(spans, n)
            }
            TraceRequest::Tree(query_id) => {
                let mut spans: Vec<Span> = Vec::new();
                for lane in &self.lanes {
                    spans.extend(lane.ring.spans_for_query(query_id));
                }
                render_query_tree(query_id, spans)
            }
        };
        self.metrics.record_latency("TRACE", started.elapsed());
        self.metrics.count_verb("TRACE");
        Ok(body)
    }

    /// `STATS`: shard 0's full body plus per-shard gauges and the sharding
    /// aggregates (always present, even with one shard, so dashboards need
    /// no shard-count special case).
    fn stats(&self, session: u64) -> Reply {
        // Snapshot the lane gauges BEFORE admitting the STATS job: the job
        // itself ticks shard 0's dequeue counter, and the rendered body
        // must match what a `/metrics` scrape read a moment earlier.
        let gauges: Vec<(u64, u64)> = self
            .lanes
            .iter()
            .map(|l| {
                (
                    l.stats.queue_depth.load(Ordering::Relaxed),
                    l.stats.commands.load(Ordering::Relaxed),
                )
            })
            .collect();
        let mut body = self.run_on(0, session, Command::Stats)?;
        let snapshots = self.shard_snapshots()?;
        use std::fmt::Write as _;
        for (k, snap) in snapshots.iter().enumerate() {
            let (queued, commands) = gauges[k];
            let _ = write!(body, "\nshard{k}.queue_depth {queued}");
            let _ = write!(body, "\nshard{k}.commands {commands}");
            let _ = write!(body, "\nshard{k}.health {}", snap.health);
            let _ = write!(
                body,
                "\nshard{k}.wal_group_commits {}",
                snap.wal_group_commits
            );
        }
        for m in self.router_samples(&snapshots) {
            let _ = write!(body, "\n{}", crate::metrics::render_stats_text(&[m]));
        }
        Ok(body)
    }

    /// One [`ShardSnapshot`] per lane (health + WAL counters).
    fn shard_snapshots(&self) -> Result<Vec<ShardSnapshot>, (&'static str, String)> {
        let mut waits = Vec::with_capacity(self.lanes.len());
        for lane in &self.lanes {
            let (reply_tx, reply_rx) = mpsc::channel();
            if lane.tx.send(Job::ShardInfo { reply: reply_tx }).is_err() {
                return Err((codes::INTERNAL, "executor unavailable".into()));
            }
            waits.push(reply_rx);
        }
        let mut snapshots: Vec<ShardSnapshot> = Vec::with_capacity(waits.len());
        for reply_rx in waits {
            snapshots.push(
                reply_rx
                    .recv()
                    .map_err(|_| (codes::INTERNAL, "executor dropped the job".to_string()))?,
            );
        }
        Ok(snapshots)
    }

    /// The router-scoped samples (sharding and group-commit aggregates),
    /// rendered at the tail of `STATS` and exported on `/metrics`.
    fn router_samples(&self, snapshots: &[ShardSnapshot]) -> Vec<Metric> {
        let records: u64 = snapshots.iter().map(|s| s.wal_records).sum();
        let fsyncs: u64 = snapshots.iter().map(|s| s.wal_fsyncs).sum();
        let group_commits: u64 = snapshots.iter().map(|s| s.wal_group_commits).sum();
        let group_records: u64 = snapshots.iter().map(|s| s.wal_group_records).sum();
        let per_fsync = if fsyncs == 0 {
            0.0
        } else {
            records as f64 / fsyncs as f64
        };
        vec![
            Metric::gauge("shards", self.lanes.len() as u64),
            Metric::counter("shard_fallbacks", self.fallbacks.load(Ordering::Relaxed)),
            Metric::counter(
                "shard_scatter_gather",
                self.scatter_gathers.load(Ordering::Relaxed),
            ),
            Metric::counter(
                "cross_shard_rejects",
                self.cross_shard_rejects.load(Ordering::Relaxed),
            ),
            Metric::counter("txn_commits", self.txn_commits.load(Ordering::Relaxed)),
            Metric::counter("txn_aborts", self.txn_aborts.load(Ordering::Relaxed)),
            Metric::counter("wal_group_commits", group_commits),
            Metric::counter("wal_group_committed_records", group_records),
            Metric::gaugef("wal_commits_per_fsync", per_fsync, 2),
        ]
    }

    /// The full `/metrics` exposition body: server samples, every shard's
    /// engine samples and gauges (labeled `shard="k"`), and the router
    /// aggregates — the same typed samples `STATS` renders, in Prometheus
    /// text format. The scrape counts itself *before* collecting, so the
    /// exported `metrics_scrapes` includes the serving scrape — mirroring
    /// `STATS`, which counts itself only after rendering, keeps both
    /// surfaces stable under the "scrape, then STATS" comparison.
    pub fn prometheus_body(&self) -> Result<String, (&'static str, String)> {
        self.metrics.metrics_scrapes.fetch_add(1, Ordering::Relaxed);
        let mut samples = self.metrics.server_samples();
        for (k, lane) in self.lanes.iter().enumerate() {
            let shard = k.to_string();
            samples.push(
                Metric::gauge(
                    format!("shard{k}.queue_depth"),
                    lane.stats.queue_depth.load(Ordering::Relaxed),
                )
                .named("shard_queue_depth")
                .label("shard", shard.clone()),
            );
            samples.push(
                Metric::counter(
                    format!("shard{k}.commands"),
                    lane.stats.commands.load(Ordering::Relaxed),
                )
                .named("shard_commands")
                .label("shard", shard.clone()),
            );
            // Engine samples ride the job queue (the engine is not Send);
            // the snapshot job is deliberately uncounted so scraping does
            // not perturb what it reports.
            let (reply_tx, reply_rx) = mpsc::channel();
            lane.tx
                .send(Job::MetricsSnapshot { reply: reply_tx })
                .map_err(|_| (codes::INTERNAL, "executor unavailable".to_string()))?;
            let engine = reply_rx
                .recv()
                .map_err(|_| (codes::INTERNAL, "executor dropped the job".to_string()))?;
            samples.extend(engine);
        }
        let snapshots = self.shard_snapshots()?;
        for (k, snap) in snapshots.iter().enumerate() {
            let shard = k.to_string();
            samples.push(
                Metric::text(format!("shard{k}.health"), snap.health.clone())
                    .named("shard_health")
                    .label("shard", shard.clone()),
            );
            samples.push(
                Metric::counter(
                    format!("shard{k}.wal_group_commits"),
                    snap.wal_group_commits,
                )
                .named("shard_wal_group_commits")
                .label("shard", shard),
            );
        }
        samples.extend(self.router_samples(&snapshots));
        Ok(render_prometheus(&samples))
    }
}

/// Render the most recent `n` finished **root** spans across all rings,
/// newest first (the `TRACE [n]` listing). Children are reachable via
/// `TRACE q<id>`; keeping the listing roots-only makes it a query log.
pub(crate) fn render_recent_roots(mut spans: Vec<Span>, n: usize) -> String {
    spans.retain(|s| s.parent == 0);
    // Per-ring seq is the finish order; the span id breaks cross-ring ties
    // (ids are process-global and allocation-ordered).
    spans.sort_by_key(|s| std::cmp::Reverse((s.seq, s.id)));
    spans.truncate(n);
    if spans.is_empty() {
        return "no spans recorded".to_string();
    }
    spans
        .iter()
        .map(Span::render)
        .collect::<Vec<_>>()
        .join("\n")
}

/// Render one query's span tree (the `TRACE q<id>` body): a header, the
/// spans as an indented tree in id (allocation) order, per-shard time
/// attribution, and the root's total.
pub(crate) fn render_query_tree(query_id: u64, mut spans: Vec<Span>) -> String {
    if spans.is_empty() {
        return format!("no spans recorded for q{query_id}");
    }
    spans.sort_by_key(|s| s.id);
    let ids: HashSet<u64> = spans.iter().map(|s| s.id).collect();
    let mut children: BTreeMap<u64, Vec<&Span>> = BTreeMap::new();
    let mut roots: Vec<&Span> = Vec::new();
    for s in &spans {
        // Spans whose parent was evicted render at top level rather than
        // disappearing.
        if s.parent == 0 || !ids.contains(&s.parent) {
            roots.push(s);
        } else {
            children.entry(s.parent).or_default().push(s);
        }
    }
    let mut out = format!("trace q{query_id} spans={}", spans.len());
    let mut stack: Vec<(&Span, usize)> = roots.iter().rev().map(|s| (*s, 0)).collect();
    while let Some((span, depth)) = stack.pop() {
        out.push('\n');
        out.push_str(&"  ".repeat(depth));
        out.push_str(&span.render());
        if let Some(kids) = children.get(&span.id) {
            for kid in kids.iter().rev() {
                stack.push((kid, depth + 1));
            }
        }
    }
    // Per-shard attribution: executor-side work only. Queue wait is not
    // shard work, and engine phases are inside their exec span already.
    let mut per_shard: BTreeMap<u16, u64> = BTreeMap::new();
    for s in &spans {
        if matches!(
            s.kind,
            SpanKind::ShardExec
                | SpanKind::SgExport
                | SpanKind::SgInstall
                | SpanKind::SgGather
                | SpanKind::WalGroupFsync
                | SpanKind::TxnPrepare
                | SpanKind::TxnCommit
        ) {
            *per_shard.entry(s.shard).or_insert(0) += s.elapsed_us;
        }
    }
    if !per_shard.is_empty() {
        out.push_str("\nshard_us");
        for (shard, us) in &per_shard {
            out.push_str(&format!(" shard{shard}={us}"));
        }
    }
    if let Some(root) = spans
        .iter()
        .find(|s| s.parent == 0 && s.kind == SpanKind::Command)
    {
        out.push_str(&format!("\ntotal_us {}", root.elapsed_us));
    }
    out
}

/// Render a resolved placement for error messages: `a=shard0, b=shard2`.
fn render_placement(resolved: &BTreeMap<String, Owner>) -> String {
    resolved
        .iter()
        .map(|(name, owner)| format!("{name}=shard{}", owner.shard))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Sum per-shard `checkpoint tables=.. rows=.. snapshot_bytes=..
/// wal_truncated=..` summaries into one line; `None` when a body does not
/// match the expected shape.
fn sum_checkpoints(bodies: &[String]) -> Option<String> {
    let mut totals = [0u64; 4];
    for body in bodies {
        for (slot, key) in ["tables=", "rows=", "snapshot_bytes=", "wal_truncated="]
            .iter()
            .enumerate()
        {
            let value = body
                .split(key)
                .nth(1)?
                .split_whitespace()
                .next()?
                .parse::<u64>()
                .ok()?;
            totals[slot] += value;
        }
    }
    Some(format!(
        "checkpoint tables={} rows={} snapshot_bytes={} wal_truncated={}",
        totals[0], totals[1], totals[2], totals[3]
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use etypes::next_span_id;

    #[test]
    fn shard_of_is_stable_and_bounded() {
        for name in ["t1", "t2", "orders", "lineitem", "a", ""] {
            let s = shard_of(name, 4);
            assert!(s < 4);
            assert_eq!(s, shard_of(name, 4), "placement must be deterministic");
        }
        assert_eq!(shard_of("anything", 1), 0);
        assert_eq!(shard_of("anything", 0), 0, "shards=0 clamps to one shard");
    }

    #[test]
    fn shard_of_spreads_names() {
        // Not a statistical test — just require that the hash is not
        // degenerate over a realistic name population.
        let mut seen = [false; 4];
        for i in 0..64 {
            seen[shard_of(&format!("table_{i}"), 4)] = true;
        }
        assert!(seen.iter().all(|s| *s), "64 names must cover 4 shards");
    }

    #[test]
    fn checkpoint_summaries_sum() {
        let bodies = vec![
            "checkpoint tables=2 rows=10 snapshot_bytes=100 wal_truncated=7".to_string(),
            "checkpoint tables=1 rows=5 snapshot_bytes=50 wal_truncated=3".to_string(),
        ];
        assert_eq!(
            sum_checkpoints(&bodies).unwrap(),
            "checkpoint tables=3 rows=15 snapshot_bytes=150 wal_truncated=10"
        );
        assert!(sum_checkpoints(&["nonsense".to_string()]).is_none());
    }

    #[test]
    fn queue_gauge_decrement_saturates() {
        let stats = ShardStats::default();
        stats.dec_queue_depth();
        assert_eq!(stats.queue_depth.load(Ordering::Relaxed), 0);
        stats.queue_depth.fetch_add(2, Ordering::Relaxed);
        stats.dec_queue_depth();
        assert_eq!(stats.queue_depth.load(Ordering::Relaxed), 1);
    }

    fn span(id: u64, parent: u64, qid: u64, kind: SpanKind, shard: u16, us: u64) -> Span {
        Span {
            seq: id,
            id,
            parent,
            query_id: qid,
            kind,
            shard,
            name: "QUERY".into(),
            detail: String::new(),
            elapsed_us: us,
            ok: true,
        }
    }

    #[test]
    fn recent_roots_lists_only_roots_newest_first() {
        let spans = vec![
            span(1, 0, 1, SpanKind::Command, 0, 100),
            span(2, 1, 1, SpanKind::ShardExec, 0, 80),
            span(3, 0, 2, SpanKind::Command, 0, 50),
        ];
        let body = render_recent_roots(spans, 10);
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2, "{body}");
        assert!(lines[0].contains("qid=q2"), "{body}");
        assert!(lines[1].contains("qid=q1"), "{body}");
        assert_eq!(render_recent_roots(Vec::new(), 10), "no spans recorded");
    }

    #[test]
    fn query_tree_renders_hierarchy_and_shard_attribution() {
        let spans = vec![
            span(1, 0, 7, SpanKind::Command, 1, 500),
            span(2, 1, 7, SpanKind::Router, 1, 10),
            span(3, 1, 7, SpanKind::SgExport, 2, 40),
            span(4, 1, 7, SpanKind::SgGather, 1, 300),
            span(5, 4, 7, SpanKind::EnginePhase, 1, 200),
        ];
        let body = render_query_tree(7, spans);
        assert!(body.starts_with("trace q7 spans=5"), "{body}");
        let lines: Vec<&str> = body.lines().collect();
        // The root is unindented, its children one level in, the phase two.
        assert!(lines[1].starts_with("span "), "{body}");
        assert!(lines[2].starts_with("  span "), "{body}");
        let phase_line = lines.iter().find(|l| l.contains("engine-phase")).unwrap();
        assert!(phase_line.starts_with("    span "), "{body}");
        // Shard attribution: exec kinds only, engine phases excluded.
        assert!(body.contains("shard_us shard1=300 shard2=40"), "{body}");
        assert!(body.contains("total_us 500"), "{body}");
        assert_eq!(render_query_tree(9, Vec::new()), "no spans recorded for q9");
    }

    #[test]
    fn query_tree_keeps_orphans_visible() {
        // Parent 99 is not in the set (evicted): the child renders at top
        // level instead of vanishing.
        let spans = vec![span(5, 99, 3, SpanKind::ShardExec, 0, 10)];
        let body = render_query_tree(3, spans);
        assert!(body.contains("spans=1"), "{body}");
        assert!(body.lines().nth(1).unwrap().starts_with("span "), "{body}");
        let _ = next_span_id();
    }
}
