//! The per-shard single-threaded query executor.
//!
//! [`sqlengine::Engine`] is deliberately not `Send` (its catalog shares
//! view definitions via `Rc`), so the server gives each shard's engine a
//! dedicated thread: the engine is *constructed on* that thread and never
//! leaves it. The shard router submits [`Job`]s over a **bounded**
//! `std::sync::mpsc` channel — the bound is the server's backpressure:
//! when an executor falls behind, admission control converts the full
//! queue into a retryable `ERR_BUSY` instead of letting it grow without
//! limit.
//!
//! **Group commit**: the executor drains its queue in batches (one
//! blocking `recv`, then up to [`GROUP_MAX`] opportunistic `try_recv`s)
//! and brackets each batch with the engine's commit group. Under an
//! `always` fsync policy every statement in the batch defers its fsync
//! *and its acknowledgment*; closing the group issues one fsync for all of
//! them, then the buffered replies are released. One disk flush thus
//! acknowledges many concurrent commits (`wal_group_commits` /
//! `wal_commits_per_fsync` in `STATS`) without weakening durability: no
//! client sees an `ok` before its records are synced. If the closing fsync
//! fails, the engine unwinds the batch's in-memory effects and every reply
//! that depended on the failed window is rewritten to the storage error.
//!
//! Shutdown is cooperative and loses nothing: `SHUTDOWN` travels through
//! the queue like any command; the executor flips the shared flag (stopping
//! the accept loop), answers `draining`, and keeps serving until every
//! sender — the router owned by the accept loop and all session clones —
//! has been dropped, at which point `recv` disconnects and the thread
//! exits. Every job enqueued before the last sender dropped still gets its
//! response.

use crate::metrics::Metrics;
use crate::protocol::{codes, Command};
use crate::repl::{ReplRole, ReplState};
use crate::shard::ShardStats;
use elephant_repl::ReplOp;
use etypes::SpanRing;
use mlinspect::SqlMode;
use sqlengine::{Engine, EngineProfile, ExecMode, FsyncPolicy, SqlError, TableImage, WalHandle};
use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, SyncSender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// What the executor sends back: a response body, or an error code + message.
pub(crate) type Reply = Result<String, (&'static str, String)>;

/// One unit of work for the executor thread.
pub(crate) enum Job {
    /// A client command; the result goes back on `reply`.
    Command {
        /// Originating session id (scopes prepared-statement names).
        session: u64,
        /// The parsed command.
        command: Command,
        /// Where the session blocks waiting for the answer.
        reply: mpsc::Sender<Reply>,
    },
    /// A session disconnected: drop its prepared statements.
    CloseSession {
        /// The closed session's id.
        session: u64,
    },
    /// A replication op from the follower apply loop. The engine is not
    /// `Send`, so shipped state changes ride the same queue as client
    /// commands and apply between them on the executor thread.
    Repl {
        /// The decoded snapshot or WAL frames to apply.
        op: ReplOp,
        /// Where the follower loop blocks for the outcome; an `Err` makes
        /// it re-bootstrap from a fresh snapshot.
        reply: mpsc::Sender<Result<(), String>>,
    },
    /// Scatter leg of a cross-shard read: export the named tables as
    /// images for a coordinator shard to install.
    ExportTables {
        /// Base tables owned by this shard.
        names: Vec<String>,
        /// Where the router waits for the images.
        reply: mpsc::Sender<Result<Vec<TableImage>, (&'static str, String)>>,
    },
    /// Gather leg of a cross-shard read: install foreign images, run the
    /// whole command locally, remove the images, answer.
    Gather {
        /// Originating session id (selects the session's exec mode).
        session: u64,
        /// The read-only command to run over local + foreign tables.
        command: Command,
        /// Exported tables from the other involved shards.
        images: Vec<TableImage>,
        /// Where the router waits for the answer.
        reply: mpsc::Sender<Reply>,
    },
    /// Snapshot this shard's health and WAL counters for composed `STATS`.
    ShardInfo {
        /// Where the router waits for the snapshot.
        reply: mpsc::Sender<ShardSnapshot>,
    },
}

/// Per-shard counters surfaced in composed `STATS` output.
pub(crate) struct ShardSnapshot {
    /// The engine's health line (`healthy` / `read_only (...)`).
    pub health: String,
    /// WAL records appended (0 for volatile shards).
    pub wal_records: u64,
    /// WAL fsyncs issued (0 for volatile shards).
    pub wal_fsyncs: u64,
    /// Group-commit windows that acknowledged at least one deferred record.
    pub wal_group_commits: u64,
    /// Records acknowledged by those group fsyncs.
    pub wal_group_records: u64,
}

/// Executor construction parameters.
pub(crate) struct ExecutorConfig {
    /// Use the in-memory (Umbra-like) profile instead of disk-based.
    pub in_memory: bool,
    /// Default execution mode for every session; sessions override it with
    /// `SET exec_mode <row|columnar|auto>` for their own commands only.
    pub exec_mode: ExecMode,
    /// Virtual files visible to `INSPECT` pipelines (`read_csv` targets).
    pub files: Vec<(String, String)>,
    /// Bound of the job queue (backpressure threshold).
    pub queue_capacity: usize,
    /// Directory for WAL + snapshots; `None` keeps the engine volatile.
    pub data_dir: Option<PathBuf>,
    /// Fsync policy for the durable store (ignored without `data_dir`).
    pub fsync: FsyncPolicy,
    /// Log commands slower than this many microseconds, with their
    /// operator profile when one is available. `None` disables the log.
    pub slow_query_us: Option<u64>,
    /// Cancel statements cooperatively after this many milliseconds;
    /// `None` lets statements run unbounded.
    pub statement_timeout_ms: Option<u64>,
    /// Checkpoint automatically once the WAL grows past this many bytes.
    pub auto_checkpoint_wal_bytes: Option<u64>,
    /// Replication topology shared with `REPLICA`/`LAG`/`STATS`. Follower
    /// role pins the engine read-only for the server's whole life.
    pub repl: Arc<ReplState>,
    /// This executor's shard id (names the thread, labels diagnostics).
    pub shard_id: usize,
    /// Gauges shared with the shard router.
    pub lane: Arc<ShardStats>,
}

/// How many finished-command spans the executor keeps for `TRACE`.
const SPAN_RING_CAPACITY: usize = 256;

/// Upper bound on one batch drained into a single commit group. Bounds
/// both reply latency under load and the unwind window of a failed group
/// fsync.
const GROUP_MAX: usize = 32;

/// A command's buffered outcome, released after the commit group closes.
struct DeferredReply {
    reply: mpsc::Sender<Reply>,
    verb: &'static str,
    detail: String,
    elapsed: Duration,
    result: Reply,
    /// Whether this command pushed group-undo entries (i.e. has durable
    /// effects pending the closing fsync).
    grew: bool,
    /// Engine group epoch at dispatch: entries from an older epoch were
    /// already made durable (e.g. by a mid-batch checkpoint) and survive a
    /// failed closing fsync.
    epoch: u64,
}

/// Spawn one shard's executor thread; returns the job sender, the join
/// handle, the store's [`WalHandle`] (durable engines only, so `start()`
/// can wire the replication listener), and the recovered base-table names
/// (so the router can seed shard ownership). The thread exits when every
/// clone of the returned sender is dropped. Fails when the durable store
/// cannot be opened or recovered — the thread reports engine construction
/// over a handshake channel before serving.
#[allow(clippy::type_complexity)]
pub(crate) fn spawn(
    cfg: ExecutorConfig,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
) -> io::Result<(
    SyncSender<Job>,
    JoinHandle<()>,
    Option<WalHandle>,
    Vec<String>,
)> {
    let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_capacity.max(1));
    let (init_tx, init_rx) = mpsc::channel::<Result<(Option<WalHandle>, Vec<String>), String>>();
    let handle = thread::Builder::new()
        .name(format!("elephant-executor-{}", cfg.shard_id))
        .spawn(move || {
            // The engine must be created here: it is not Send.
            let profile = if cfg.in_memory {
                EngineProfile::in_memory()
            } else {
                EngineProfile::disk_based()
            };
            let engine = match &cfg.data_dir {
                Some(dir) => Engine::open_durable(profile, dir, cfg.fsync),
                None => Ok(Engine::new(profile)),
            };
            let mut engine = match engine {
                Ok(engine) => engine,
                Err(e) => {
                    let _ = init_tx.send(Err(e.to_string()));
                    return;
                }
            };
            if cfg.repl.role() == ReplRole::Follower {
                // A follower's only writer is the leader's WAL; every
                // client write is refused for the process's whole life.
                engine.pin_read_only("replica: writes must go to the leader");
            }
            engine.set_auto_checkpoint_wal_bytes(cfg.auto_checkpoint_wal_bytes);
            let recovered: Vec<String> = engine
                .catalog()
                .table_names()
                .into_iter()
                .map(str::to_string)
                .collect();
            let _ = init_tx.send(Ok((engine.wal_handle(), recovered)));
            let mut state = ExecutorState {
                engine,
                files: cfg.files,
                default_exec_mode: cfg.exec_mode,
                session_modes: HashMap::new(),
                prepared: HashMap::new(),
                metrics,
                shutdown,
                ring: SpanRing::new(SPAN_RING_CAPACITY),
                slow_query_us: cfg.slow_query_us,
                repl: cfg.repl,
                lane: cfg.lane,
                auto_checkpoint_wal_bytes: cfg.auto_checkpoint_wal_bytes,
            };
            if state.slow_query_us.is_some() {
                // The slow-query log wants operator profiles for QUERY too,
                // not just EXPLAIN ANALYZE.
                state.engine.set_capture_profiles(true);
            }
            if let Some(ms) = cfg.statement_timeout_ms {
                state
                    .engine
                    .set_statement_timeout(Some(Duration::from_millis(ms)));
            }
            // Batch-at-a-time service loop: block for one job, drain up to
            // GROUP_MAX more without blocking, run the batch inside one
            // commit group, then release the buffered replies.
            while let Ok(first) = rx.recv() {
                let mut batch = Vec::with_capacity(GROUP_MAX);
                batch.push(first);
                while batch.len() < GROUP_MAX {
                    match rx.try_recv() {
                        Ok(job) => batch.push(job),
                        Err(_) => break,
                    }
                }
                state.engine.begin_commit_group();
                let mut deferred: Vec<DeferredReply> = Vec::with_capacity(batch.len());
                for job in batch {
                    match job {
                        Job::Command {
                            session,
                            command,
                            reply,
                        } => {
                            // Only client-facing jobs were counted into the
                            // gauges; decrementing for CloseSession/Repl
                            // would underflow them.
                            state.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                            state.lane.dec_queue_depth();
                            state.lane.commands.fetch_add(1, Ordering::Relaxed);
                            let started = Instant::now();
                            let verb = command.verb();
                            let detail = command.summary();
                            let pending_before = state.engine.group_pending();
                            let epoch = state.engine.group_epoch();
                            let result = state.dispatch(session, command);
                            deferred.push(DeferredReply {
                                reply,
                                verb,
                                detail,
                                elapsed: started.elapsed(),
                                result,
                                grew: state.engine.group_pending() > pending_before,
                                epoch,
                            });
                        }
                        Job::CloseSession { session } => state.close_session(session),
                        Job::Repl { op, reply } => {
                            let _ = reply.send(state.apply_repl(op));
                        }
                        Job::ExportTables { names, reply } => {
                            state.lane.dec_queue_depth();
                            state.lane.commands.fetch_add(1, Ordering::Relaxed);
                            let images = state
                                .engine
                                .export_table_images(&names)
                                .map_err(|e| state.classify(e));
                            let _ = reply.send(images);
                        }
                        Job::Gather {
                            session,
                            command,
                            images,
                            reply,
                        } => {
                            // Gathers are read-only: they defer nothing, so
                            // answering inside the group window is safe.
                            state.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                            state.lane.dec_queue_depth();
                            state.lane.commands.fetch_add(1, Ordering::Relaxed);
                            let started = Instant::now();
                            let verb = command.verb();
                            let detail = command.summary();
                            let result = state.gather(session, command, images);
                            let elapsed = started.elapsed();
                            state.metrics.record_latency(verb, elapsed);
                            match &result {
                                Ok(_) => state.metrics.count_verb(verb),
                                Err(_) => {
                                    state.metrics.exec_errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            state.finish_span(verb, detail, elapsed, result.is_ok());
                            let _ = reply.send(result);
                        }
                        Job::ShardInfo { reply } => {
                            let _ = reply.send(state.shard_snapshot());
                        }
                    }
                }
                // One fsync acknowledges the whole batch. On failure the
                // engine has already unwound every in-memory effect from
                // the failed window; rewrite the replies that depended on
                // it so no client sees an `ok` for a lost write.
                let pre_end_epoch = state.engine.group_epoch();
                let group_err = match state.engine.end_commit_group() {
                    Ok(_) => None,
                    Err(e) => Some(state.classify(e)),
                };
                for mut d in deferred {
                    if let Some((code, msg)) = &group_err {
                        if d.grew && d.epoch == pre_end_epoch && d.result.is_ok() {
                            d.result = Err((code, msg.clone()));
                        }
                    }
                    state.metrics.record_latency(d.verb, d.elapsed);
                    match &d.result {
                        Ok(_) => state.metrics.count_verb(d.verb),
                        Err(_) => {
                            state.metrics.exec_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    state.finish_span(d.verb, d.detail, d.elapsed, d.result.is_ok());
                    // A dropped receiver means the session died mid-query;
                    // nothing to do — the answer has nowhere to go.
                    let _ = d.reply.send(d.result);
                }
            }
        })?;
    match init_rx.recv() {
        Ok(Ok((wal, recovered))) => Ok((tx, handle, wal, recovered)),
        Ok(Err(msg)) => {
            let _ = handle.join();
            Err(io::Error::other(format!("storage recovery failed: {msg}")))
        }
        Err(_) => {
            let _ = handle.join();
            Err(io::Error::other("executor thread died during startup"))
        }
    }
}

struct ExecutorState {
    engine: Engine,
    files: Vec<(String, String)>,
    /// Server-wide execution mode (`--exec-mode`), used by sessions
    /// without an override.
    default_exec_mode: ExecMode,
    /// Per-session `SET exec_mode` overrides, dropped with the session.
    session_modes: HashMap<u64, ExecMode>,
    /// Prepared-statement names per live session (engine-scoped form).
    prepared: HashMap<u64, Vec<String>>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    /// Recent finished-command spans, served by `TRACE`.
    ring: SpanRing,
    slow_query_us: Option<u64>,
    repl: Arc<ReplState>,
    /// Gauges shared with the shard router.
    lane: Arc<ShardStats>,
    /// The configured auto-checkpoint threshold, restored after gathers
    /// (which hold auto-checkpoint off while foreign tables are installed).
    auto_checkpoint_wal_bytes: Option<u64>,
}

impl ExecutorState {
    /// Apply one replication op from the follower loop. Keeps a span so
    /// `TRACE` shows shipped writes interleaved with client commands.
    fn apply_repl(&mut self, op: ReplOp) -> Result<(), String> {
        let started = Instant::now();
        let (label, detail, result) = match op {
            ReplOp::Reset {
                snapshot_lsn,
                tables,
            } => (
                "REPL_RESET",
                format!("snapshot_lsn={snapshot_lsn} tables={}", tables.len()),
                self.engine.reset_from_images(tables),
            ),
            ReplOp::Apply { frames } => {
                let detail = match (frames.first(), frames.last()) {
                    (Some((lo, _)), Some((hi, _))) => format!("lsn={lo}..={hi}"),
                    _ => String::new(),
                };
                let result = frames
                    .into_iter()
                    .try_for_each(|(_, record)| self.engine.apply_wal_record(record));
                ("REPL_APPLY", detail, result)
            }
        };
        let ok = result.is_ok();
        self.ring
            .push(label, &detail, started.elapsed().as_micros() as u64, ok);
        result.map_err(|e| e.to_string())
    }

    /// Record the finished command in the span ring and, when it crossed
    /// the slow-query threshold, log it with its operator profile.
    fn finish_span(&mut self, verb: &str, detail: String, elapsed: Duration, ok: bool) {
        let us = elapsed.as_micros() as u64;
        self.ring.push(verb, &detail, us, ok);
        if let Some(threshold) = self.slow_query_us {
            if us >= threshold {
                eprintln!(
                    "[slow-query] verb={verb} us={us} ok={} {detail}",
                    u8::from(ok)
                );
                if verb == "QUERY" || verb == "EXECUTE" {
                    if let Some(profile) = self.engine.last_profile() {
                        for line in profile.render().lines() {
                            eprintln!("[slow-query]   {line}");
                        }
                    }
                }
            }
        }
    }

    /// Map an engine error to its wire code. Timeouts and read-only
    /// degradation carry their own codes so clients can tell retryable
    /// conditions from fatal ones; everything else is a plain `ERR_EXEC`.
    fn classify(&self, e: SqlError) -> (&'static str, String) {
        match e {
            SqlError::Timeout { .. } => {
                self.metrics
                    .statements_timed_out
                    .fetch_add(1, Ordering::Relaxed);
                (codes::TIMEOUT, e.to_string())
            }
            SqlError::ReadOnly(_) => (codes::READ_ONLY, e.to_string()),
            _ => (codes::EXEC, e.to_string()),
        }
    }

    fn dispatch(&mut self, session: u64, command: Command) -> Reply {
        // One engine serves every session, so the issuing session's
        // execution mode (its `SET exec_mode` override, else the server
        // default) is applied before each command runs.
        let mode = self
            .session_modes
            .get(&session)
            .copied()
            .unwrap_or(self.default_exec_mode);
        self.engine.set_exec_mode(mode);
        match command {
            Command::Query(sql) => {
                let out = self.engine.execute(&sql).map_err(|e| self.classify(e))?;
                Ok(match out.relation {
                    Some(rel) => etypes::csv::write_csv(&rel.columns, &rel.rows, ','),
                    None => format!("ok {}", out.rows_affected),
                })
            }
            Command::Prepare { name, sql } => {
                let scoped = scoped_name(session, &name);
                self.engine
                    .prepare(scoped.clone(), sql)
                    .map_err(|e| (codes::EXEC, e.to_string()))?;
                let names = self.prepared.entry(session).or_default();
                if !names.contains(&scoped) {
                    names.push(scoped);
                }
                Ok(format!("prepared {name}"))
            }
            Command::Execute(name) => {
                let rel = self
                    .engine
                    .execute_prepared(&scoped_name(session, &name))
                    .map_err(|e| self.classify(e))?;
                Ok(etypes::csv::write_csv(&rel.columns, &rel.rows, ','))
            }
            Command::Deallocate(name) => {
                let scoped = scoped_name(session, &name);
                self.engine
                    .deallocate(&scoped)
                    .map_err(|e| (codes::EXEC, e.to_string()))?;
                if let Some(names) = self.prepared.get_mut(&session) {
                    names.retain(|n| *n != scoped);
                }
                Ok(format!("deallocated {name}"))
            }
            Command::Explain { sql, analyze } => {
                let out = if analyze {
                    self.engine.explain_analyze(&sql)
                } else {
                    self.engine.explain(&sql)
                };
                out.map_err(|e| self.classify(e))
            }
            Command::Trace(n) => {
                let spans = self.ring.recent(n);
                if spans.is_empty() {
                    return Ok("no spans recorded".into());
                }
                Ok(spans
                    .iter()
                    .map(|s| s.render())
                    .collect::<Vec<_>>()
                    .join("\n"))
            }
            Command::Inspect {
                columns,
                threshold,
                source,
            } => {
                // `@name` selects one of the stock benchmark pipelines
                // instead of shipping the source over the wire.
                let source = match source.strip_prefix('@') {
                    Some(name) => {
                        let name = name.trim();
                        let stock = mlinspect::pipelines::all();
                        match stock.iter().find(|(n, _)| *n == name) {
                            Some((_, src)) => (*src).to_string(),
                            None => {
                                let known: Vec<&str> = stock.iter().map(|(n, _)| *n).collect();
                                return Err((
                                    codes::INSPECT,
                                    format!(
                                        "inspect unknown-pipeline: '{name}' (known: {})",
                                        known.join(", ")
                                    ),
                                ));
                            }
                        }
                    }
                    None => source,
                };
                let cols: Vec<&str> = columns.iter().map(|c| c.as_str()).collect();
                // Inspection materializes scratch tables it recreates on
                // every run — running it unlogged keeps those out of the
                // WAL and lets INSPECT keep serving when durable storage
                // has degraded the engine to read-only.
                let was_unlogged = self.engine.unlogged();
                self.engine.set_unlogged(true);
                let report = mlinspect::inspect_pipeline_in_sql(
                    &source,
                    &self.files,
                    &cols,
                    threshold,
                    &mut self.engine,
                    SqlMode::Cte,
                    false,
                );
                self.engine.set_unlogged(was_unlogged);
                let report = report.map_err(|e| (codes::INSPECT, format!("inspect {e}")))?;
                Ok(report.render())
            }
            Command::Set { name, value } => match name.as_str() {
                "exec_mode" => {
                    let mode: ExecMode = value
                        .parse()
                        .map_err(|e: String| (codes::PARSE, format!("set exec_mode: {e}")))?;
                    self.session_modes.insert(session, mode);
                    Ok(format!("set exec_mode {mode}"))
                }
                other => Err((
                    codes::PARSE,
                    format!("unknown session variable '{other}' (known: exec_mode)"),
                )),
            },
            Command::Stats => {
                let prepared_total: usize = self.prepared.values().map(Vec::len).sum();
                let mut body = self.metrics.render(
                    self.engine.plan_cache_stats(),
                    self.engine.plan_cache_len(),
                    prepared_total,
                );
                use std::fmt::Write as _;
                for (table, n) in self.engine.plan_cache_table_invalidations() {
                    let _ = write!(body, "\nplan_cache_invalidations.{table} {n}");
                }
                let phases = self.engine.trace().render_stats();
                if !phases.is_empty() {
                    let _ = write!(body, "\n{phases}");
                }
                let engine_stats = self.engine.stats();
                let _ = write!(body, "\nexec_mode {}", self.engine.exec_mode());
                let _ = write!(body, "\nbatches_executed {}", engine_stats.batches_executed);
                let _ = write!(
                    body,
                    "\ncolexec_fallbacks {}",
                    engine_stats.colexec_fallbacks
                );
                let _ = write!(body, "\ntrace_spans_recorded {}", self.ring.pushed());
                let _ = write!(body, "\ntrace_spans_retained {}", self.ring.len());
                let _ = write!(body, "\nhealth {}", self.engine.health().render());
                let _ = write!(body, "\nfaults_injected {}", etypes::fault::injected());
                let durable = u8::from(self.engine.is_durable());
                let _ = write!(body, "\nstorage_durable {durable}");
                if let Some(stats) = self.engine.storage_stats() {
                    let _ = write!(
                        body,
                        "\nwal_records_appended {}",
                        stats.wal.records_appended
                    );
                    let _ = write!(body, "\nwal_fsyncs {}", stats.wal.fsyncs);
                    let _ = write!(body, "\nwal_bytes {}", stats.wal.bytes);
                    let _ = write!(body, "\nstorage_checkpoints {}", stats.checkpoints);
                }
                if let Some(rec) = self.engine.recovery_report() {
                    let _ = write!(body, "\nrecovered_snapshot_tables {}", rec.snapshot_tables);
                    let _ = write!(body, "\nrecovered_snapshot_rows {}", rec.snapshot_rows);
                    let _ = write!(body, "\nrecovered_wal_records {}", rec.wal_records_applied);
                    let _ = write!(body, "\nrecovered_wal_torn_bytes {}", rec.wal_torn_bytes);
                }
                let _ = write!(
                    body,
                    "\nauto_checkpoints {}",
                    self.engine.auto_checkpoints()
                );
                let _ = write!(body, "\n{}", self.repl.stats_lines(self.committed_lsn()));
                Ok(body)
            }
            Command::Checkpoint => match self.engine.checkpoint() {
                Ok(Some(stats)) => Ok(format!(
                    "checkpoint tables={} rows={} snapshot_bytes={} wal_truncated={}",
                    stats.tables, stats.rows, stats.snapshot_bytes, stats.wal_bytes_truncated
                )),
                Ok(None) => Err((
                    codes::EXEC,
                    "checkpoint requires durable storage (start the server with --data-dir)".into(),
                )),
                Err(e) => Err(self.classify(e)),
            },
            Command::Replica => Ok(self.repl.render_replica(self.committed_lsn())),
            Command::Lag => Ok(self.repl.render_lag(self.committed_lsn())),
            Command::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                Ok("draining".into())
            }
        }
    }

    /// The WAL writer's committed-LSN watermark (durable engines only).
    fn committed_lsn(&self) -> Option<u64> {
        self.engine.wal_handle().map(|h| h.committed_lsn())
    }

    fn close_session(&mut self, session: u64) {
        self.session_modes.remove(&session);
        if let Some(names) = self.prepared.remove(&session) {
            for name in names {
                let _ = self.engine.deallocate(&name);
            }
        }
        // `sessions_closed` is counted once per session by the router (a
        // CloseSession broadcast reaches every shard).
    }

    /// Gather leg of a cross-shard read: install the foreign images, run
    /// the command against the combined catalog, then remove the images —
    /// always, even on error, so they never outlive the query.
    fn gather(&mut self, session: u64, command: Command, images: Vec<TableImage>) -> Reply {
        // Foreign images must never leak into this shard's snapshots: hold
        // auto-checkpoint off while they are installed.
        self.engine.set_auto_checkpoint_wal_bytes(None);
        let mut installed: Vec<String> = Vec::with_capacity(images.len());
        let mut result: Reply = Ok(String::new());
        for image in images {
            let name = image.name.clone();
            match self.engine.install_foreign_table(image) {
                Ok(()) => installed.push(name),
                Err(e) => {
                    result = Err((
                        codes::INTERNAL,
                        format!("scatter-gather install of '{name}' failed: {e}"),
                    ));
                    break;
                }
            }
        }
        if result.is_ok() {
            result = self.dispatch(session, command);
        }
        for name in &installed {
            self.engine.remove_foreign_table(name);
        }
        self.engine
            .set_auto_checkpoint_wal_bytes(self.auto_checkpoint_wal_bytes);
        result
    }

    /// Health + WAL counters for composed `STATS`.
    fn shard_snapshot(&self) -> ShardSnapshot {
        let wal = self.engine.storage_stats().map(|s| s.wal);
        ShardSnapshot {
            health: self.engine.health().render(),
            wal_records: wal.as_ref().map_or(0, |w| w.records_appended),
            wal_fsyncs: wal.as_ref().map_or(0, |w| w.fsyncs),
            wal_group_commits: wal.as_ref().map_or(0, |w| w.group_commits),
            wal_group_records: wal.as_ref().map_or(0, |w| w.group_committed_records),
        }
    }
}

fn scoped_name(session: u64, name: &str) -> String {
    format!("s{session}.{name}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(tx: &SyncSender<Job>, metrics: &Metrics, session: u64, cmd: Command) -> Reply {
        let (rtx, rrx) = mpsc::channel();
        metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
        tx.send(Job::Command {
            session,
            command: cmd,
            reply: rtx,
        })
        .expect("executor alive");
        rrx.recv().expect("reply")
    }

    fn spawn_volatile(
        metrics: &Arc<Metrics>,
        shutdown: &Arc<AtomicBool>,
    ) -> (SyncSender<Job>, JoinHandle<()>) {
        let (tx, join, wal, recovered) = spawn(
            ExecutorConfig {
                in_memory: true,
                exec_mode: ExecMode::default(),
                files: Vec::new(),
                queue_capacity: 4,
                data_dir: None,
                fsync: FsyncPolicy::Always,
                slow_query_us: None,
                statement_timeout_ms: None,
                auto_checkpoint_wal_bytes: None,
                repl: Arc::new(ReplState::standalone()),
                shard_id: 0,
                lane: Arc::new(ShardStats::default()),
            },
            Arc::clone(metrics),
            Arc::clone(shutdown),
        )
        .expect("volatile executor spawns");
        assert!(wal.is_none(), "volatile engines have no WAL handle");
        assert!(recovered.is_empty(), "volatile engines recover nothing");
        (tx, join)
    }

    #[test]
    fn executor_round_trip_and_scoped_prepare() {
        let metrics = Arc::new(Metrics::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, join) = spawn_volatile(&metrics, &shutdown);
        let r = send(
            &tx,
            &metrics,
            1,
            Command::Query("CREATE TABLE t (a int)".into()),
        );
        assert_eq!(r.unwrap(), "ok 0");
        let r = send(
            &tx,
            &metrics,
            1,
            Command::Query("INSERT INTO t VALUES (1), (2)".into()),
        );
        assert_eq!(r.unwrap(), "ok 2");
        let r = send(
            &tx,
            &metrics,
            1,
            Command::Prepare {
                name: "q".into(),
                sql: "SELECT a FROM t ORDER BY a".into(),
            },
        );
        assert_eq!(r.unwrap(), "prepared q");
        // Same statement name in another session: independent namespace.
        let r = send(
            &tx,
            &metrics,
            2,
            Command::Prepare {
                name: "q".into(),
                sql: "SELECT count(*) AS n FROM t".into(),
            },
        );
        assert_eq!(r.unwrap(), "prepared q");
        let r = send(&tx, &metrics, 1, Command::Execute("q".into()));
        assert_eq!(r.unwrap(), "a\n1\n2\n");
        let r = send(&tx, &metrics, 2, Command::Execute("q".into()));
        assert_eq!(r.unwrap(), "n\n2\n");
        // Executing session 1's statement from session 3 fails.
        let r = send(&tx, &metrics, 3, Command::Execute("q".into()));
        assert_eq!(r.unwrap_err().0, codes::EXEC);
        // Shutdown flips the flag but the executor keeps draining.
        let r = send(&tx, &metrics, 1, Command::Stats);
        assert!(r.unwrap().contains("prepared_statements 2"));
        let r = send(&tx, &metrics, 1, Command::Shutdown);
        assert_eq!(r.unwrap(), "draining");
        assert!(shutdown.load(Ordering::SeqCst));
        let r = send(&tx, &metrics, 1, Command::Query("SELECT a FROM t".into()));
        assert_eq!(r.unwrap(), "a\n1\n2\n");
        drop(tx);
        join.join().unwrap();
    }

    #[test]
    fn checkpoint_on_volatile_engine_is_a_clean_error() {
        let metrics = Arc::new(Metrics::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, join) = spawn_volatile(&metrics, &shutdown);
        let r = send(&tx, &metrics, 1, Command::Checkpoint);
        let (code, msg) = r.unwrap_err();
        assert_eq!(code, codes::EXEC);
        assert!(msg.contains("--data-dir"), "{msg}");
        // Volatile STATS still reports the storage flag.
        let r = send(&tx, &metrics, 1, Command::Stats);
        let body = r.unwrap();
        assert!(body.contains("storage_durable 0"), "{body}");
        assert!(!body.contains("wal_records_appended"), "{body}");
        drop(tx);
        join.join().unwrap();
    }

    #[test]
    fn inspect_unknown_stock_pipeline_is_structured() {
        let metrics = Arc::new(Metrics::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, join) = spawn_volatile(&metrics, &shutdown);
        let r = send(
            &tx,
            &metrics,
            1,
            Command::Inspect {
                columns: vec!["age".into()],
                threshold: 0.3,
                source: "@no_such_pipeline".into(),
            },
        );
        let (code, msg) = r.unwrap_err();
        assert_eq!(code, codes::INSPECT);
        assert!(
            msg.starts_with("inspect unknown-pipeline: 'no_such_pipeline'"),
            "{msg}"
        );
        assert!(msg.contains("healthcare"), "{msg}");
        drop(tx);
        join.join().unwrap();
    }

    #[test]
    fn durable_executor_checkpoints_and_recovers() {
        let dir = std::env::temp_dir().join(format!(
            "elephant-server-exec-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let durable_cfg = || ExecutorConfig {
            in_memory: true,
            exec_mode: ExecMode::default(),
            files: Vec::new(),
            queue_capacity: 4,
            data_dir: Some(dir.clone()),
            fsync: FsyncPolicy::Always,
            slow_query_us: None,
            statement_timeout_ms: None,
            auto_checkpoint_wal_bytes: None,
            repl: Arc::new(ReplState::standalone()),
            shard_id: 0,
            lane: Arc::new(ShardStats::default()),
        };
        let metrics = Arc::new(Metrics::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, join, wal, _) =
            spawn(durable_cfg(), Arc::clone(&metrics), Arc::clone(&shutdown)).unwrap();
        assert!(wal.is_some(), "durable engines expose their WAL handle");
        send(
            &tx,
            &metrics,
            1,
            Command::Query("CREATE TABLE t (a int)".into()),
        )
        .unwrap();
        send(
            &tx,
            &metrics,
            1,
            Command::Query("INSERT INTO t VALUES (1), (2)".into()),
        )
        .unwrap();
        let r = send(&tx, &metrics, 1, Command::Checkpoint).unwrap();
        assert!(r.starts_with("checkpoint tables=1 rows=2"), "{r}");
        send(
            &tx,
            &metrics,
            1,
            Command::Query("INSERT INTO t VALUES (3)".into()),
        )
        .unwrap();
        drop(tx);
        join.join().unwrap();

        // Second incarnation over the same directory sees all three rows
        // and reports the recovered table over the handshake.
        let metrics = Arc::new(Metrics::default());
        let (tx, join, _, recovered) =
            spawn(durable_cfg(), Arc::clone(&metrics), Arc::clone(&shutdown)).unwrap();
        assert_eq!(recovered, vec!["t".to_string()]);
        let r = send(
            &tx,
            &metrics,
            1,
            Command::Query("SELECT a FROM t ORDER BY a".into()),
        );
        assert_eq!(r.unwrap(), "a\n1\n2\n3\n");
        let body = send(&tx, &metrics, 1, Command::Stats).unwrap();
        assert!(body.contains("storage_durable 1"), "{body}");
        assert!(body.contains("recovered_snapshot_tables 1"), "{body}");
        assert!(body.contains("recovered_wal_records 1"), "{body}");
        drop(tx);
        join.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
