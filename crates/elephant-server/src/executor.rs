//! The per-shard single-threaded query executor.
//!
//! [`sqlengine::Engine`] is deliberately not `Send` (its catalog shares
//! view definitions via `Rc`), so the server gives each shard's engine a
//! dedicated thread: the engine is *constructed on* that thread and never
//! leaves it. The shard router submits [`Job`]s over a **bounded**
//! `std::sync::mpsc` channel — the bound is the server's backpressure:
//! when an executor falls behind, admission control converts the full
//! queue into a retryable `ERR_BUSY` instead of letting it grow without
//! limit.
//!
//! **Group commit**: the executor drains its queue in batches (one
//! blocking `recv`, then up to [`GROUP_MAX`] opportunistic `try_recv`s)
//! and brackets each batch with the engine's commit group. Under an
//! `always` fsync policy every statement in the batch defers its fsync
//! *and its acknowledgment*; closing the group issues one fsync for all of
//! them, then the buffered replies are released. One disk flush thus
//! acknowledges many concurrent commits (`wal_group_commits` /
//! `wal_commits_per_fsync` in `STATS`) without weakening durability: no
//! client sees an `ok` before its records are synced. If the closing fsync
//! fails, the engine unwinds the batch's in-memory effects and every reply
//! that depended on the failed window is rewritten to the storage error.
//!
//! **Tracing**: when a job carries a [`TraceContext`] (the router opens a
//! root span per client command), the executor records child spans into
//! the shard's shared ring — queue wait, the dispatch itself
//! (`shard-exec` / `sg-gather`), the engine phases under it, foreign-image
//! installs, and the command's share of the group-fsync window. All child
//! spans are recorded when the batch's replies are released, so a `STATS`
//! body rendered mid-batch matches an earlier `/metrics` scrape.
//!
//! Shutdown is cooperative and loses nothing: `SHUTDOWN` travels through
//! the queue like any command; the executor flips the shared flag (stopping
//! the accept loop), answers `draining`, and keeps serving until every
//! sender — the router owned by the accept loop and all session clones —
//! has been dropped, at which point `recv` disconnects and the thread
//! exits. Every job enqueued before the last sender dropped still gets its
//! response.

use crate::metrics::{render_stats_text, HistSnapshot, Metric, Metrics};
use crate::protocol::{codes, Command, TraceRequest};
use crate::repl::{ReplRole, ReplState};
use crate::shard::{render_query_tree, render_recent_roots, ShardStats};
use elephant_repl::ReplOp;
use etypes::{next_span_id, SharedSpanRing, SpanKind, SpanRecord, TraceContext};
use mlinspect::SqlMode;
use sqlengine::{
    Engine, EngineProfile, ExecMode, FsyncPolicy, Phase, SqlError, TableImage, WalHandle,
};
use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, SyncSender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// What the executor sends back: a response body, or an error code + message.
pub(crate) type Reply = Result<String, (&'static str, String)>;

/// One unit of work for the executor thread.
pub(crate) enum Job {
    /// A client command; the result goes back on `reply`.
    Command {
        /// Originating session id (scopes prepared-statement names).
        session: u64,
        /// The parsed command.
        command: Command,
        /// Where the session blocks waiting for the answer.
        reply: mpsc::Sender<Reply>,
        /// Correlation ids of the router's root span, when tracing.
        ctx: Option<TraceContext>,
        /// When the router admitted the job (measures queue wait).
        enqueued: Instant,
        /// Whether this job counts into the per-verb counters and latency
        /// histograms. Broadcast verbs (`SET`, `CHECKPOINT`) fan one client
        /// command out to every shard; only the shard-0 leg carries `true`,
        /// so one command counts once no matter the shard count.
        counted: bool,
    },
    /// This shard's slice of a cross-shard two-phase commit. The executor
    /// runs it strictly *outside* the batch commit group (a failed group
    /// fsync rolls the whole window's bytes back out of the WAL, which
    /// must never cut out an acknowledged `PREPARE` frame): it prepares
    /// the slice, acks on `prepared`, then blocks on `decision` for the
    /// coordinator's verdict and applies commit/abort before taking the
    /// next job — no other job can observe a prepared-but-undecided
    /// engine.
    Txn {
        /// Originating session id (selects the session's exec mode).
        session: u64,
        /// Coordinator-issued transaction id (unique across restarts).
        txn_id: u64,
        /// This shard's statements of the transaction, `;`-joined.
        sql: String,
        /// Prepare outcome: rows affected, or the classified error (the
        /// engine has already unwound its memory on `Err`).
        prepared: mpsc::Sender<Result<usize, (&'static str, String)>>,
        /// The coordinator's verdict: `true` commits, `false` aborts. A
        /// dropped sender reads as abort — the coordinator sends the
        /// verdict on the same call stack that durably logs it, so a
        /// missing verdict means no commit decision was ever logged.
        decision: mpsc::Receiver<bool>,
        /// Outcome of applying the verdict (commit/abort marker append).
        done: mpsc::Sender<Result<(), (&'static str, String)>>,
        /// Correlation ids of the router's root span, when tracing.
        ctx: Option<TraceContext>,
        /// When the router admitted the job (measures queue wait).
        enqueued: Instant,
    },
    /// A session disconnected: drop its prepared statements.
    CloseSession {
        /// The closed session's id.
        session: u64,
    },
    /// A replication op from the follower apply loop. The engine is not
    /// `Send`, so shipped state changes ride the same queue as client
    /// commands and apply between them on the executor thread.
    Repl {
        /// The decoded snapshot or WAL frames to apply.
        op: ReplOp,
        /// Where the follower loop blocks for the outcome; an `Err` makes
        /// it re-bootstrap from a fresh snapshot.
        reply: mpsc::Sender<Result<(), String>>,
    },
    /// Scatter leg of a cross-shard read: export the named tables as
    /// images for a coordinator shard to install.
    ExportTables {
        /// Base tables owned by this shard.
        names: Vec<String>,
        /// Where the router waits for the images.
        reply: mpsc::Sender<Result<Vec<TableImage>, (&'static str, String)>>,
        /// Correlation ids of the scatter-gather root span, when tracing.
        ctx: Option<TraceContext>,
    },
    /// Gather leg of a cross-shard read: install foreign images, run the
    /// whole command locally, remove the images, answer.
    Gather {
        /// Originating session id (selects the session's exec mode).
        session: u64,
        /// The read-only command to run over local + foreign tables.
        command: Command,
        /// Exported tables from the other involved shards.
        images: Vec<TableImage>,
        /// Where the router waits for the answer.
        reply: mpsc::Sender<Reply>,
        /// Correlation ids of the scatter-gather root span, when tracing.
        ctx: Option<TraceContext>,
        /// When the router admitted the job (measures queue wait).
        enqueued: Instant,
    },
    /// Snapshot this shard's health and WAL counters for composed `STATS`.
    ShardInfo {
        /// Where the router waits for the snapshot.
        reply: mpsc::Sender<ShardSnapshot>,
    },
    /// Collect this shard's typed engine samples for the `/metrics`
    /// exporter. Deliberately uncounted: a scrape must not perturb the
    /// counters it reports, or scrape-vs-`STATS` parity breaks.
    MetricsSnapshot {
        /// Where the scrape thread waits for the samples.
        reply: mpsc::Sender<Vec<Metric>>,
    },
}

/// Per-shard counters surfaced in composed `STATS` output.
pub(crate) struct ShardSnapshot {
    /// The engine's health line (`healthy` / `read_only (...)`).
    pub health: String,
    /// WAL records appended (0 for volatile shards).
    pub wal_records: u64,
    /// WAL fsyncs issued (0 for volatile shards).
    pub wal_fsyncs: u64,
    /// Group-commit windows that acknowledged at least one deferred record.
    pub wal_group_commits: u64,
    /// Records acknowledged by those group fsyncs.
    pub wal_group_records: u64,
}

/// Executor construction parameters.
pub(crate) struct ExecutorConfig {
    /// Use the in-memory (Umbra-like) profile instead of disk-based.
    pub in_memory: bool,
    /// Default execution mode for every session; sessions override it with
    /// `SET exec_mode <row|columnar|auto>` for their own commands only.
    pub exec_mode: ExecMode,
    /// Virtual files visible to `INSPECT` pipelines (`read_csv` targets).
    pub files: Vec<(String, String)>,
    /// Bound of the job queue (backpressure threshold).
    pub queue_capacity: usize,
    /// Directory for WAL + snapshots; `None` keeps the engine volatile.
    pub data_dir: Option<PathBuf>,
    /// Fsync policy for the durable store (ignored without `data_dir`).
    pub fsync: FsyncPolicy,
    /// Log commands slower than this many microseconds, with their
    /// operator profile when one is available. `None` disables the log.
    pub slow_query_us: Option<u64>,
    /// Cancel statements cooperatively after this many milliseconds;
    /// `None` lets statements run unbounded.
    pub statement_timeout_ms: Option<u64>,
    /// Checkpoint automatically once the WAL grows past this many bytes.
    pub auto_checkpoint_wal_bytes: Option<u64>,
    /// Replication topology shared with `REPLICA`/`LAG`/`STATS`. Follower
    /// role pins the engine read-only for the server's whole life.
    pub repl: Arc<ReplState>,
    /// This executor's shard id (names the thread, labels diagnostics).
    pub shard_id: usize,
    /// Gauges shared with the shard router.
    pub lane: Arc<ShardStats>,
    /// Span ring shared with the router (the `TRACE` reader).
    pub ring: Arc<SharedSpanRing>,
    /// The coordinator's recorded 2PC verdicts, from the decision log.
    /// Recovery resolves any in-doubt prepared group against this map
    /// (commit verdict → apply, otherwise presumed abort).
    pub txn_decisions: HashMap<u64, bool>,
}

/// Upper bound on one batch drained into a single commit group. Bounds
/// both reply latency under load and the unwind window of a failed group
/// fsync.
const GROUP_MAX: usize = 32;

/// The trace bookkeeping of one deferred command, recorded into the shard
/// ring when its reply is released.
struct DeferredTrace {
    /// The root span's correlation ids.
    ctx: TraceContext,
    /// Pre-allocated id of this command's `shard-exec`/`sg-gather` span
    /// (engine-phase children parent to it).
    exec_id: u64,
    /// Time the job sat in the shard queue before dequeue, µs.
    wait_us: u64,
    /// `ShardExec` for routed commands, `SgGather` for gather legs.
    kind: SpanKind,
    /// Per-statement engine phase samples captured during dispatch.
    phases: Vec<(Phase, u64)>,
    /// Time spent installing foreign images (gather legs only), µs.
    install_us: Option<u64>,
}

/// A command's buffered outcome, released after the commit group closes.
struct DeferredReply {
    reply: mpsc::Sender<Reply>,
    verb: &'static str,
    detail: String,
    elapsed: Duration,
    result: Reply,
    /// Whether this command pushed group-undo entries (i.e. has durable
    /// effects pending the closing fsync).
    grew: bool,
    /// Engine group epoch at dispatch: entries from an older epoch were
    /// already made durable (e.g. by a mid-batch checkpoint) and survive a
    /// failed closing fsync.
    epoch: u64,
    /// Span bookkeeping; `None` for untraced jobs (legacy single-span path).
    trace: Option<DeferredTrace>,
    /// Whether this job counts into per-verb counters and latency
    /// histograms (false for the non-primary legs of a broadcast).
    counted: bool,
}

/// Spawn one shard's executor thread; returns the job sender, the join
/// handle, the store's [`WalHandle`] (durable engines only, so `start()`
/// can wire the replication listener), and the recovered base-table names
/// (so the router can seed shard ownership). The thread exits when every
/// clone of the returned sender is dropped. Fails when the durable store
/// cannot be opened or recovered — the thread reports engine construction
/// over a handshake channel before serving.
#[allow(clippy::type_complexity)]
pub(crate) fn spawn(
    cfg: ExecutorConfig,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
) -> io::Result<(
    SyncSender<Job>,
    JoinHandle<()>,
    Option<WalHandle>,
    Vec<String>,
)> {
    let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_capacity.max(1));
    let (init_tx, init_rx) = mpsc::channel::<Result<(Option<WalHandle>, Vec<String>), String>>();
    let handle = thread::Builder::new()
        .name(format!("elephant-executor-{}", cfg.shard_id))
        .spawn(move || {
            // The engine must be created here: it is not Send.
            let profile = if cfg.in_memory {
                EngineProfile::in_memory()
            } else {
                EngineProfile::disk_based()
            };
            let engine = match &cfg.data_dir {
                Some(dir) => Engine::open_durable_with_decisions(
                    profile,
                    dir,
                    cfg.fsync,
                    cfg.txn_decisions.clone(),
                ),
                None => Ok(Engine::new(profile)),
            };
            let mut engine = match engine {
                Ok(engine) => engine,
                Err(e) => {
                    let _ = init_tx.send(Err(e.to_string()));
                    return;
                }
            };
            if cfg.repl.role() == ReplRole::Follower {
                // A follower's only writer is the leader's WAL; every
                // client write is refused for the process's whole life.
                engine.pin_read_only("replica: writes must go to the leader");
            }
            engine.set_auto_checkpoint_wal_bytes(cfg.auto_checkpoint_wal_bytes);
            let recovered: Vec<String> = engine
                .catalog()
                .table_names()
                .into_iter()
                .map(str::to_string)
                .collect();
            let _ = init_tx.send(Ok((engine.wal_handle(), recovered)));
            let mut state = ExecutorState {
                engine,
                files: cfg.files,
                default_exec_mode: cfg.exec_mode,
                session_modes: HashMap::new(),
                prepared: HashMap::new(),
                metrics,
                shutdown,
                ring: cfg.ring,
                slow_query_us: cfg.slow_query_us,
                repl: cfg.repl,
                lane: cfg.lane,
                auto_checkpoint_wal_bytes: cfg.auto_checkpoint_wal_bytes,
                shard_id: cfg.shard_id as u16,
            };
            if state.slow_query_us.is_some() {
                // The slow-query log wants operator profiles for QUERY too,
                // not just EXPLAIN ANALYZE.
                state.engine.set_capture_profiles(true);
            }
            if let Some(ms) = cfg.statement_timeout_ms {
                state
                    .engine
                    .set_statement_timeout(Some(Duration::from_millis(ms)));
            }
            // Batch-at-a-time service loop: block for one job, drain up to
            // GROUP_MAX more without blocking, run the batch inside one
            // commit group, then release the buffered replies. 2PC jobs
            // never join a batch: a prepare acked inside a group-commit
            // window could be cut back out by the window's whole-batch
            // rollback, so a drained `Txn` closes the batch early and runs
            // alone once the batch's replies are released.
            let mut carried: Option<Job> = None;
            loop {
                let first = match carried.take() {
                    Some(job) => job,
                    None => match rx.recv() {
                        Ok(job) => job,
                        Err(_) => break,
                    },
                };
                if matches!(first, Job::Txn { .. }) {
                    state.handle_txn(first);
                    continue;
                }
                let mut batch = Vec::with_capacity(GROUP_MAX);
                batch.push(first);
                while batch.len() < GROUP_MAX {
                    match rx.try_recv() {
                        Ok(job @ Job::Txn { .. }) => {
                            carried = Some(job);
                            break;
                        }
                        Ok(job) => batch.push(job),
                        Err(_) => break,
                    }
                }
                state.engine.begin_commit_group();
                let mut deferred: Vec<DeferredReply> = Vec::with_capacity(batch.len());
                for job in batch {
                    match job {
                        Job::Command {
                            session,
                            command,
                            reply,
                            ctx,
                            enqueued,
                            counted,
                        } => {
                            // Only client-facing jobs were counted into the
                            // gauges; decrementing for CloseSession/Repl
                            // would underflow them.
                            state.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                            state.lane.dec_queue_depth();
                            state.lane.commands.fetch_add(1, Ordering::Relaxed);
                            let wait_us = enqueued.elapsed().as_micros() as u64;
                            let started = Instant::now();
                            let verb = command.verb();
                            let detail = command.summary();
                            let pending_before = state.engine.group_pending();
                            let epoch = state.engine.group_epoch();
                            let trace = state.install_context(ctx, SpanKind::ShardExec, wait_us);
                            let result = state.dispatch(session, command);
                            let trace = state.collect_phases(trace);
                            deferred.push(DeferredReply {
                                reply,
                                verb,
                                detail,
                                elapsed: started.elapsed(),
                                result,
                                grew: state.engine.group_pending() > pending_before,
                                epoch,
                                trace,
                                counted,
                            });
                        }
                        Job::Txn { .. } => {
                            unreachable!("Txn jobs close the batch before joining it")
                        }
                        Job::CloseSession { session } => state.close_session(session),
                        Job::Repl { op, reply } => {
                            let _ = reply.send(state.apply_repl(op));
                        }
                        Job::ExportTables { names, reply, ctx } => {
                            state.lane.dec_queue_depth();
                            state.lane.commands.fetch_add(1, Ordering::Relaxed);
                            let started = Instant::now();
                            let detail = names.join(",");
                            let images = state
                                .engine
                                .export_table_images(&names)
                                .map_err(|e| state.classify(e));
                            if let Some(ctx) = ctx {
                                state.ring.record(SpanRecord::child(
                                    ctx,
                                    SpanKind::SgExport,
                                    state.shard_id,
                                    "EXPORT",
                                    &detail,
                                    started.elapsed().as_micros() as u64,
                                    images.is_ok(),
                                ));
                            }
                            let _ = reply.send(images);
                        }
                        Job::Gather {
                            session,
                            command,
                            images,
                            reply,
                            ctx,
                            enqueued,
                        } => {
                            state.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                            state.lane.dec_queue_depth();
                            state.lane.commands.fetch_add(1, Ordering::Relaxed);
                            let wait_us = enqueued.elapsed().as_micros() as u64;
                            let started = Instant::now();
                            let verb = command.verb();
                            let detail = command.summary();
                            let epoch = state.engine.group_epoch();
                            let trace = state.install_context(ctx, SpanKind::SgGather, wait_us);
                            let (result, install_us) = state.gather(session, command, images);
                            let mut trace = state.collect_phases(trace);
                            if let Some(t) = trace.as_mut() {
                                t.install_us = Some(install_us);
                            }
                            // Gathers are read-only (`grew: false`): a
                            // failed closing fsync never invalidates them,
                            // but deferring the reply keeps span order
                            // consistent — the root closes last.
                            deferred.push(DeferredReply {
                                reply,
                                verb,
                                detail,
                                elapsed: started.elapsed(),
                                result,
                                grew: false,
                                epoch,
                                trace,
                                counted: true,
                            });
                        }
                        Job::ShardInfo { reply } => {
                            let _ = reply.send(state.shard_snapshot());
                        }
                        Job::MetricsSnapshot { reply } => {
                            let _ = reply.send(state.engine_samples());
                        }
                    }
                }
                // One fsync acknowledges the whole batch. On failure the
                // engine has already unwound every in-memory effect from
                // the failed window; rewrite the replies that depended on
                // it so no client sees an `ok` for a lost write.
                let pre_end_epoch = state.engine.group_epoch();
                let close_started = Instant::now();
                let group_err = match state.engine.end_commit_group() {
                    Ok(_) => None,
                    Err(e) => Some(state.classify(e)),
                };
                // Every deferred durable command shares the same closing
                // fsync window; each gets a span with the window's cost.
                let fsync_us = close_started.elapsed().as_micros() as u64;
                let durable = state.engine.is_durable();
                for mut d in deferred {
                    if let Some((code, msg)) = &group_err {
                        if d.grew && d.epoch == pre_end_epoch && d.result.is_ok() {
                            d.result = Err((code, msg.clone()));
                        }
                    }
                    if d.counted {
                        state.metrics.record_latency(d.verb, d.elapsed);
                    }
                    match &d.result {
                        Ok(_) => {
                            if d.counted {
                                state.metrics.count_verb(d.verb);
                            }
                        }
                        Err(_) => {
                            state.metrics.exec_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    state.finish_command(&d, fsync_us, durable, group_err.is_none());
                    // A dropped receiver means the session died mid-query;
                    // nothing to do — the answer has nowhere to go.
                    let _ = d.reply.send(d.result);
                }
            }
        })?;
    match init_rx.recv() {
        Ok(Ok((wal, recovered))) => Ok((tx, handle, wal, recovered)),
        Ok(Err(msg)) => {
            let _ = handle.join();
            Err(io::Error::other(format!("storage recovery failed: {msg}")))
        }
        Err(_) => {
            let _ = handle.join();
            Err(io::Error::other("executor thread died during startup"))
        }
    }
}

struct ExecutorState {
    engine: Engine,
    files: Vec<(String, String)>,
    /// Server-wide execution mode (`--exec-mode`), used by sessions
    /// without an override.
    default_exec_mode: ExecMode,
    /// Per-session `SET exec_mode` overrides, dropped with the session.
    session_modes: HashMap<u64, ExecMode>,
    /// Prepared-statement names per live session (engine-scoped form).
    prepared: HashMap<u64, Vec<String>>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    /// This shard's span ring, shared with the router (`TRACE` walks every
    /// shard's ring to reassemble distributed trees).
    ring: Arc<SharedSpanRing>,
    slow_query_us: Option<u64>,
    repl: Arc<ReplState>,
    /// Gauges shared with the shard router.
    lane: Arc<ShardStats>,
    /// The configured auto-checkpoint threshold, restored after gathers
    /// (which hold auto-checkpoint off while foreign tables are installed).
    auto_checkpoint_wal_bytes: Option<u64>,
    /// This executor's shard id, stamped on every span it records.
    shard_id: u16,
}

impl ExecutorState {
    /// Prepare the trace bookkeeping for one traced job and install the
    /// engine's capture context (phase samples parent to the pre-allocated
    /// exec span). Untraced jobs clear the engine context.
    fn install_context(
        &mut self,
        ctx: Option<TraceContext>,
        kind: SpanKind,
        wait_us: u64,
    ) -> Option<DeferredTrace> {
        let trace = ctx.map(|ctx| DeferredTrace {
            ctx,
            exec_id: next_span_id(),
            wait_us,
            kind,
            phases: Vec::new(),
            install_us: None,
        });
        self.engine
            .set_trace_context(trace.as_ref().map(|t| TraceContext {
                query_id: t.ctx.query_id,
                parent_span: t.exec_id,
            }));
        trace
    }

    /// Drain the engine's captured phase samples into the trace record.
    fn collect_phases(&mut self, mut trace: Option<DeferredTrace>) -> Option<DeferredTrace> {
        if let Some(t) = trace.as_mut() {
            t.phases = self.engine.take_phase_spans();
        }
        trace
    }

    /// Record the finished command's spans and its slow-query log line.
    /// Traced commands get the full child set (queue wait, exec, engine
    /// phases, install, group fsync); untraced ones keep the legacy single
    /// root span so direct-queue callers still show up in `TRACE`.
    fn finish_command(&mut self, d: &DeferredReply, fsync_us: u64, durable: bool, synced: bool) {
        let us = d.elapsed.as_micros() as u64;
        let ok = d.result.is_ok();
        match &d.trace {
            Some(t) => {
                self.ring.record(SpanRecord::child(
                    t.ctx,
                    SpanKind::QueueWait,
                    self.shard_id,
                    "queue-wait",
                    "",
                    t.wait_us,
                    true,
                ));
                self.ring.record(SpanRecord {
                    id: t.exec_id,
                    parent: t.ctx.parent_span,
                    query_id: t.ctx.query_id,
                    kind: t.kind,
                    shard: self.shard_id,
                    name: d.verb.to_string(),
                    detail: d.detail.clone(),
                    elapsed_us: us,
                    ok,
                });
                let exec_ctx = TraceContext {
                    query_id: t.ctx.query_id,
                    parent_span: t.exec_id,
                };
                for (phase, pus) in &t.phases {
                    self.ring.record(SpanRecord::child(
                        exec_ctx,
                        SpanKind::EnginePhase,
                        self.shard_id,
                        phase.name(),
                        "",
                        *pus,
                        true,
                    ));
                }
                if let Some(install_us) = t.install_us {
                    self.ring.record(SpanRecord::child(
                        t.ctx,
                        SpanKind::SgInstall,
                        self.shard_id,
                        "INSTALL",
                        "foreign table images",
                        install_us,
                        ok,
                    ));
                }
                if durable && d.grew {
                    self.ring.record(SpanRecord::child(
                        t.ctx,
                        SpanKind::WalGroupFsync,
                        self.shard_id,
                        "group-fsync",
                        "shared group-commit window",
                        fsync_us,
                        synced,
                    ));
                }
            }
            None => self.ring.push(d.verb, &d.detail, us, ok),
        }
        if let Some(threshold) = self.slow_query_us {
            if us >= threshold {
                let qid = d.trace.as_ref().map_or(0, |t| t.ctx.query_id);
                eprintln!(
                    "[slow-query] verb={} query_id=q{qid} shard={} us={us} ok={} {}",
                    d.verb,
                    self.shard_id,
                    u8::from(ok),
                    d.detail
                );
                if d.verb == "QUERY" || d.verb == "EXECUTE" {
                    if let Some(profile) = self.engine.last_profile() {
                        for line in profile.render().lines() {
                            eprintln!("[slow-query]   {line}");
                        }
                    }
                }
            }
        }
    }

    /// Apply one replication op from the follower loop. Keeps a span so
    /// `TRACE` shows shipped writes interleaved with client commands.
    fn apply_repl(&mut self, op: ReplOp) -> Result<(), String> {
        let started = Instant::now();
        let (label, detail, result) = match op {
            ReplOp::Reset {
                snapshot_lsn,
                tables,
            } => (
                "REPL_RESET",
                format!("snapshot_lsn={snapshot_lsn} tables={}", tables.len()),
                self.engine.reset_from_images(tables),
            ),
            ReplOp::Apply { frames } => {
                let detail = match (frames.first(), frames.last()) {
                    (Some((lo, _)), Some((hi, _))) => format!("lsn={lo}..={hi}"),
                    _ => String::new(),
                };
                let result = frames
                    .into_iter()
                    .try_for_each(|(_, record)| self.engine.apply_wal_record(record));
                ("REPL_APPLY", detail, result)
            }
        };
        let ok = result.is_ok();
        self.ring
            .push(label, &detail, started.elapsed().as_micros() as u64, ok);
        result.map_err(|e| e.to_string())
    }

    /// Map an engine error to its wire code. Timeouts and read-only
    /// degradation carry their own codes so clients can tell retryable
    /// conditions from fatal ones; everything else is a plain `ERR_EXEC`.
    fn classify(&self, e: SqlError) -> (&'static str, String) {
        match e {
            SqlError::Timeout { .. } => {
                self.metrics
                    .statements_timed_out
                    .fetch_add(1, Ordering::Relaxed);
                (codes::TIMEOUT, e.to_string())
            }
            SqlError::ReadOnly(_) => (codes::READ_ONLY, e.to_string()),
            _ => (codes::EXEC, e.to_string()),
        }
    }

    /// This shard's engine-scoped samples, labeled `shard=<id>`: the plan
    /// cache block, per-phase histograms, execution/trace/health/storage
    /// state, and the replication lines. Shard 0's set is what `STATS` has
    /// always rendered after the server block; `/metrics` exports every
    /// shard's, distinguished by the label.
    fn engine_samples(&self) -> Vec<Metric> {
        let shard = self.shard_id.to_string();
        let tag = |m: Metric| m.label("shard", shard.clone());
        let prepared_total: usize = self.prepared.values().map(Vec::len).sum();
        let mut v: Vec<Metric> = Metrics::plan_samples(
            self.engine.plan_cache_stats(),
            self.engine.plan_cache_len(),
            prepared_total,
        )
        .into_iter()
        .map(tag)
        .collect();
        for (table, n) in self.engine.plan_cache_table_invalidations() {
            v.push(
                Metric::counter(format!("plan_cache_invalidations.{table}"), n)
                    .named("plan_cache_table_invalidations")
                    .label("table", table)
                    .label("shard", shard.clone()),
            );
        }
        for phase in Phase::ALL {
            let mut snap = HistSnapshot::from_histogram(self.engine.trace().phase(phase));
            snap.emit_total = true;
            snap.skip_if_empty = true;
            v.push(tag(Metric::hist(format!("phase_{}", phase.name()), snap)));
        }
        let engine_stats = self.engine.stats();
        v.push(tag(Metric::text(
            "exec_mode",
            self.engine.exec_mode().to_string(),
        )));
        v.push(tag(Metric::counter(
            "batches_executed",
            engine_stats.batches_executed,
        )));
        v.push(tag(Metric::counter(
            "colexec_fallbacks",
            engine_stats.colexec_fallbacks,
        )));
        v.push(tag(Metric::counter(
            "trace_spans_recorded",
            self.ring.pushed(),
        )));
        v.push(tag(Metric::gauge(
            "trace_spans_retained",
            self.ring.len() as u64,
        )));
        v.push(tag(Metric::gauge(
            "trace_spans_open",
            self.ring.open_len() as u64,
        )));
        v.push(tag(Metric::text("health", self.engine.health().render())));
        v.push(tag(Metric::counter(
            "faults_injected",
            etypes::fault::injected(),
        )));
        v.push(tag(Metric::gauge(
            "storage_durable",
            u64::from(self.engine.is_durable()),
        )));
        if let Some(stats) = self.engine.storage_stats() {
            v.push(tag(Metric::counter(
                "wal_records_appended",
                stats.wal.records_appended,
            )));
            v.push(tag(Metric::counter("wal_fsyncs", stats.wal.fsyncs)));
            v.push(tag(Metric::gauge("wal_bytes", stats.wal.bytes)));
            v.push(tag(Metric::counter(
                "storage_checkpoints",
                stats.checkpoints,
            )));
        }
        if let Some(rec) = self.engine.recovery_report() {
            v.push(tag(Metric::gauge(
                "recovered_snapshot_tables",
                rec.snapshot_tables as u64,
            )));
            v.push(tag(Metric::gauge(
                "recovered_snapshot_rows",
                rec.snapshot_rows,
            )));
            v.push(tag(Metric::gauge(
                "recovered_wal_records",
                rec.wal_records_applied,
            )));
            v.push(tag(Metric::gauge(
                "recovered_wal_torn_bytes",
                rec.wal_torn_bytes,
            )));
        }
        v.push(tag(Metric::counter(
            "auto_checkpoints",
            self.engine.auto_checkpoints(),
        )));
        for line in self.repl.stats_lines(self.committed_lsn()).lines() {
            if let Some((key, value)) = line.split_once(' ') {
                match value.parse::<u64>() {
                    Ok(n) => v.push(tag(Metric::gauge(key, n))),
                    Err(_) => v.push(tag(Metric::text(key, value))),
                }
            }
        }
        v
    }

    fn dispatch(&mut self, session: u64, command: Command) -> Reply {
        // One engine serves every session, so the issuing session's
        // execution mode (its `SET exec_mode` override, else the server
        // default) is applied before each command runs.
        let mode = self
            .session_modes
            .get(&session)
            .copied()
            .unwrap_or(self.default_exec_mode);
        self.engine.set_exec_mode(mode);
        match command {
            Command::Query(sql) => {
                let out = self.engine.execute(&sql).map_err(|e| self.classify(e))?;
                Ok(match out.relation {
                    Some(rel) => etypes::csv::write_csv(&rel.columns, &rel.rows, ','),
                    None => format!("ok {}", out.rows_affected),
                })
            }
            Command::Prepare { name, sql } => {
                let scoped = scoped_name(session, &name);
                self.engine
                    .prepare(scoped.clone(), sql)
                    .map_err(|e| (codes::EXEC, e.to_string()))?;
                let names = self.prepared.entry(session).or_default();
                if !names.contains(&scoped) {
                    names.push(scoped);
                }
                Ok(format!("prepared {name}"))
            }
            Command::Execute { name, args } => {
                let values = match &args {
                    Some(text) => sqlengine::parse_param_values(text)
                        .map_err(|e| (codes::PARSE, e.to_string()))?,
                    None => Vec::new(),
                };
                self.metrics
                    .params_bound
                    .fetch_add(values.len() as u64, Ordering::Relaxed);
                let rel = self
                    .engine
                    .execute_prepared_with(&scoped_name(session, &name), &values)
                    .map_err(|e| self.classify(e))?;
                Ok(etypes::csv::write_csv(&rel.columns, &rel.rows, ','))
            }
            Command::Batch(stmts) => {
                // One frame, many statements: every statement in the batch
                // runs inside the *same* drained batch on this executor
                // thread, so under `fsync=always` the whole frame shares one
                // group-commit window. A failing statement stops the batch;
                // earlier statements stand (they are individually
                // acknowledged in the body) and the error names the
                // 1-based offending statement.
                let total = stmts.len();
                let mut bodies = Vec::with_capacity(total);
                for (i, sql) in stmts.iter().enumerate() {
                    let body = match self.engine.execute(sql) {
                        Ok(out) => match out.relation {
                            Some(rel) => etypes::csv::write_csv(&rel.columns, &rel.rows, ','),
                            None => format!("ok {}", out.rows_affected),
                        },
                        Err(e) => {
                            let (code, msg) = self.classify(e);
                            return Err((
                                code,
                                format!("batch statement {}/{total}: {msg}", i + 1),
                            ));
                        }
                    };
                    self.metrics
                        .batch_statements
                        .fetch_add(1, Ordering::Relaxed);
                    bodies.push(body);
                }
                Ok(bodies.join(&crate::protocol::BATCH_SEP.to_string()))
            }
            Command::Deallocate(name) => {
                let scoped = scoped_name(session, &name);
                self.engine
                    .deallocate(&scoped)
                    .map_err(|e| (codes::EXEC, e.to_string()))?;
                if let Some(names) = self.prepared.get_mut(&session) {
                    names.retain(|n| *n != scoped);
                }
                Ok(format!("deallocated {name}"))
            }
            Command::Explain { sql, analyze } => {
                let out = if analyze {
                    self.engine.explain_analyze(&sql)
                } else {
                    self.engine.explain(&sql)
                };
                out.map_err(|e| self.classify(e))
            }
            // The router answers TRACE without an executor round-trip (it
            // walks every shard's ring); this arm serves direct-queue
            // callers (unit tests, embedded use) from the local ring only.
            Command::Trace(TraceRequest::Recent(n)) => {
                let spans = self.ring.recent(self.ring.len());
                Ok(render_recent_roots(spans, n))
            }
            Command::Trace(TraceRequest::Tree(query_id)) => Ok(render_query_tree(
                query_id,
                self.ring.spans_for_query(query_id),
            )),
            Command::Inspect {
                columns,
                threshold,
                source,
            } => {
                // `@name` selects one of the stock benchmark pipelines
                // instead of shipping the source over the wire.
                let source = match source.strip_prefix('@') {
                    Some(name) => {
                        let name = name.trim();
                        let stock = mlinspect::pipelines::all();
                        match stock.iter().find(|(n, _)| *n == name) {
                            Some((_, src)) => (*src).to_string(),
                            None => {
                                let known: Vec<&str> = stock.iter().map(|(n, _)| *n).collect();
                                return Err((
                                    codes::INSPECT,
                                    format!(
                                        "inspect unknown-pipeline: '{name}' (known: {})",
                                        known.join(", ")
                                    ),
                                ));
                            }
                        }
                    }
                    None => source,
                };
                let cols: Vec<&str> = columns.iter().map(|c| c.as_str()).collect();
                // Inspection materializes scratch tables it recreates on
                // every run — running it unlogged keeps those out of the
                // WAL and lets INSPECT keep serving when durable storage
                // has degraded the engine to read-only.
                let was_unlogged = self.engine.unlogged();
                self.engine.set_unlogged(true);
                let report = mlinspect::inspect_pipeline_in_sql(
                    &source,
                    &self.files,
                    &cols,
                    threshold,
                    &mut self.engine,
                    SqlMode::Cte,
                    false,
                );
                self.engine.set_unlogged(was_unlogged);
                let report = report.map_err(|e| (codes::INSPECT, format!("inspect {e}")))?;
                Ok(report.render())
            }
            Command::Set { name, value } => match name.as_str() {
                "exec_mode" => {
                    let mode: ExecMode = value
                        .parse()
                        .map_err(|e: String| (codes::PARSE, format!("set exec_mode: {e}")))?;
                    self.session_modes.insert(session, mode);
                    Ok(format!("set exec_mode {mode}"))
                }
                other => Err((
                    codes::PARSE,
                    format!("unknown session variable '{other}' (known: exec_mode)"),
                )),
            },
            Command::Stats => {
                let mut samples = self.metrics.server_samples();
                samples.extend(self.engine_samples());
                Ok(render_stats_text(&samples))
            }
            Command::Checkpoint => match self.engine.checkpoint() {
                Ok(Some(stats)) => Ok(format!(
                    "checkpoint tables={} rows={} snapshot_bytes={} wal_truncated={}",
                    stats.tables, stats.rows, stats.snapshot_bytes, stats.wal_bytes_truncated
                )),
                Ok(None) => Err((
                    codes::EXEC,
                    "checkpoint requires durable storage (start the server with --data-dir)".into(),
                )),
                Err(e) => Err(self.classify(e)),
            },
            Command::Replica => Ok(self.repl.render_replica(self.committed_lsn())),
            Command::Lag => Ok(self.repl.render_lag(self.committed_lsn())),
            Command::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                Ok("draining".into())
            }
        }
    }

    /// The WAL writer's committed-LSN watermark (durable engines only).
    fn committed_lsn(&self) -> Option<u64> {
        self.engine.wal_handle().map(|h| h.committed_lsn())
    }

    fn close_session(&mut self, session: u64) {
        self.session_modes.remove(&session);
        if let Some(names) = self.prepared.remove(&session) {
            for name in names {
                let _ = self.engine.deallocate(&name);
            }
        }
        // `sessions_closed` is counted once per session by the router (a
        // CloseSession broadcast reaches every shard).
    }

    /// Gather leg of a cross-shard read: install the foreign images, run
    /// the command against the combined catalog, then remove the images —
    /// always, even on error, so they never outlive the query. Returns the
    /// reply and the install time (µs) for the `sg-install` span.
    fn gather(&mut self, session: u64, command: Command, images: Vec<TableImage>) -> (Reply, u64) {
        // Foreign images must never leak into this shard's snapshots: hold
        // auto-checkpoint off while they are installed.
        self.engine.set_auto_checkpoint_wal_bytes(None);
        let install_started = Instant::now();
        let mut installed: Vec<String> = Vec::with_capacity(images.len());
        let mut result: Reply = Ok(String::new());
        for image in images {
            let name = image.name.clone();
            match self.engine.install_foreign_table(image) {
                Ok(()) => installed.push(name),
                Err(e) => {
                    result = Err((
                        codes::INTERNAL,
                        format!("scatter-gather install of '{name}' failed: {e}"),
                    ));
                    break;
                }
            }
        }
        let install_us = install_started.elapsed().as_micros() as u64;
        if result.is_ok() {
            result = self.dispatch(session, command);
        }
        for name in &installed {
            self.engine.remove_foreign_table(name);
        }
        self.engine
            .set_auto_checkpoint_wal_bytes(self.auto_checkpoint_wal_bytes);
        (result, install_us)
    }

    /// Participant side of one cross-shard transaction: prepare this
    /// shard's slice (durable `PREPARE` frame), ack the coordinator, then
    /// block for its verdict and apply commit/abort. Runs strictly outside
    /// the batch commit group, and blocks the executor thread while the
    /// engine is prepared-but-undecided — so single-shard traffic can never
    /// observe half of a transaction. Verb counting happens at the router
    /// (one client command, N participant jobs).
    fn handle_txn(&mut self, job: Job) {
        let Job::Txn {
            session,
            txn_id,
            sql,
            prepared,
            decision,
            done,
            ctx,
            enqueued,
        } = job
        else {
            return;
        };
        self.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
        self.lane.dec_queue_depth();
        self.lane.commands.fetch_add(1, Ordering::Relaxed);
        let wait_us = enqueued.elapsed().as_micros() as u64;
        let mode = self
            .session_modes
            .get(&session)
            .copied()
            .unwrap_or(self.default_exec_mode);
        self.engine.set_exec_mode(mode);
        let trace = self.install_context(ctx, SpanKind::TxnPrepare, wait_us);
        let started = Instant::now();
        let result = self
            .engine
            .prepare_txn(txn_id, &sql)
            .map_err(|e| self.classify(e));
        let trace = self.collect_phases(trace);
        self.engine.set_trace_context(None);
        let ok = result.is_ok();
        if let Some(t) = &trace {
            self.ring.record(SpanRecord::child(
                t.ctx,
                SpanKind::QueueWait,
                self.shard_id,
                "queue-wait",
                "",
                t.wait_us,
                true,
            ));
            self.ring.record(SpanRecord {
                id: t.exec_id,
                parent: t.ctx.parent_span,
                query_id: t.ctx.query_id,
                kind: SpanKind::TxnPrepare,
                shard: self.shard_id,
                name: "PREPARE".to_string(),
                detail: format!("txn={txn_id} {sql}"),
                elapsed_us: started.elapsed().as_micros() as u64,
                ok,
            });
            let exec_ctx = TraceContext {
                query_id: t.ctx.query_id,
                parent_span: t.exec_id,
            };
            for (phase, pus) in &t.phases {
                self.ring.record(SpanRecord::child(
                    exec_ctx,
                    SpanKind::EnginePhase,
                    self.shard_id,
                    phase.name(),
                    "",
                    *pus,
                    true,
                ));
            }
        }
        if prepared.send(result).is_err() {
            // The coordinator died before taking the ack. No commit
            // decision can have been logged for this transaction, so the
            // presumed-abort unwind is safe.
            if ok {
                let _ = self.engine.abort_prepared(txn_id);
            }
            return;
        }
        if !ok {
            // Prepare failed; the engine already unwound and nothing is
            // staged on disk. The coordinator will decide abort.
            return;
        }
        // Block for the verdict. A dropped sender means the coordinator
        // died before deciding (it sends on the same call stack that logs
        // the decision), so presumed abort applies.
        let verdict = decision.recv().unwrap_or(false);
        let apply_started = Instant::now();
        let outcome = if verdict {
            self.engine.commit_prepared(txn_id)
        } else {
            self.engine.abort_prepared(txn_id)
        }
        .map_err(|e| self.classify(e));
        if let Some(t) = &trace {
            self.ring.record(SpanRecord::child(
                t.ctx,
                SpanKind::TxnCommit,
                self.shard_id,
                if verdict { "COMMIT" } else { "ABORT" },
                &format!("txn={txn_id}"),
                apply_started.elapsed().as_micros() as u64,
                outcome.is_ok(),
            ));
        }
        let _ = done.send(outcome);
    }

    /// Health + WAL counters for composed `STATS`.
    fn shard_snapshot(&self) -> ShardSnapshot {
        let wal = self.engine.storage_stats().map(|s| s.wal);
        ShardSnapshot {
            health: self.engine.health().render(),
            wal_records: wal.as_ref().map_or(0, |w| w.records_appended),
            wal_fsyncs: wal.as_ref().map_or(0, |w| w.fsyncs),
            wal_group_commits: wal.as_ref().map_or(0, |w| w.group_commits),
            wal_group_records: wal.as_ref().map_or(0, |w| w.group_committed_records),
        }
    }
}

fn scoped_name(session: u64, name: &str) -> String {
    format!("s{session}.{name}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(tx: &SyncSender<Job>, metrics: &Metrics, session: u64, cmd: Command) -> Reply {
        let (rtx, rrx) = mpsc::channel();
        metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
        tx.send(Job::Command {
            session,
            command: cmd,
            reply: rtx,
            ctx: None,
            enqueued: Instant::now(),
            counted: true,
        })
        .expect("executor alive");
        rrx.recv().expect("reply")
    }

    fn spawn_volatile(
        metrics: &Arc<Metrics>,
        shutdown: &Arc<AtomicBool>,
    ) -> (SyncSender<Job>, JoinHandle<()>) {
        let (tx, join, wal, recovered) = spawn(
            ExecutorConfig {
                in_memory: true,
                exec_mode: ExecMode::default(),
                files: Vec::new(),
                queue_capacity: 4,
                data_dir: None,
                fsync: FsyncPolicy::Always,
                slow_query_us: None,
                statement_timeout_ms: None,
                auto_checkpoint_wal_bytes: None,
                repl: Arc::new(ReplState::standalone()),
                shard_id: 0,
                lane: Arc::new(ShardStats::default()),
                ring: Arc::new(SharedSpanRing::new(64)),
                txn_decisions: HashMap::new(),
            },
            Arc::clone(metrics),
            Arc::clone(shutdown),
        )
        .expect("volatile executor spawns");
        assert!(wal.is_none(), "volatile engines have no WAL handle");
        assert!(recovered.is_empty(), "volatile engines recover nothing");
        (tx, join)
    }

    #[test]
    fn executor_round_trip_and_scoped_prepare() {
        let metrics = Arc::new(Metrics::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, join) = spawn_volatile(&metrics, &shutdown);
        let r = send(
            &tx,
            &metrics,
            1,
            Command::Query("CREATE TABLE t (a int)".into()),
        );
        assert_eq!(r.unwrap(), "ok 0");
        let r = send(
            &tx,
            &metrics,
            1,
            Command::Query("INSERT INTO t VALUES (1), (2)".into()),
        );
        assert_eq!(r.unwrap(), "ok 2");
        let r = send(
            &tx,
            &metrics,
            1,
            Command::Prepare {
                name: "q".into(),
                sql: "SELECT a FROM t ORDER BY a".into(),
            },
        );
        assert_eq!(r.unwrap(), "prepared q");
        // Same statement name in another session: independent namespace.
        let r = send(
            &tx,
            &metrics,
            2,
            Command::Prepare {
                name: "q".into(),
                sql: "SELECT count(*) AS n FROM t".into(),
            },
        );
        assert_eq!(r.unwrap(), "prepared q");
        let r = send(
            &tx,
            &metrics,
            1,
            Command::Execute {
                name: "q".into(),
                args: None,
            },
        );
        assert_eq!(r.unwrap(), "a\n1\n2\n");
        let r = send(
            &tx,
            &metrics,
            2,
            Command::Execute {
                name: "q".into(),
                args: None,
            },
        );
        assert_eq!(r.unwrap(), "n\n2\n");
        // Executing session 1's statement from session 3 fails.
        let r = send(
            &tx,
            &metrics,
            3,
            Command::Execute {
                name: "q".into(),
                args: None,
            },
        );
        assert_eq!(r.unwrap_err().0, codes::EXEC);
        // Shutdown flips the flag but the executor keeps draining.
        let r = send(&tx, &metrics, 1, Command::Stats);
        assert!(r.unwrap().contains("prepared_statements 2"));
        let r = send(&tx, &metrics, 1, Command::Shutdown);
        assert_eq!(r.unwrap(), "draining");
        assert!(shutdown.load(Ordering::SeqCst));
        let r = send(&tx, &metrics, 1, Command::Query("SELECT a FROM t".into()));
        assert_eq!(r.unwrap(), "a\n1\n2\n");
        drop(tx);
        join.join().unwrap();
    }

    #[test]
    fn checkpoint_on_volatile_engine_is_a_clean_error() {
        let metrics = Arc::new(Metrics::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, join) = spawn_volatile(&metrics, &shutdown);
        let r = send(&tx, &metrics, 1, Command::Checkpoint);
        let (code, msg) = r.unwrap_err();
        assert_eq!(code, codes::EXEC);
        assert!(msg.contains("--data-dir"), "{msg}");
        // Volatile STATS still reports the storage flag.
        let r = send(&tx, &metrics, 1, Command::Stats);
        let body = r.unwrap();
        assert!(body.contains("storage_durable 0"), "{body}");
        assert!(!body.contains("wal_records_appended"), "{body}");
        drop(tx);
        join.join().unwrap();
    }

    #[test]
    fn inspect_unknown_stock_pipeline_is_structured() {
        let metrics = Arc::new(Metrics::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, join) = spawn_volatile(&metrics, &shutdown);
        let r = send(
            &tx,
            &metrics,
            1,
            Command::Inspect {
                columns: vec!["age".into()],
                threshold: 0.3,
                source: "@no_such_pipeline".into(),
            },
        );
        let (code, msg) = r.unwrap_err();
        assert_eq!(code, codes::INSPECT);
        assert!(
            msg.starts_with("inspect unknown-pipeline: 'no_such_pipeline'"),
            "{msg}"
        );
        assert!(msg.contains("healthcare"), "{msg}");
        drop(tx);
        join.join().unwrap();
    }

    #[test]
    fn traced_command_records_child_spans_into_shared_ring() {
        let metrics = Arc::new(Metrics::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let ring = Arc::new(SharedSpanRing::new(64));
        let (tx, join, _, _) = spawn(
            ExecutorConfig {
                in_memory: true,
                exec_mode: ExecMode::default(),
                files: Vec::new(),
                queue_capacity: 4,
                data_dir: None,
                fsync: FsyncPolicy::Always,
                slow_query_us: None,
                statement_timeout_ms: None,
                auto_checkpoint_wal_bytes: None,
                repl: Arc::new(ReplState::standalone()),
                shard_id: 3,
                lane: Arc::new(ShardStats::default()),
                ring: Arc::clone(&ring),
                txn_decisions: HashMap::new(),
            },
            Arc::clone(&metrics),
            Arc::clone(&shutdown),
        )
        .unwrap();
        let root = SpanRecord::root(42, 3, "QUERY", "CREATE TABLE t (a int)");
        let ctx = TraceContext {
            query_id: 42,
            parent_span: root.id,
        };
        ring.begin_root(root);
        let (rtx, rrx) = mpsc::channel();
        metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
        tx.send(Job::Command {
            session: 1,
            command: Command::Query("CREATE TABLE t (a int)".into()),
            reply: rtx,
            ctx: Some(ctx),
            enqueued: Instant::now(),
            counted: true,
        })
        .unwrap();
        rrx.recv().unwrap().unwrap();
        let spans = ring.spans_for_query(42);
        let kinds: Vec<SpanKind> = spans.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&SpanKind::QueueWait), "{kinds:?}");
        assert!(kinds.contains(&SpanKind::ShardExec), "{kinds:?}");
        assert!(kinds.contains(&SpanKind::EnginePhase), "{kinds:?}");
        let exec = spans
            .iter()
            .find(|s| s.kind == SpanKind::ShardExec)
            .expect("exec span");
        assert_eq!(exec.parent, ctx.parent_span);
        assert_eq!(exec.shard, 3);
        // Engine phases parent under the exec span, not the root.
        let phase = spans
            .iter()
            .find(|s| s.kind == SpanKind::EnginePhase)
            .expect("phase span");
        assert_eq!(phase.parent, exec.id);
        drop(tx);
        join.join().unwrap();
    }

    #[test]
    fn durable_executor_checkpoints_and_recovers() {
        let dir = std::env::temp_dir().join(format!(
            "elephant-server-exec-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let durable_cfg = || ExecutorConfig {
            in_memory: true,
            exec_mode: ExecMode::default(),
            files: Vec::new(),
            queue_capacity: 4,
            data_dir: Some(dir.clone()),
            fsync: FsyncPolicy::Always,
            slow_query_us: None,
            statement_timeout_ms: None,
            auto_checkpoint_wal_bytes: None,
            repl: Arc::new(ReplState::standalone()),
            shard_id: 0,
            lane: Arc::new(ShardStats::default()),
            ring: Arc::new(SharedSpanRing::new(64)),
            txn_decisions: HashMap::new(),
        };
        let metrics = Arc::new(Metrics::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, join, wal, _) =
            spawn(durable_cfg(), Arc::clone(&metrics), Arc::clone(&shutdown)).unwrap();
        assert!(wal.is_some(), "durable engines expose their WAL handle");
        send(
            &tx,
            &metrics,
            1,
            Command::Query("CREATE TABLE t (a int)".into()),
        )
        .unwrap();
        send(
            &tx,
            &metrics,
            1,
            Command::Query("INSERT INTO t VALUES (1), (2)".into()),
        )
        .unwrap();
        let r = send(&tx, &metrics, 1, Command::Checkpoint).unwrap();
        assert!(r.starts_with("checkpoint tables=1 rows=2"), "{r}");
        send(
            &tx,
            &metrics,
            1,
            Command::Query("INSERT INTO t VALUES (3)".into()),
        )
        .unwrap();
        drop(tx);
        join.join().unwrap();

        // Second incarnation over the same directory sees all three rows
        // and reports the recovered table over the handshake.
        let metrics = Arc::new(Metrics::default());
        let (tx, join, _, recovered) =
            spawn(durable_cfg(), Arc::clone(&metrics), Arc::clone(&shutdown)).unwrap();
        assert_eq!(recovered, vec!["t".to_string()]);
        let r = send(
            &tx,
            &metrics,
            1,
            Command::Query("SELECT a FROM t ORDER BY a".into()),
        );
        assert_eq!(r.unwrap(), "a\n1\n2\n3\n");
        let body = send(&tx, &metrics, 1, Command::Stats).unwrap();
        assert!(body.contains("storage_durable 1"), "{body}");
        assert!(body.contains("recovered_snapshot_tables 1"), "{body}");
        assert!(body.contains("recovered_wal_records 1"), "{body}");
        drop(tx);
        join.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
