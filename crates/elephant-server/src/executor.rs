//! The single-threaded query executor.
//!
//! [`sqlengine::Engine`] is deliberately not `Send` (its catalog shares
//! view definitions via `Rc`), so the server gives it a dedicated thread:
//! the engine is *constructed on* that thread and never leaves it. Session
//! threads submit [`Job`]s over a **bounded** `std::sync::mpsc` channel —
//! the bound is the server's backpressure: when the executor falls behind,
//! `send` blocks the session (and therefore the client) instead of letting
//! the queue grow without limit.
//!
//! Shutdown is cooperative and loses nothing: `SHUTDOWN` travels through
//! the queue like any command; the executor flips the shared flag (stopping
//! the accept loop), answers `draining`, and keeps serving until every
//! sender — the accept loop's prototype and all session clones — has been
//! dropped, at which point `recv` disconnects and the thread exits. Every
//! job enqueued before the last sender dropped still gets its response.

use crate::metrics::Metrics;
use crate::protocol::{codes, Command};
use mlinspect::SqlMode;
use sqlengine::{Engine, EngineProfile};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, SyncSender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// What the executor sends back: a response body, or an error code + message.
pub(crate) type Reply = Result<String, (&'static str, String)>;

/// One unit of work for the executor thread.
pub(crate) enum Job {
    /// A client command; the result goes back on `reply`.
    Command {
        /// Originating session id (scopes prepared-statement names).
        session: u64,
        /// The parsed command.
        command: Command,
        /// Where the session blocks waiting for the answer.
        reply: mpsc::Sender<Reply>,
    },
    /// A session disconnected: drop its prepared statements.
    CloseSession {
        /// The closed session's id.
        session: u64,
    },
}

/// Executor construction parameters.
pub(crate) struct ExecutorConfig {
    /// Use the in-memory (Umbra-like) profile instead of disk-based.
    pub in_memory: bool,
    /// Virtual files visible to `INSPECT` pipelines (`read_csv` targets).
    pub files: Vec<(String, String)>,
    /// Bound of the job queue (backpressure threshold).
    pub queue_capacity: usize,
}

/// Spawn the executor thread; returns the job sender and the join handle.
/// The thread exits when every clone of the returned sender is dropped.
pub(crate) fn spawn(
    cfg: ExecutorConfig,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
) -> (SyncSender<Job>, JoinHandle<()>) {
    let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_capacity.max(1));
    let handle = thread::Builder::new()
        .name("elephant-executor".into())
        .spawn(move || {
            // The engine must be created here: it is not Send.
            let profile = if cfg.in_memory {
                EngineProfile::in_memory()
            } else {
                EngineProfile::disk_based()
            };
            let mut state = ExecutorState {
                engine: Engine::new(profile),
                files: cfg.files,
                prepared: HashMap::new(),
                metrics,
                shutdown,
            };
            while let Ok(job) = rx.recv() {
                state.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                match job {
                    Job::Command {
                        session,
                        command,
                        reply,
                    } => {
                        let started = Instant::now();
                        let verb = command.verb();
                        let result = state.dispatch(session, command);
                        state.metrics.latency.record(started.elapsed());
                        match &result {
                            Ok(_) => state.metrics.count_verb(verb),
                            Err(_) => {
                                state.metrics.errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        // A dropped receiver means the session died mid-query;
                        // nothing to do — the answer has nowhere to go.
                        let _ = reply.send(result);
                    }
                    Job::CloseSession { session } => state.close_session(session),
                }
            }
        })
        .expect("spawn executor thread");
    (tx, handle)
}

struct ExecutorState {
    engine: Engine,
    files: Vec<(String, String)>,
    /// Prepared-statement names per live session (engine-scoped form).
    prepared: HashMap<u64, Vec<String>>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
}

impl ExecutorState {
    fn dispatch(&mut self, session: u64, command: Command) -> Reply {
        match command {
            Command::Query(sql) => {
                let out = self
                    .engine
                    .execute(&sql)
                    .map_err(|e| (codes::EXEC, e.to_string()))?;
                Ok(match out.relation {
                    Some(rel) => etypes::csv::write_csv(&rel.columns, &rel.rows, ','),
                    None => format!("ok {}", out.rows_affected),
                })
            }
            Command::Prepare { name, sql } => {
                let scoped = scoped_name(session, &name);
                self.engine
                    .prepare(scoped.clone(), sql)
                    .map_err(|e| (codes::EXEC, e.to_string()))?;
                let names = self.prepared.entry(session).or_default();
                if !names.contains(&scoped) {
                    names.push(scoped);
                }
                Ok(format!("prepared {name}"))
            }
            Command::Execute(name) => {
                let rel = self
                    .engine
                    .execute_prepared(&scoped_name(session, &name))
                    .map_err(|e| (codes::EXEC, e.to_string()))?;
                Ok(etypes::csv::write_csv(&rel.columns, &rel.rows, ','))
            }
            Command::Deallocate(name) => {
                let scoped = scoped_name(session, &name);
                self.engine
                    .deallocate(&scoped)
                    .map_err(|e| (codes::EXEC, e.to_string()))?;
                if let Some(names) = self.prepared.get_mut(&session) {
                    names.retain(|n| *n != scoped);
                }
                Ok(format!("deallocated {name}"))
            }
            Command::Explain(sql) => self
                .engine
                .explain(&sql)
                .map_err(|e| (codes::EXEC, e.to_string())),
            Command::Inspect {
                columns,
                threshold,
                source,
            } => {
                let cols: Vec<&str> = columns.iter().map(|c| c.as_str()).collect();
                let report = mlinspect::inspect_pipeline_in_sql(
                    &source,
                    &self.files,
                    &cols,
                    threshold,
                    &mut self.engine,
                    SqlMode::Cte,
                    false,
                )
                .map_err(|e| (codes::INSPECT, e.to_string()))?;
                Ok(report.render())
            }
            Command::Stats => {
                let prepared_total: usize = self.prepared.values().map(Vec::len).sum();
                Ok(self.metrics.render(
                    self.engine.plan_cache_stats(),
                    self.engine.plan_cache_len(),
                    prepared_total,
                ))
            }
            Command::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                Ok("draining".into())
            }
        }
    }

    fn close_session(&mut self, session: u64) {
        if let Some(names) = self.prepared.remove(&session) {
            for name in names {
                let _ = self.engine.deallocate(&name);
            }
        }
        self.metrics.sessions_closed.fetch_add(1, Ordering::Relaxed);
    }
}

fn scoped_name(session: u64, name: &str) -> String {
    format!("s{session}.{name}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(tx: &SyncSender<Job>, metrics: &Metrics, session: u64, cmd: Command) -> Reply {
        let (rtx, rrx) = mpsc::channel();
        metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
        tx.send(Job::Command {
            session,
            command: cmd,
            reply: rtx,
        })
        .expect("executor alive");
        rrx.recv().expect("reply")
    }

    #[test]
    fn executor_round_trip_and_scoped_prepare() {
        let metrics = Arc::new(Metrics::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, join) = spawn(
            ExecutorConfig {
                in_memory: true,
                files: Vec::new(),
                queue_capacity: 4,
            },
            Arc::clone(&metrics),
            Arc::clone(&shutdown),
        );
        let r = send(
            &tx,
            &metrics,
            1,
            Command::Query("CREATE TABLE t (a int)".into()),
        );
        assert_eq!(r.unwrap(), "ok 0");
        let r = send(
            &tx,
            &metrics,
            1,
            Command::Query("INSERT INTO t VALUES (1), (2)".into()),
        );
        assert_eq!(r.unwrap(), "ok 2");
        let r = send(
            &tx,
            &metrics,
            1,
            Command::Prepare {
                name: "q".into(),
                sql: "SELECT a FROM t ORDER BY a".into(),
            },
        );
        assert_eq!(r.unwrap(), "prepared q");
        // Same statement name in another session: independent namespace.
        let r = send(
            &tx,
            &metrics,
            2,
            Command::Prepare {
                name: "q".into(),
                sql: "SELECT count(*) AS n FROM t".into(),
            },
        );
        assert_eq!(r.unwrap(), "prepared q");
        let r = send(&tx, &metrics, 1, Command::Execute("q".into()));
        assert_eq!(r.unwrap(), "a\n1\n2\n");
        let r = send(&tx, &metrics, 2, Command::Execute("q".into()));
        assert_eq!(r.unwrap(), "n\n2\n");
        // Executing session 1's statement from session 3 fails.
        let r = send(&tx, &metrics, 3, Command::Execute("q".into()));
        assert_eq!(r.unwrap_err().0, codes::EXEC);
        // Shutdown flips the flag but the executor keeps draining.
        let r = send(&tx, &metrics, 1, Command::Stats);
        assert!(r.unwrap().contains("prepared_statements 2"));
        let r = send(&tx, &metrics, 1, Command::Shutdown);
        assert_eq!(r.unwrap(), "draining");
        assert!(shutdown.load(Ordering::SeqCst));
        let r = send(&tx, &metrics, 1, Command::Query("SELECT a FROM t".into()));
        assert_eq!(r.unwrap(), "a\n1\n2\n");
        drop(tx);
        join.join().unwrap();
    }
}
