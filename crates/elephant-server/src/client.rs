//! A blocking client for the elephant wire protocol.
//!
//! [`ElephantClient`] speaks exactly the protocol in [`crate::protocol`]:
//! simple-line frames when the command fits on one line, length-prefixed
//! otherwise, and length-prefixed `+`/`-` responses either way. Response
//! bodies come back verbatim (`query_raw` returns the CSV bytes exactly as
//! the server produced them), which is what the integration tests compare
//! byte-for-byte against the embedded engine.
//!
//! The [`wire`] submodule holds [`wire::PipelineClient`], which negotiates
//! the v2 protocol (`HELLO v2`) and keeps many requests in flight on one
//! connection — see [`crate::proto2`] for the frame grammar.

use crate::protocol::{codes, encode_request};
use etypes::Prng;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::thread;
use std::time::Duration;

/// Default response timeout used by [`ElephantClient::connect`].
const DEFAULT_RESPONSE_TIMEOUT: Duration = Duration::from_secs(30);

/// A structured error response from the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerError {
    /// Machine-readable code (`ERR_EXEC`, `ERR_OVERSIZED`, ...).
    pub code: String,
    /// Human-readable message.
    pub message: String,
}

impl ServerError {
    /// True for transient conditions worth retrying with backoff:
    /// `ERR_BUSY` (admission control refused the command) and
    /// `ERR_TIMEOUT` (the statement was cancelled by the server's
    /// statement timeout). Execution errors, read-only degradation, and
    /// protocol errors are deterministic — retrying them verbatim cannot
    /// succeed, so they are not retryable.
    pub fn is_retryable(&self) -> bool {
        self.code == codes::BUSY || self.code == codes::TIMEOUT
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code, self.message)
    }
}

/// Client-side failure: transport trouble or a server error response.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or the response was unparsable.
    Io(io::Error),
    /// The server answered with a structured error.
    Server(ServerError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// True when the failure is a retryable server response (see
    /// [`ServerError::is_retryable`]); transport errors are not retried by
    /// [`ElephantClient::send_with_retry`] because the connection state is
    /// unknown.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ClientError::Server(e) if e.is_retryable())
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

/// Seeded, jittered exponential backoff for retrying transient server
/// errors (`ERR_BUSY`, `ERR_TIMEOUT`).
///
/// Attempt `k` (0-based) sleeps a uniformly random duration in
/// `[0, min(cap, base * 2^k))` — "full jitter", which decorrelates
/// competing clients hammering a saturated server. The jitter stream is
/// seeded, so a fixed seed gives a reproducible retry schedule (the chaos
/// harness depends on this).
#[derive(Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` means "never retry").
    pub attempts: u32,
    /// Backoff base; attempt `k` draws from `[0, base * 2^k)`.
    pub base: Duration,
    /// Ceiling on a single sleep.
    pub cap: Duration,
    prng: Prng,
}

impl RetryPolicy {
    /// A policy with `attempts` total tries, backoff base `base`, a 1 s
    /// sleep cap, and jitter seeded by `seed`.
    pub fn new(attempts: u32, base: Duration, seed: u64) -> RetryPolicy {
        RetryPolicy {
            attempts: attempts.max(1),
            base,
            cap: Duration::from_secs(1),
            prng: Prng::new(seed),
        }
    }

    /// The sleep before retry number `attempt` (0-based count of failures
    /// so far): uniform in `[0, min(cap, base * 2^attempt))`.
    pub fn backoff(&mut self, attempt: u32) -> Duration {
        self.backoff_salted(attempt, 0)
    }

    /// [`backoff`](RetryPolicy::backoff), with the jitter draw xor-folded
    /// with `salt`. Clients salt with the shard id reported by a busy
    /// server, so retries against *different* saturated shards decorrelate
    /// even when the clients share a seed (the chaos harness starts many
    /// clients from one seed). Salt `0` is the identity: `backoff ==
    /// backoff_salted(_, 0)`.
    pub fn backoff_salted(&mut self, attempt: u32, salt: u64) -> Duration {
        let exp = self.base.saturating_mul(1u32 << attempt.min(16));
        let ceiling = exp.min(self.cap).as_micros() as u64;
        if ceiling == 0 {
            return Duration::ZERO;
        }
        let draw = self.prng.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Duration::from_micros(draw % ceiling)
    }
}

/// Pull the shard id out of a busy-server message. The router formats
/// admission failures as `executor queue full after N ms (shard=K); ...`;
/// anything else (older servers, other retryable errors) salts with 0.
fn busy_shard_salt(message: &str) -> u64 {
    let Some(idx) = message.find("shard=") else {
        return 0;
    };
    let digits: String = message[idx + "shard=".len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().unwrap_or(0)
}

/// One connection to an elephant server.
pub struct ElephantClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl ElephantClient {
    /// Connect to `addr` with the default 30 s response timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ElephantClient> {
        ElephantClient::with_timeout(addr, Some(DEFAULT_RESPONSE_TIMEOUT))
    }

    /// Connect to `addr` with an explicit response timeout; `None` waits
    /// indefinitely. A response slower than the timeout surfaces as
    /// [`ClientError::Io`] with kind `WouldBlock`/`TimedOut`.
    pub fn with_timeout(
        addr: impl ToSocketAddrs,
        timeout: Option<Duration>,
    ) -> io::Result<ElephantClient> {
        let stream = TcpStream::connect(addr)?;
        ElephantClient::from_stream(stream, timeout)
    }

    /// Connect with a bound on the TCP connect itself (a dead host
    /// otherwise blocks for the OS default, which can be minutes) and the
    /// default response timeout. Every resolved address is tried; the last
    /// error wins.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        connect_timeout: Duration,
    ) -> io::Result<ElephantClient> {
        let mut last_err = None;
        for sock in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&sock, connect_timeout) {
                Ok(stream) => {
                    return ElephantClient::from_stream(stream, Some(DEFAULT_RESPONSE_TIMEOUT))
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        }))
    }

    fn from_stream(stream: TcpStream, timeout: Option<Duration>) -> io::Result<ElephantClient> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(timeout)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ElephantClient {
            writer: stream,
            reader,
        })
    }

    /// Send one raw command frame and return the raw response body.
    pub fn send(&mut self, command: &str) -> ClientResult<String> {
        self.writer.write_all(encode_request(command).as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// [`send`](ElephantClient::send), retried under `policy` while the
    /// server answers with a retryable error (`ERR_BUSY`, `ERR_TIMEOUT`).
    /// Deterministic failures — execution errors, `ERR_READ_ONLY`,
    /// protocol errors — and transport errors return immediately.
    pub fn send_with_retry(
        &mut self,
        command: &str,
        policy: &mut RetryPolicy,
    ) -> ClientResult<String> {
        let mut attempt = 0u32;
        loop {
            match self.send(command) {
                Err(e) if e.is_retryable() && attempt + 1 < policy.attempts => {
                    // ERR_BUSY from a sharded server names the saturated
                    // shard; salt the jitter with it so clients retrying
                    // against different shards decorrelate.
                    let salt = match &e {
                        ClientError::Server(se) if se.code == codes::BUSY => {
                            busy_shard_salt(&se.message)
                        }
                        _ => 0,
                    };
                    let sleep = policy.backoff_salted(attempt, salt);
                    attempt += 1;
                    if !sleep.is_zero() {
                        thread::sleep(sleep);
                    }
                }
                other => return other,
            }
        }
    }

    /// Run a SQL statement; returns CSV for SELECTs, `ok <n>` otherwise.
    /// The body is returned byte-for-byte as the server produced it.
    pub fn query_raw(&mut self, sql: &str) -> ClientResult<String> {
        self.send(&format!("QUERY {sql}"))
    }

    /// Plan + cache `sql` under `name` (scoped to this connection).
    pub fn prepare(&mut self, name: &str, sql: &str) -> ClientResult<String> {
        self.send(&format!("PREPARE {name} {sql}"))
    }

    /// Execute a statement prepared on this connection; returns CSV.
    pub fn execute(&mut self, name: &str) -> ClientResult<String> {
        self.send(&format!("EXECUTE {name}"))
    }

    /// Drop a prepared statement.
    pub fn deallocate(&mut self, name: &str) -> ClientResult<String> {
        self.send(&format!("DEALLOCATE {name}"))
    }

    /// Render the optimized plan for `sql`.
    pub fn explain(&mut self, sql: &str) -> ClientResult<String> {
        self.send(&format!("EXPLAIN {sql}"))
    }

    /// Execute the query and return the plan annotated with per-operator
    /// runtime row counts and timings.
    pub fn explain_analyze(&mut self, sql: &str) -> ClientResult<String> {
        self.send(&format!("EXPLAIN ANALYZE {sql}"))
    }

    /// The most recent `n` finished root spans (server default when
    /// `None`), newest first, across every shard ring.
    pub fn trace(&mut self, n: Option<usize>) -> ClientResult<String> {
        match n {
            Some(n) => self.send(&format!("TRACE {n}")),
            None => self.send("TRACE"),
        }
    }

    /// The full correlated span tree for one query id (as printed in the
    /// `TRACE` listing and in slow-query log lines), rendered
    /// hierarchically with per-shard time attribution.
    pub fn trace_tree(&mut self, query_id: u64) -> ClientResult<String> {
        self.send(&format!("TRACE q{query_id}"))
    }

    /// Inspect an ML pipeline via the SQL backend; returns the per-check,
    /// per-operator verdict report.
    pub fn inspect(
        &mut self,
        columns: &[&str],
        threshold: f64,
        source: &str,
    ) -> ClientResult<String> {
        self.send(&format!(
            "INSPECT {} {threshold}\n{source}",
            columns.join(",")
        ))
    }

    /// Fetch server + engine counters as `key value` lines.
    pub fn stats(&mut self) -> ClientResult<String> {
        self.send("STATS")
    }

    /// Snapshot all tables and truncate the WAL; errors on volatile servers.
    pub fn checkpoint(&mut self) -> ClientResult<String> {
        self.send("CHECKPOINT")
    }

    /// Replication topology: role, followers, shipped bytes, watermarks.
    pub fn replica(&mut self) -> ClientResult<String> {
        self.send("REPLICA")
    }

    /// Replication watermarks (`committed_lsn` on leaders, `applied_lsn` /
    /// `leader_lsn` on followers) as `key value` lines.
    pub fn lag(&mut self) -> ClientResult<String> {
        self.send("LAG")
    }

    /// Ask the server to drain; returns `draining`.
    pub fn shutdown(&mut self) -> ClientResult<String> {
        self.send("SHUTDOWN")
    }

    /// Parse one `key value` line out of a `LAG`/`REPLICA`/`STATS` body.
    pub fn parse_watermark(body: &str, key: &str) -> Option<u64> {
        body.lines().find_map(|line| {
            let (k, v) = line.split_once(' ')?;
            (k == key).then(|| v.trim().parse().ok())?
        })
    }

    fn read_response(&mut self) -> ClientResult<String> {
        let mut status = String::new();
        loop {
            match self.reader.read_line(&mut status) {
                Ok(0) => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )))
                }
                Ok(_) if status.ends_with('\n') => break,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
        let status = status.trim_end();
        if status.is_empty() {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                "empty status line",
            )));
        }
        let (ok, len_text) = match status.split_at(1) {
            ("+", rest) => (true, rest),
            ("-", rest) => (false, rest),
            _ => {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line '{status}'"),
                )))
            }
        };
        let n: usize = len_text.parse().map_err(|_| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad response length '{len_text}'"),
            ))
        })?;
        let mut body = vec![0u8; n + 1];
        self.reader.read_exact(&mut body)?;
        body.pop(); // trailing newline
        let body = String::from_utf8(body).map_err(|_| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                "response body is not UTF-8",
            ))
        })?;
        if ok {
            Ok(body)
        } else {
            let (code, message) = body.split_once(' ').unwrap_or((body.as_str(), ""));
            Err(ClientError::Server(ServerError {
                code: code.to_string(),
                message: message.to_string(),
            }))
        }
    }
}

/// A topology-aware client: writes go to the leader, reads round-robin
/// across follower replicas, and a follower that refuses a statement with
/// `ERR_READ_ONLY` (or is simply unreachable) gets transparently redirected
/// to the leader — the caller never sees replica plumbing.
///
/// Replication is asynchronous, so a follower read may trail the leader.
/// [`read_at_lsn`](ReplicatedClient::read_at_lsn) bounds that staleness:
/// it polls the follower's `LAG` watermark until the follower has applied
/// at least a target LSN (usually the leader's `committed_lsn` right after
/// a write), falling back to the leader if the follower cannot catch up in
/// time.
pub struct ReplicatedClient {
    leader: ElephantClient,
    followers: Vec<ElephantClient>,
    next_follower: usize,
}

impl ReplicatedClient {
    /// Connect to the leader and every follower, each within
    /// `connect_timeout`. A follower that cannot be reached at connect time
    /// is an error — topology should be explicit, not silently thinner.
    pub fn connect(
        leader_addr: &str,
        follower_addrs: &[String],
        connect_timeout: Duration,
    ) -> io::Result<ReplicatedClient> {
        let leader = ElephantClient::connect_with_timeout(leader_addr, connect_timeout)?;
        let followers = follower_addrs
            .iter()
            .map(|a| ElephantClient::connect_with_timeout(a.as_str(), connect_timeout))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(ReplicatedClient {
            leader,
            followers,
            next_follower: 0,
        })
    }

    /// Number of follower connections reads are spread over.
    pub fn follower_count(&self) -> usize {
        self.followers.len()
    }

    /// The leader connection, for commands that must not be routed
    /// (CHECKPOINT, SHUTDOWN, leader STATS).
    pub fn leader(&mut self) -> &mut ElephantClient {
        &mut self.leader
    }

    /// Run a write statement on the leader; returns `ok <n>`.
    pub fn write(&mut self, sql: &str) -> ClientResult<String> {
        self.leader.query_raw(sql)
    }

    /// Run a read statement on the next follower (round-robin), falling
    /// back through the remaining followers and finally the leader when a
    /// follower is unreachable or refuses with `ERR_READ_ONLY` (a write
    /// routed here by mistake).
    pub fn read(&mut self, sql: &str) -> ClientResult<String> {
        self.route_read(&format!("QUERY {sql}"))
    }

    /// `EXPLAIN` on a follower — plans are part of the replicated surface.
    pub fn explain(&mut self, sql: &str) -> ClientResult<String> {
        self.route_read(&format!("EXPLAIN {sql}"))
    }

    /// The leader's committed-LSN watermark: the replication target a
    /// bounded-staleness read should wait for.
    pub fn leader_committed_lsn(&mut self) -> ClientResult<u64> {
        let body = self.leader.lag()?;
        ElephantClient::parse_watermark(&body, "committed_lsn").ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("no committed_lsn in LAG body: {body}"),
            ))
        })
    }

    /// Bounded-staleness read: wait (up to `wait`) for a follower to apply
    /// at least `target_lsn`, then read from it. If no follower catches up
    /// in time the read runs on the leader, which is never stale.
    pub fn read_at_lsn(
        &mut self,
        sql: &str,
        target_lsn: u64,
        wait: Duration,
    ) -> ClientResult<String> {
        let deadline = std::time::Instant::now() + wait;
        if !self.followers.is_empty() {
            let idx = self.next_follower % self.followers.len();
            self.next_follower = self.next_follower.wrapping_add(1);
            loop {
                let applied = self.followers[idx]
                    .lag()
                    .ok()
                    .and_then(|body| ElephantClient::parse_watermark(&body, "applied_lsn"));
                match applied {
                    Some(applied) if applied >= target_lsn => {
                        return match self.followers[idx].query_raw(sql) {
                            Err(ClientError::Server(e)) if e.code == codes::READ_ONLY => {
                                self.leader.query_raw(sql)
                            }
                            other => other,
                        };
                    }
                    // Unreachable follower: stop polling a dead socket.
                    None => break,
                    Some(_) if std::time::Instant::now() >= deadline => break,
                    Some(_) => thread::sleep(Duration::from_millis(2)),
                }
            }
        }
        self.leader.query_raw(sql)
    }

    fn route_read(&mut self, command: &str) -> ClientResult<String> {
        for _ in 0..self.followers.len() {
            let idx = self.next_follower % self.followers.len();
            self.next_follower = self.next_follower.wrapping_add(1);
            match self.followers[idx].send(command) {
                Ok(body) => return Ok(body),
                // A write mis-routed to a replica: the leader owns it.
                Err(ClientError::Server(e)) if e.code == codes::READ_ONLY => {
                    return self.leader.send(command)
                }
                Err(ClientError::Server(e)) => return Err(ClientError::Server(e)),
                // Transport trouble: try the next follower.
                Err(ClientError::Io(_)) => continue,
            }
        }
        self.leader.send(command)
    }
}

pub mod wire {
    //! Client side of the pipelined v2 wire protocol.
    //!
    //! [`PipelineClient`] upgrades a fresh connection with `HELLO v2` and
    //! then speaks sequence-tagged frames (`@seq len` requests, `+`/`-`
    //! responses, `*` stream chunks — see [`crate::proto2`]). Unlike
    //! [`ElephantClient`](super::ElephantClient), which is strictly
    //! request/response, this client separates *writing* commands from
    //! *reading* their results: [`pipeline`](PipelineClient::pipeline)
    //! writes a whole batch of frames before reading the first response,
    //! so one round trip covers the entire batch instead of one command.
    //!
    //! Responses are matched back to commands by sequence id, and the
    //! server guarantees response order equals request order, so a
    //! pipeline's results come back positionally. Streamed responses
    //! (`*` chunks ending in a `stream bytes=.. chunks=..` trailer) are
    //! reassembled transparently — callers always see the full body.

    use super::{busy_shard_salt, ClientError, ClientResult, ServerError};
    use crate::protocol::{codes, encode_request, BATCH_SEP};
    use crate::RetryPolicy;
    use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
    use std::net::{TcpStream, ToSocketAddrs};
    use std::thread;
    use std::time::Duration;

    /// Default response timeout, matching [`super::ElephantClient`].
    const DEFAULT_RESPONSE_TIMEOUT: Duration = Duration::from_secs(30);

    /// A v2 connection with pipelining: queue many commands, then read
    /// their responses in order.
    pub struct PipelineClient {
        writer: BufWriter<TcpStream>,
        reader: BufReader<TcpStream>,
        next_seq: u64,
    }

    impl PipelineClient {
        /// Connect to `addr` and negotiate v2 with the default 30 s
        /// response timeout. Fails with `InvalidData` if the server does
        /// not acknowledge `HELLO v2`.
        pub fn connect(addr: impl ToSocketAddrs) -> io::Result<PipelineClient> {
            PipelineClient::with_timeout(addr, Some(DEFAULT_RESPONSE_TIMEOUT))
        }

        /// Connect with an explicit response timeout (`None` waits
        /// indefinitely) and negotiate v2.
        pub fn with_timeout(
            addr: impl ToSocketAddrs,
            timeout: Option<Duration>,
        ) -> io::Result<PipelineClient> {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(timeout)?;
            let mut reader = BufReader::new(stream.try_clone()?);
            let mut writer = BufWriter::new(stream);

            // The handshake rides on v1 framing: request `HELLO v2`,
            // expect `+2\nv2\n`.
            writer.write_all(encode_request("HELLO v2").as_bytes())?;
            writer.flush()?;
            let mut status = String::new();
            reader.read_line(&mut status)?;
            let body_len: usize = status
                .trim_end()
                .strip_prefix('+')
                .and_then(|n| n.parse().ok())
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("server refused v2 handshake: {}", status.trim_end()),
                    )
                })?;
            let mut body = vec![0u8; body_len + 1];
            reader.read_exact(&mut body)?;
            body.pop();
            if body != b"v2" {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "unexpected handshake body '{}'",
                        String::from_utf8_lossy(&body)
                    ),
                ));
            }
            Ok(PipelineClient {
                writer,
                reader,
                next_seq: 0,
            })
        }

        /// Queue one command frame without flushing or reading; returns the
        /// sequence id the response will carry. Pair with
        /// [`flush`](PipelineClient::flush) and
        /// [`read_response`](PipelineClient::read_response).
        pub fn enqueue(&mut self, command: &str) -> io::Result<u64> {
            self.next_seq += 1;
            let seq = self.next_seq;
            write!(self.writer, "@{seq} {}\n{command}\n", command.len())?;
            Ok(seq)
        }

        /// Flush every queued frame to the socket.
        pub fn flush(&mut self) -> io::Result<()> {
            self.writer.flush()
        }

        /// Read the next response in wire order: `(seq, result)`. Stream
        /// chunks are reassembled into one body before returning.
        pub fn read_response(&mut self) -> ClientResult<(u64, Result<String, ServerError>)> {
            let mut streamed: Vec<u8> = Vec::new();
            loop {
                let (kind, seq, len) = self.read_status()?;
                match kind {
                    b'*' => {
                        let chunk = self.read_body(len)?;
                        streamed.extend_from_slice(&chunk);
                    }
                    b'+' => {
                        let body = self.read_body(len)?;
                        let body = String::from_utf8(body).map_err(|_| {
                            ClientError::Io(io::Error::new(
                                io::ErrorKind::InvalidData,
                                "response body is not UTF-8",
                            ))
                        })?;
                        if streamed.is_empty() {
                            return Ok((seq, Ok(body)));
                        }
                        // Trailer after a chunked stream: verify the byte
                        // count, then hand back the reassembled body.
                        let declared = body
                            .strip_prefix("stream bytes=")
                            .and_then(|r| r.split_whitespace().next())
                            .and_then(|n| n.parse::<usize>().ok());
                        if declared != Some(streamed.len()) {
                            return Err(ClientError::Io(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!(
                                    "stream trailer '{body}' does not match {} received bytes",
                                    streamed.len()
                                ),
                            )));
                        }
                        let body = String::from_utf8(streamed).map_err(|_| {
                            ClientError::Io(io::Error::new(
                                io::ErrorKind::InvalidData,
                                "streamed body is not UTF-8",
                            ))
                        })?;
                        return Ok((seq, Ok(body)));
                    }
                    _ => {
                        let body = self.read_body(len)?;
                        let body = String::from_utf8_lossy(&body);
                        let (code, message) = body.split_once(' ').unwrap_or((body.as_ref(), ""));
                        return Ok((
                            seq,
                            Err(ServerError {
                                code: code.to_string(),
                                message: message.to_string(),
                            }),
                        ));
                    }
                }
            }
        }

        /// Send one command and wait for its response — v2's equivalent of
        /// [`ElephantClient::send`](super::ElephantClient::send).
        pub fn send(&mut self, command: &str) -> ClientResult<String> {
            let seq = self.enqueue(command)?;
            self.flush()?;
            let (got, result) = self.read_response()?;
            if got != seq {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("response seq {got} does not match request seq {seq}"),
                )));
            }
            result.map_err(ClientError::Server)
        }

        /// Write every command, flush once, then read every response. The
        /// returned vector is positional: `results[i]` answers
        /// `commands[i]`. Transport failures abort the whole pipeline;
        /// per-command server errors land in their slot.
        pub fn pipeline<S: AsRef<str>>(
            &mut self,
            commands: &[S],
        ) -> ClientResult<Vec<Result<String, ServerError>>> {
            let mut seqs = Vec::with_capacity(commands.len());
            for command in commands {
                seqs.push(self.enqueue(command.as_ref())?);
            }
            self.flush()?;
            let mut results = Vec::with_capacity(commands.len());
            for &seq in &seqs {
                let (got, result) = self.read_response()?;
                if got != seq {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("response seq {got} does not match request seq {seq}"),
                    )));
                }
                results.push(result);
            }
            Ok(results)
        }

        /// [`pipeline`](PipelineClient::pipeline) with
        /// [`RetryPolicy`] semantics preserved: commands answered with a
        /// retryable error (`ERR_BUSY`, `ERR_TIMEOUT`) are re-pipelined —
        /// and *only* those commands; everything already acknowledged
        /// keeps its first result. Jitter is salted with the shard id a
        /// busy server names, exactly like
        /// [`ElephantClient::send_with_retry`](super::ElephantClient::send_with_retry).
        pub fn pipeline_with_retry<S: AsRef<str>>(
            &mut self,
            commands: &[S],
            policy: &mut RetryPolicy,
        ) -> ClientResult<Vec<Result<String, ServerError>>> {
            let mut results: Vec<Option<Result<String, ServerError>>> =
                (0..commands.len()).map(|_| None).collect();
            let mut pending: Vec<usize> = (0..commands.len()).collect();
            let mut attempt = 0u32;
            loop {
                let round: Vec<&str> = pending.iter().map(|&i| commands[i].as_ref()).collect();
                let answers = self.pipeline(&round)?;
                let mut still = Vec::new();
                let mut salt = 0u64;
                for (&idx, answer) in pending.iter().zip(answers) {
                    match answer {
                        Err(e) if e.is_retryable() && attempt + 1 < policy.attempts => {
                            if e.code == codes::BUSY {
                                salt = busy_shard_salt(&e.message);
                            }
                            results[idx] = Some(Err(e));
                            still.push(idx);
                        }
                        other => results[idx] = Some(other),
                    }
                }
                if still.is_empty() {
                    break;
                }
                let sleep = policy.backoff_salted(attempt, salt);
                attempt += 1;
                if !sleep.is_zero() {
                    thread::sleep(sleep);
                }
                pending = still;
            }
            Ok(results
                .into_iter()
                .map(|r| r.expect("slot filled"))
                .collect())
        }

        /// Run many SQL statements as one `BATCH` frame; returns the
        /// per-statement bodies in order. A mid-batch failure surfaces as
        /// the server's `batch statement i/k: ...` error.
        pub fn batch<S: AsRef<str>>(&mut self, statements: &[S]) -> ClientResult<Vec<String>> {
            let sep = BATCH_SEP.to_string();
            let joined = statements
                .iter()
                .map(|s| s.as_ref())
                .collect::<Vec<_>>()
                .join(&sep);
            let body = self.send(&format!("BATCH {joined}"))?;
            Ok(body.split(BATCH_SEP).map(str::to_string).collect())
        }

        fn read_status(&mut self) -> ClientResult<(u8, u64, usize)> {
            let mut status = String::new();
            loop {
                match self.reader.read_line(&mut status) {
                    Ok(0) => {
                        return Err(ClientError::Io(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server closed the connection",
                        )))
                    }
                    Ok(_) if status.ends_with('\n') => break,
                    Ok(_) => continue,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(ClientError::Io(e)),
                }
            }
            parse_v2_status(status.trim_end()).map_err(ClientError::Io)
        }

        fn read_body(&mut self, len: usize) -> ClientResult<Vec<u8>> {
            let mut body = vec![0u8; len + 1];
            self.reader.read_exact(&mut body)?;
            body.pop(); // trailing newline
            Ok(body)
        }
    }

    /// Parse a v2 response status line `(+|-|*)<seq> <len>` into
    /// `(kind, seq, len)`.
    fn parse_v2_status(line: &str) -> io::Result<(u8, u64, usize)> {
        let bad = || {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad v2 status line '{line}'"),
            )
        };
        let kind = *line.as_bytes().first().ok_or_else(bad)?;
        if !matches!(kind, b'+' | b'-' | b'*') {
            return Err(bad());
        }
        let (seq, len) = line[1..].split_once(' ').ok_or_else(bad)?;
        let seq: u64 = seq.parse().map_err(|_| bad())?;
        let len: usize = len.parse().map_err(|_| bad())?;
        Ok((kind, seq, len))
    }

    #[cfg(test)]
    mod tests {
        use super::parse_v2_status;

        #[test]
        fn status_lines_parse() {
            assert_eq!(parse_v2_status("+7 12").unwrap(), (b'+', 7, 12));
            assert_eq!(parse_v2_status("-3 0").unwrap(), (b'-', 3, 0));
            assert_eq!(parse_v2_status("*19 65536").unwrap(), (b'*', 19, 65536));
            for bad in ["", "+", "+x 3", "+3", "+3 x", "?3 4", "+3  4 5x"] {
                assert!(parse_v2_status(bad).is_err(), "{bad:?} should not parse");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_salt_zero_is_identity() {
        let mut plain = RetryPolicy::new(5, Duration::from_millis(10), 42);
        let mut salted = RetryPolicy::new(5, Duration::from_millis(10), 42);
        for attempt in 0..4 {
            assert_eq!(plain.backoff(attempt), salted.backoff_salted(attempt, 0));
        }
    }

    #[test]
    fn backoff_salts_diverge_but_stay_deterministic() {
        // Same seed, different shard salts: the schedules must differ
        // (that is the point of salting) yet each schedule must be
        // reproducible from (seed, salt).
        let schedule = |salt: u64| -> Vec<Duration> {
            let mut p = RetryPolicy::new(8, Duration::from_millis(10), 7);
            (0..6).map(|a| p.backoff_salted(a, salt)).collect()
        };
        assert_eq!(schedule(1), schedule(1), "salted schedule must be stable");
        assert_ne!(schedule(1), schedule(2), "different salts must decorrelate");
        assert_ne!(schedule(0), schedule(3));
    }

    #[test]
    fn busy_shard_salt_parses_router_message() {
        assert_eq!(
            busy_shard_salt("executor queue full after 250 ms (shard=3); retry with backoff"),
            3
        );
        assert_eq!(
            busy_shard_salt("executor queue full; retry with backoff"),
            0
        );
        assert_eq!(busy_shard_salt("shard=17"), 17);
        assert_eq!(busy_shard_salt("shard=x"), 0);
    }
}
