//! A blocking client for the elephant wire protocol.
//!
//! [`ElephantClient`] speaks exactly the protocol in [`crate::protocol`]:
//! simple-line frames when the command fits on one line, length-prefixed
//! otherwise, and length-prefixed `+`/`-` responses either way. Response
//! bodies come back verbatim (`query_raw` returns the CSV bytes exactly as
//! the server produced them), which is what the integration tests compare
//! byte-for-byte against the embedded engine.

use crate::protocol::{codes, encode_request};
use etypes::Prng;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::thread;
use std::time::Duration;

/// Default response timeout used by [`ElephantClient::connect`].
const DEFAULT_RESPONSE_TIMEOUT: Duration = Duration::from_secs(30);

/// A structured error response from the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerError {
    /// Machine-readable code (`ERR_EXEC`, `ERR_OVERSIZED`, ...).
    pub code: String,
    /// Human-readable message.
    pub message: String,
}

impl ServerError {
    /// True for transient conditions worth retrying with backoff:
    /// `ERR_BUSY` (admission control refused the command) and
    /// `ERR_TIMEOUT` (the statement was cancelled by the server's
    /// statement timeout). Execution errors, read-only degradation, and
    /// protocol errors are deterministic — retrying them verbatim cannot
    /// succeed, so they are not retryable.
    pub fn is_retryable(&self) -> bool {
        self.code == codes::BUSY || self.code == codes::TIMEOUT
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code, self.message)
    }
}

/// Client-side failure: transport trouble or a server error response.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or the response was unparsable.
    Io(io::Error),
    /// The server answered with a structured error.
    Server(ServerError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// True when the failure is a retryable server response (see
    /// [`ServerError::is_retryable`]); transport errors are not retried by
    /// [`ElephantClient::send_with_retry`] because the connection state is
    /// unknown.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ClientError::Server(e) if e.is_retryable())
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

/// Seeded, jittered exponential backoff for retrying transient server
/// errors (`ERR_BUSY`, `ERR_TIMEOUT`).
///
/// Attempt `k` (0-based) sleeps a uniformly random duration in
/// `[0, min(cap, base * 2^k))` — "full jitter", which decorrelates
/// competing clients hammering a saturated server. The jitter stream is
/// seeded, so a fixed seed gives a reproducible retry schedule (the chaos
/// harness depends on this).
#[derive(Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` means "never retry").
    pub attempts: u32,
    /// Backoff base; attempt `k` draws from `[0, base * 2^k)`.
    pub base: Duration,
    /// Ceiling on a single sleep.
    pub cap: Duration,
    prng: Prng,
}

impl RetryPolicy {
    /// A policy with `attempts` total tries, backoff base `base`, a 1 s
    /// sleep cap, and jitter seeded by `seed`.
    pub fn new(attempts: u32, base: Duration, seed: u64) -> RetryPolicy {
        RetryPolicy {
            attempts: attempts.max(1),
            base,
            cap: Duration::from_secs(1),
            prng: Prng::new(seed),
        }
    }

    /// The sleep before retry number `attempt` (0-based count of failures
    /// so far): uniform in `[0, min(cap, base * 2^attempt))`.
    pub fn backoff(&mut self, attempt: u32) -> Duration {
        let exp = self.base.saturating_mul(1u32 << attempt.min(16));
        let ceiling = exp.min(self.cap).as_micros() as u64;
        if ceiling == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.prng.next_u64() % ceiling)
    }
}

/// One connection to an elephant server.
pub struct ElephantClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl ElephantClient {
    /// Connect to `addr` with the default 30 s response timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ElephantClient> {
        ElephantClient::with_timeout(addr, Some(DEFAULT_RESPONSE_TIMEOUT))
    }

    /// Connect to `addr` with an explicit response timeout; `None` waits
    /// indefinitely. A response slower than the timeout surfaces as
    /// [`ClientError::Io`] with kind `WouldBlock`/`TimedOut`.
    pub fn with_timeout(
        addr: impl ToSocketAddrs,
        timeout: Option<Duration>,
    ) -> io::Result<ElephantClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(timeout)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ElephantClient {
            writer: stream,
            reader,
        })
    }

    /// Send one raw command frame and return the raw response body.
    pub fn send(&mut self, command: &str) -> ClientResult<String> {
        self.writer.write_all(encode_request(command).as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// [`send`](ElephantClient::send), retried under `policy` while the
    /// server answers with a retryable error (`ERR_BUSY`, `ERR_TIMEOUT`).
    /// Deterministic failures — execution errors, `ERR_READ_ONLY`,
    /// protocol errors — and transport errors return immediately.
    pub fn send_with_retry(
        &mut self,
        command: &str,
        policy: &mut RetryPolicy,
    ) -> ClientResult<String> {
        let mut attempt = 0u32;
        loop {
            match self.send(command) {
                Err(e) if e.is_retryable() && attempt + 1 < policy.attempts => {
                    let sleep = policy.backoff(attempt);
                    attempt += 1;
                    if !sleep.is_zero() {
                        thread::sleep(sleep);
                    }
                }
                other => return other,
            }
        }
    }

    /// Run a SQL statement; returns CSV for SELECTs, `ok <n>` otherwise.
    /// The body is returned byte-for-byte as the server produced it.
    pub fn query_raw(&mut self, sql: &str) -> ClientResult<String> {
        self.send(&format!("QUERY {sql}"))
    }

    /// Plan + cache `sql` under `name` (scoped to this connection).
    pub fn prepare(&mut self, name: &str, sql: &str) -> ClientResult<String> {
        self.send(&format!("PREPARE {name} {sql}"))
    }

    /// Execute a statement prepared on this connection; returns CSV.
    pub fn execute(&mut self, name: &str) -> ClientResult<String> {
        self.send(&format!("EXECUTE {name}"))
    }

    /// Drop a prepared statement.
    pub fn deallocate(&mut self, name: &str) -> ClientResult<String> {
        self.send(&format!("DEALLOCATE {name}"))
    }

    /// Render the optimized plan for `sql`.
    pub fn explain(&mut self, sql: &str) -> ClientResult<String> {
        self.send(&format!("EXPLAIN {sql}"))
    }

    /// Execute the query and return the plan annotated with per-operator
    /// runtime row counts and timings.
    pub fn explain_analyze(&mut self, sql: &str) -> ClientResult<String> {
        self.send(&format!("EXPLAIN ANALYZE {sql}"))
    }

    /// The most recent `n` finished-command spans (server default when
    /// `None`), newest first.
    pub fn trace(&mut self, n: Option<usize>) -> ClientResult<String> {
        match n {
            Some(n) => self.send(&format!("TRACE {n}")),
            None => self.send("TRACE"),
        }
    }

    /// Inspect an ML pipeline via the SQL backend; returns the per-check,
    /// per-operator verdict report.
    pub fn inspect(
        &mut self,
        columns: &[&str],
        threshold: f64,
        source: &str,
    ) -> ClientResult<String> {
        self.send(&format!(
            "INSPECT {} {threshold}\n{source}",
            columns.join(",")
        ))
    }

    /// Fetch server + engine counters as `key value` lines.
    pub fn stats(&mut self) -> ClientResult<String> {
        self.send("STATS")
    }

    /// Snapshot all tables and truncate the WAL; errors on volatile servers.
    pub fn checkpoint(&mut self) -> ClientResult<String> {
        self.send("CHECKPOINT")
    }

    /// Ask the server to drain; returns `draining`.
    pub fn shutdown(&mut self) -> ClientResult<String> {
        self.send("SHUTDOWN")
    }

    fn read_response(&mut self) -> ClientResult<String> {
        let mut status = String::new();
        loop {
            match self.reader.read_line(&mut status) {
                Ok(0) => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )))
                }
                Ok(_) if status.ends_with('\n') => break,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
        let status = status.trim_end();
        if status.is_empty() {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                "empty status line",
            )));
        }
        let (ok, len_text) = match status.split_at(1) {
            ("+", rest) => (true, rest),
            ("-", rest) => (false, rest),
            _ => {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line '{status}'"),
                )))
            }
        };
        let n: usize = len_text.parse().map_err(|_| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad response length '{len_text}'"),
            ))
        })?;
        let mut body = vec![0u8; n + 1];
        self.reader.read_exact(&mut body)?;
        body.pop(); // trailing newline
        let body = String::from_utf8(body).map_err(|_| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                "response body is not UTF-8",
            ))
        })?;
        if ok {
            Ok(body)
        } else {
            let (code, message) = body.split_once(' ').unwrap_or((body.as_str(), ""));
            Err(ClientError::Server(ServerError {
                code: code.to_string(),
                message: message.to_string(),
            }))
        }
    }
}
