//! Lock-free server metrics: per-verb counters and latency histograms, a
//! queue-depth gauge and a log2-bucketed latency histogram with percentile
//! estimation.
//!
//! Everything is atomics so sessions and the executor update without
//! contention; `STATS` renders a snapshot as `key value` lines. Bucket
//! edges are shared with the engine's phase histograms via
//! [`etypes::bucket_index`].

use sqlengine::PlanCacheStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BUCKETS: usize = etypes::HIST_BUCKETS;

/// Histogram over microsecond latencies with power-of-two bucket edges:
/// bucket `i` holds samples in `[2^i, 2^(i+1))` µs, and bucket 0 holds
/// everything below 2 µs — sub-microsecond samples included.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one sample.
    pub fn record(&self, elapsed: Duration) {
        let us = elapsed.as_micros() as u64;
        self.buckets[etypes::bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Upper bucket edge (µs) below which at least `p` (in `[0,1]`) of the
    /// samples fall; 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * p.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        1u64 << BUCKETS
    }
}

/// Verbs with their own counter and latency histogram, plus `OTHER` for
/// everything else (SHUTDOWN, DEALLOCATE) so `commands_served` reconciles.
const VERBS: [&str; 12] = [
    "QUERY",
    "PREPARE",
    "EXECUTE",
    "EXPLAIN",
    "INSPECT",
    "SET",
    "STATS",
    "CHECKPOINT",
    "TRACE",
    "REPLICA",
    "LAG",
    "OTHER",
];

fn verb_index(verb: &str) -> usize {
    VERBS
        .iter()
        .position(|v| *v == verb)
        .unwrap_or(VERBS.len() - 1)
}

/// Shared server counters; one instance per server, updated everywhere.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Commands answered successfully, by verb.
    pub queries: AtomicU64,
    /// PREPARE commands served.
    pub prepares: AtomicU64,
    /// EXECUTE commands served.
    pub executes: AtomicU64,
    /// EXPLAIN commands served.
    pub explains: AtomicU64,
    /// INSPECT commands served.
    pub inspects: AtomicU64,
    /// SET commands served.
    pub set_calls: AtomicU64,
    /// STATS commands served.
    pub stats_calls: AtomicU64,
    /// CHECKPOINT commands served.
    pub checkpoints: AtomicU64,
    /// TRACE commands served.
    pub traces: AtomicU64,
    /// REPLICA commands served.
    pub replica_calls: AtomicU64,
    /// LAG commands served.
    pub lag_calls: AtomicU64,
    /// Commands served by verbs without their own counter (SHUTDOWN,
    /// DEALLOCATE), so `commands_served` reconciles with reality.
    pub other_commands: AtomicU64,
    /// Error responses produced before execution (framing, oversized,
    /// unknown verb, draining).
    pub protocol_errors: AtomicU64,
    /// Error responses produced by command execution.
    pub exec_errors: AtomicU64,
    /// Connections accepted over the server's lifetime.
    pub sessions_opened: AtomicU64,
    /// Connections fully closed.
    pub sessions_closed: AtomicU64,
    /// Jobs currently queued for (or running on) the executor.
    pub queue_depth: AtomicU64,
    /// Commands refused with `ERR_BUSY` because the executor queue stayed
    /// full past the admission wait.
    pub busy_rejections: AtomicU64,
    /// Statements cancelled by the per-statement timeout.
    pub statements_timed_out: AtomicU64,
    /// End-to-end executor latency per job, all verbs combined.
    pub latency: LatencyHistogram,
    /// Executor latency per verb (same order as the verb counters, with the
    /// last slot collecting the `OTHER` verbs).
    verb_latency: [LatencyHistogram; VERBS.len()],
}

impl Metrics {
    /// Count one served command for `verb` (post-success).
    pub fn count_verb(&self, verb: &str) {
        let c = match verb {
            "QUERY" => &self.queries,
            "PREPARE" => &self.prepares,
            "EXECUTE" => &self.executes,
            "EXPLAIN" => &self.explains,
            "INSPECT" => &self.inspects,
            "SET" => &self.set_calls,
            "STATS" => &self.stats_calls,
            "CHECKPOINT" => &self.checkpoints,
            "TRACE" => &self.traces,
            "REPLICA" => &self.replica_calls,
            "LAG" => &self.lag_calls,
            _ => &self.other_commands,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one job's end-to-end latency under its verb (and the
    /// all-verbs histogram).
    pub fn record_latency(&self, verb: &str, elapsed: Duration) {
        self.latency.record(elapsed);
        self.verb_latency[verb_index(verb)].record(elapsed);
    }

    /// The per-verb latency histogram (tests, rendering).
    pub fn verb_latency(&self, verb: &str) -> &LatencyHistogram {
        &self.verb_latency[verb_index(verb)]
    }

    /// Total error responses (protocol + execution).
    pub fn total_errors(&self) -> u64 {
        self.protocol_errors.load(Ordering::Relaxed) + self.exec_errors.load(Ordering::Relaxed)
    }

    /// Total commands served across all verbs.
    pub fn total_served(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
            + self.prepares.load(Ordering::Relaxed)
            + self.executes.load(Ordering::Relaxed)
            + self.explains.load(Ordering::Relaxed)
            + self.inspects.load(Ordering::Relaxed)
            + self.set_calls.load(Ordering::Relaxed)
            + self.stats_calls.load(Ordering::Relaxed)
            + self.checkpoints.load(Ordering::Relaxed)
            + self.traces.load(Ordering::Relaxed)
            + self.replica_calls.load(Ordering::Relaxed)
            + self.lag_calls.load(Ordering::Relaxed)
            + self.other_commands.load(Ordering::Relaxed)
    }

    /// Render the `STATS` body: one `key value` pair per line.
    pub fn render(&self, plan: PlanCacheStats, plan_entries: usize, prepared: usize) -> String {
        let o = Ordering::Relaxed;
        let opened = self.sessions_opened.load(o);
        let closed = self.sessions_closed.load(o);
        let mut s = String::new();
        let mut line = |k: &str, v: String| {
            s.push_str(k);
            s.push(' ');
            s.push_str(&v);
            s.push('\n');
        };
        line("commands_served", self.total_served().to_string());
        line("queries", self.queries.load(o).to_string());
        line("prepares", self.prepares.load(o).to_string());
        line("executes", self.executes.load(o).to_string());
        line("explains", self.explains.load(o).to_string());
        line("inspects", self.inspects.load(o).to_string());
        line("set_calls", self.set_calls.load(o).to_string());
        line("stats_calls", self.stats_calls.load(o).to_string());
        line("checkpoints_served", self.checkpoints.load(o).to_string());
        line("traces", self.traces.load(o).to_string());
        line("replica_calls", self.replica_calls.load(o).to_string());
        line("lag_calls", self.lag_calls.load(o).to_string());
        line("other_commands", self.other_commands.load(o).to_string());
        line("errors", self.total_errors().to_string());
        line("protocol_errors", self.protocol_errors.load(o).to_string());
        line("exec_errors", self.exec_errors.load(o).to_string());
        line("sessions_opened", opened.to_string());
        line("sessions_open", opened.saturating_sub(closed).to_string());
        line("queue_depth", self.queue_depth.load(o).to_string());
        line("busy_rejections", self.busy_rejections.load(o).to_string());
        line(
            "statements_timed_out",
            self.statements_timed_out.load(o).to_string(),
        );
        line("latency_count", self.latency.count().to_string());
        line("latency_p50_us", self.latency.percentile(0.50).to_string());
        line("latency_p95_us", self.latency.percentile(0.95).to_string());
        line("latency_p99_us", self.latency.percentile(0.99).to_string());
        for (verb, hist) in VERBS.iter().zip(self.verb_latency.iter()) {
            if hist.count() == 0 {
                continue;
            }
            let verb = verb.to_ascii_lowercase();
            line(&format!("latency_{verb}_count"), hist.count().to_string());
            line(
                &format!("latency_{verb}_p50_us"),
                hist.percentile(0.50).to_string(),
            );
            line(
                &format!("latency_{verb}_p95_us"),
                hist.percentile(0.95).to_string(),
            );
        }
        line("plan_cache_entries", plan_entries.to_string());
        line("plan_cache_hits", plan.hits.to_string());
        line("plan_cache_misses", plan.misses.to_string());
        line("plan_cache_evictions", plan.evictions.to_string());
        line("plan_cache_invalidations", plan.invalidations.to_string());
        line("plan_cache_hit_rate", format!("{:.4}", plan.hit_rate()));
        line("prepared_statements", prepared.to_string());
        s.pop();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_are_ordered() {
        let h = LatencyHistogram::default();
        for us in [1u64, 10, 100, 1000, 10_000] {
            for _ in 0..20 {
                h.record(Duration::from_micros(us));
            }
        }
        assert_eq!(h.count(), 100);
        let p50 = h.percentile(0.50);
        let p95 = h.percentile(0.95);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p50 >= 100, "median bucket should cover 100us, got {p50}");
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.percentile(0.99), 0);
    }

    #[test]
    fn sub_microsecond_samples_land_in_bucket_zero() {
        // Regression: `64 - leading_zeros(1)` put 1µs samples in bucket 1,
        // reporting every percentile one bucket (2×) too high.
        let h = LatencyHistogram::default();
        h.record(Duration::from_nanos(100)); // rounds to 0µs
        h.record(Duration::from_micros(1));
        assert_eq!(h.count(), 2);
        // Both samples sit in bucket 0, whose upper edge is 2µs.
        assert_eq!(h.percentile(1.0), 2);
    }

    #[test]
    fn render_contains_all_keys() {
        let m = Metrics::default();
        m.count_verb("QUERY");
        m.count_verb("STATS");
        let body = m.render(PlanCacheStats::default(), 0, 2);
        for key in [
            "commands_served 2",
            "queries 1",
            "plan_cache_hit_rate 0.0000",
            "prepared_statements 2",
            "latency_p99_us 0",
            "other_commands 0",
            "protocol_errors 0",
            "exec_errors 0",
            "busy_rejections 0",
            "statements_timed_out 0",
        ] {
            assert!(body.contains(key), "missing '{key}' in:\n{body}");
        }
    }

    #[test]
    fn shutdown_and_deallocate_reconcile_into_totals() {
        let m = Metrics::default();
        m.count_verb("QUERY");
        m.count_verb("SHUTDOWN");
        m.count_verb("DEALLOCATE");
        m.count_verb("TRACE");
        assert_eq!(m.total_served(), 4);
        assert_eq!(m.other_commands.load(Ordering::Relaxed), 2);
        let body = m.render(PlanCacheStats::default(), 0, 0);
        assert!(body.contains("commands_served 4"), "{body}");
        assert!(body.contains("other_commands 2"), "{body}");
        assert!(body.contains("traces 1"), "{body}");
    }

    #[test]
    fn per_verb_latency_renders_only_active_verbs() {
        let m = Metrics::default();
        m.record_latency("QUERY", Duration::from_micros(50));
        m.record_latency("SHUTDOWN", Duration::from_micros(10));
        assert_eq!(m.latency.count(), 2);
        assert_eq!(m.verb_latency("QUERY").count(), 1);
        assert_eq!(m.verb_latency("SHUTDOWN").count(), 1); // folded into OTHER
        let body = m.render(PlanCacheStats::default(), 0, 0);
        assert!(body.contains("latency_query_count 1"), "{body}");
        assert!(body.contains("latency_query_p95_us"), "{body}");
        assert!(body.contains("latency_other_count 1"), "{body}");
        assert!(!body.contains("latency_prepare_count"), "{body}");
    }
}
