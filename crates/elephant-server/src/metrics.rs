//! Lock-free server metrics and the typed metrics registry.
//!
//! Everything is atomics so sessions and the executor update without
//! contention. Bucket edges are shared with the engine's phase histograms
//! via [`etypes::bucket_index`].
//!
//! Both observability surfaces render from the **same** typed samples: a
//! [`Metric`] carries its `STATS` key, its Prometheus name + labels, and a
//! typed [`MetricValue`]. [`render_stats_text`] produces the line-oriented
//! `STATS` body; [`render_prometheus`] produces the text exposition format
//! (0.0.4) served on `GET /metrics`, with histograms as cumulative
//! `_bucket{le=...}` series. One collection, two renderings — the surfaces
//! cannot drift.

use sqlengine::PlanCacheStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant, SystemTime};

const BUCKETS: usize = etypes::HIST_BUCKETS;

/// Histogram over microsecond latencies with power-of-two bucket edges:
/// bucket `i` holds samples in `[2^i, 2^(i+1))` µs, and bucket 0 holds
/// everything below 2 µs — sub-microsecond samples included.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one sample.
    pub fn record(&self, elapsed: Duration) {
        let us = elapsed.as_micros() as u64;
        self.buckets[etypes::bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples in microseconds.
    pub fn total_us(&self) -> u64 {
        self.total_us.load(Ordering::Relaxed)
    }

    /// Upper bucket edge (µs) below which at least `p` (in `[0,1]`) of the
    /// samples fall; 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * p.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        1u64 << BUCKETS
    }

    /// A point-in-time copy of the buckets for the registry.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            total_us: self.total_us(),
            percentiles: PCT_P50_P95,
            emit_total: false,
            skip_if_empty: false,
        }
    }
}

/// Percentile suffixes rendered for the all-verbs latency histogram.
pub const PCT_P50_P95_P99: &[(&str, f64)] = &[("p50_us", 0.50), ("p95_us", 0.95), ("p99_us", 0.99)];

/// Percentile suffixes rendered for per-verb and per-phase histograms.
pub const PCT_P50_P95: &[(&str, f64)] = &[("p50_us", 0.50), ("p95_us", 0.95)];

/// A point-in-time histogram copy with its rendering policy.
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    /// Per-bucket counts, log2 edges shared with [`etypes::bucket_index`].
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples in microseconds (the Prometheus `_sum`).
    pub total_us: u64,
    /// `(suffix, p)` pairs rendered as `<key>_<suffix>` percentile lines.
    pub percentiles: &'static [(&'static str, f64)],
    /// Render a `<key>_total_us` STATS line (phase histograms do).
    pub emit_total: bool,
    /// Omit from STATS entirely while empty (per-verb and phase histograms).
    pub skip_if_empty: bool,
}

impl HistSnapshot {
    /// Build from an engine-side (single-threaded) histogram.
    pub fn from_histogram(h: &etypes::Histogram) -> HistSnapshot {
        HistSnapshot {
            buckets: h.buckets().to_vec(),
            count: h.count(),
            total_us: h.total_us(),
            percentiles: PCT_P50_P95,
            emit_total: false,
            skip_if_empty: false,
        }
    }

    /// Upper bucket edge (µs) covering fraction `p` of the samples.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * p.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        1u64 << BUCKETS
    }
}

/// The typed value of one metric sample.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Monotonically increasing count.
    Counter(u64),
    /// Point-in-time integer value.
    Gauge(u64),
    /// Point-in-time float rendered with a fixed number of decimals.
    GaugeF {
        /// The value.
        value: f64,
        /// Decimals in the STATS rendering (`{:.d$}`).
        decimals: usize,
    },
    /// Non-numeric state (health, exec mode, build version). Rendered as
    /// `key value` in STATS and as an `_info`-style gauge on /metrics.
    Text(String),
    /// A latency histogram (cumulative buckets on /metrics; count +
    /// percentile lines in STATS).
    Histogram(HistSnapshot),
}

/// One named sample in the registry: the single source of truth both the
/// `STATS` body and the Prometheus exposition render from.
#[derive(Debug, Clone)]
pub struct Metric {
    /// The `STATS` key (base key for histograms).
    pub key: String,
    /// Prometheus metric name without the `elephant_` prefix.
    pub name: String,
    /// Prometheus labels (`shard`, `table`, ...).
    pub labels: Vec<(&'static str, String)>,
    /// The sample.
    pub value: MetricValue,
}

impl Metric {
    /// A counter whose Prometheus name equals its STATS key.
    pub fn counter(key: impl Into<String>, v: u64) -> Metric {
        let key = key.into();
        Metric {
            name: key.clone(),
            key,
            labels: Vec::new(),
            value: MetricValue::Counter(v),
        }
    }

    /// A gauge whose Prometheus name equals its STATS key.
    pub fn gauge(key: impl Into<String>, v: u64) -> Metric {
        let key = key.into();
        Metric {
            name: key.clone(),
            key,
            labels: Vec::new(),
            value: MetricValue::Gauge(v),
        }
    }

    /// A fixed-decimals float gauge.
    pub fn gaugef(key: impl Into<String>, value: f64, decimals: usize) -> Metric {
        let key = key.into();
        Metric {
            name: key.clone(),
            key,
            labels: Vec::new(),
            value: MetricValue::GaugeF { value, decimals },
        }
    }

    /// A text sample.
    pub fn text(key: impl Into<String>, v: impl Into<String>) -> Metric {
        let key = key.into();
        Metric {
            name: key.clone(),
            key,
            labels: Vec::new(),
            value: MetricValue::Text(v.into()),
        }
    }

    /// A histogram sample.
    pub fn hist(key: impl Into<String>, snap: HistSnapshot) -> Metric {
        let key = key.into();
        Metric {
            name: key.clone(),
            key,
            labels: Vec::new(),
            value: MetricValue::Histogram(snap),
        }
    }

    /// Override the Prometheus name (when the STATS key embeds an id, e.g.
    /// `shard0.commands` → `shard_commands{shard="0"}`).
    pub fn named(mut self, name: impl Into<String>) -> Metric {
        self.name = name.into();
        self
    }

    /// Attach one Prometheus label.
    pub fn label(mut self, k: &'static str, v: impl Into<String>) -> Metric {
        self.labels.push((k, v.into()));
        self
    }
}

/// Render samples as the line-oriented `STATS` body (no trailing newline).
pub fn render_stats_text(metrics: &[Metric]) -> String {
    let mut s = String::new();
    let mut line = |k: &str, v: &str| {
        s.push_str(k);
        s.push(' ');
        s.push_str(v);
        s.push('\n');
    };
    for m in metrics {
        match &m.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => line(&m.key, &v.to_string()),
            MetricValue::GaugeF { value, decimals } => line(&m.key, &format!("{value:.decimals$}")),
            MetricValue::Text(v) => line(&m.key, v),
            MetricValue::Histogram(h) => {
                if h.skip_if_empty && h.count == 0 {
                    continue;
                }
                line(&format!("{}_count", m.key), &h.count.to_string());
                if h.emit_total {
                    line(&format!("{}_total_us", m.key), &h.total_us.to_string());
                }
                for (suffix, p) in h.percentiles {
                    line(
                        &format!("{}_{suffix}", m.key),
                        &h.percentile(*p).to_string(),
                    );
                }
            }
        }
    }
    s.pop();
    s
}

/// Escape a Prometheus label value (`\`, `"`, newline).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Render `{k="v",...}` (empty string when there are no labels).
fn render_labels(labels: &[(&'static str, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

/// Render samples in the Prometheus text exposition format (0.0.4). Every
/// name is prefixed `elephant_`; histograms become cumulative
/// `_bucket{le=...}` series plus `_sum`/`_count`, with the configured
/// percentile estimates exported as companion gauges. Text samples become
/// `<name>_info{value="..."} 1` gauges.
///
/// The exposition format requires all samples of a metric family to be
/// contiguous. Per-shard collections repeat names with different labels,
/// so samples are grouped by family (first-seen order) before rendering.
pub fn render_prometheus(metrics: &[Metric]) -> String {
    use std::collections::HashMap;
    use std::fmt::Write as _;
    // family name → (type kind, sample lines), in first-seen family order.
    let mut order: Vec<String> = Vec::new();
    let mut families: HashMap<String, (&'static str, Vec<String>)> = HashMap::new();
    let mut push = |name: &str, kind: &'static str, line: String| {
        if !families.contains_key(name) {
            order.push(name.to_string());
            families.insert(name.to_string(), (kind, Vec::new()));
        }
        families.get_mut(name).expect("family exists").1.push(line);
    };
    for m in metrics {
        let labels = render_labels(&m.labels);
        match &m.value {
            MetricValue::Counter(v) => {
                push(
                    &m.name,
                    "counter",
                    format!("elephant_{}{labels} {v}", m.name),
                );
            }
            MetricValue::Gauge(v) => {
                push(&m.name, "gauge", format!("elephant_{}{labels} {v}", m.name));
            }
            MetricValue::GaugeF { value, decimals } => {
                push(
                    &m.name,
                    "gauge",
                    format!("elephant_{}{labels} {value:.decimals$}", m.name),
                );
            }
            MetricValue::Text(v) => {
                let info = format!("{}_info", m.name);
                let mut labels = m.labels.clone();
                labels.push(("value", v.clone()));
                let line = format!("elephant_{info}{} 1", render_labels(&labels));
                push(&info, "gauge", line);
            }
            MetricValue::Histogram(h) => {
                let last_nonzero = h.buckets.iter().rposition(|b| *b > 0).unwrap_or(0);
                let mut cumulative = 0u64;
                for (i, b) in h.buckets.iter().enumerate().take(last_nonzero + 1) {
                    cumulative += b;
                    let mut labels = m.labels.clone();
                    labels.push(("le", (1u64 << (i + 1)).to_string()));
                    push(
                        &m.name,
                        "histogram",
                        format!(
                            "elephant_{}_bucket{} {cumulative}",
                            m.name,
                            render_labels(&labels)
                        ),
                    );
                }
                let mut inf = m.labels.clone();
                inf.push(("le", "+Inf".to_string()));
                push(
                    &m.name,
                    "histogram",
                    format!(
                        "elephant_{}_bucket{} {}",
                        m.name,
                        render_labels(&inf),
                        h.count
                    ),
                );
                push(
                    &m.name,
                    "histogram",
                    format!("elephant_{}_sum{labels} {}", m.name, h.total_us),
                );
                push(
                    &m.name,
                    "histogram",
                    format!("elephant_{}_count{labels} {}", m.name, h.count),
                );
                for (suffix, p) in h.percentiles {
                    let pname = format!("{}_{suffix}", m.name);
                    let line = format!("elephant_{pname}{labels} {}", h.percentile(*p));
                    push(&pname, "gauge", line);
                }
            }
        }
    }
    let mut out = String::new();
    for name in order {
        let (kind, lines) = &families[&name];
        let _ = writeln!(out, "# TYPE elephant_{name} {kind}");
        for line in lines {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Verbs with their own counter and latency histogram, plus `OTHER` for
/// everything else (SHUTDOWN, DEALLOCATE) so `commands_served` reconciles.
const VERBS: [&str; 13] = [
    "QUERY",
    "BATCH",
    "PREPARE",
    "EXECUTE",
    "EXPLAIN",
    "INSPECT",
    "SET",
    "STATS",
    "CHECKPOINT",
    "TRACE",
    "REPLICA",
    "LAG",
    "OTHER",
];

fn verb_index(verb: &str) -> usize {
    VERBS
        .iter()
        .position(|v| *v == verb)
        .unwrap_or(VERBS.len() - 1)
}

/// Shared server counters; one instance per server, updated everywhere.
#[derive(Debug)]
pub struct Metrics {
    /// Commands answered successfully, by verb.
    pub queries: AtomicU64,
    /// BATCH commands served.
    pub batches: AtomicU64,
    /// PREPARE commands served.
    pub prepares: AtomicU64,
    /// EXECUTE commands served.
    pub executes: AtomicU64,
    /// EXPLAIN commands served.
    pub explains: AtomicU64,
    /// INSPECT commands served.
    pub inspects: AtomicU64,
    /// SET commands served.
    pub set_calls: AtomicU64,
    /// STATS commands served.
    pub stats_calls: AtomicU64,
    /// CHECKPOINT commands served.
    pub checkpoints: AtomicU64,
    /// TRACE commands served.
    pub traces: AtomicU64,
    /// REPLICA commands served.
    pub replica_calls: AtomicU64,
    /// LAG commands served.
    pub lag_calls: AtomicU64,
    /// Commands served by verbs without their own counter (SHUTDOWN,
    /// DEALLOCATE), so `commands_served` reconciles with reality.
    pub other_commands: AtomicU64,
    /// Error responses produced before execution (framing, oversized,
    /// unknown verb, draining).
    pub protocol_errors: AtomicU64,
    /// Error responses produced by command execution.
    pub exec_errors: AtomicU64,
    /// Connections accepted over the server's lifetime.
    pub sessions_opened: AtomicU64,
    /// Connections fully closed.
    pub sessions_closed: AtomicU64,
    /// Jobs currently queued for (or running on) the executor.
    pub queue_depth: AtomicU64,
    /// Commands refused with `ERR_BUSY` because the executor queue stayed
    /// full past the admission wait.
    pub busy_rejections: AtomicU64,
    /// Statements cancelled by the per-statement timeout.
    pub statements_timed_out: AtomicU64,
    /// `GET /metrics` scrapes served (counted into the scrape itself).
    pub metrics_scrapes: AtomicU64,
    /// Frames read while a previous response was still unwritten — the
    /// client pipelined them (v2 wire sessions only).
    pub pipelined_frames: AtomicU64,
    /// Individual statements executed inside `BATCH` frames.
    pub batch_statements: AtomicU64,
    /// Parameter values bound to `$n` placeholders by `EXECUTE name (...)`.
    pub params_bound: AtomicU64,
    /// Result chunks streamed to v2 clients.
    pub chunks_streamed: AtomicU64,
    /// Result bytes currently buffered for streaming, across sessions.
    pub result_buffer_bytes: AtomicU64,
    /// High-water mark of `result_buffer_bytes` since the server started.
    pub result_buffer_peak_bytes: AtomicU64,
    /// End-to-end executor latency per job, all verbs combined.
    pub latency: LatencyHistogram,
    /// Executor latency per verb (same order as the verb counters, with the
    /// last slot collecting the `OTHER` verbs).
    verb_latency: [LatencyHistogram; VERBS.len()],
    /// Process start instant (drives `uptime_s`).
    started: Instant,
    /// Unix seconds when this server started.
    started_at_unix: u64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            queries: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            prepares: AtomicU64::new(0),
            executes: AtomicU64::new(0),
            explains: AtomicU64::new(0),
            inspects: AtomicU64::new(0),
            set_calls: AtomicU64::new(0),
            stats_calls: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            traces: AtomicU64::new(0),
            replica_calls: AtomicU64::new(0),
            lag_calls: AtomicU64::new(0),
            other_commands: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            exec_errors: AtomicU64::new(0),
            sessions_opened: AtomicU64::new(0),
            sessions_closed: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            statements_timed_out: AtomicU64::new(0),
            metrics_scrapes: AtomicU64::new(0),
            pipelined_frames: AtomicU64::new(0),
            batch_statements: AtomicU64::new(0),
            params_bound: AtomicU64::new(0),
            chunks_streamed: AtomicU64::new(0),
            result_buffer_bytes: AtomicU64::new(0),
            result_buffer_peak_bytes: AtomicU64::new(0),
            latency: LatencyHistogram::default(),
            verb_latency: std::array::from_fn(|_| LatencyHistogram::default()),
            started: Instant::now(),
            started_at_unix: SystemTime::now()
                .duration_since(SystemTime::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
        }
    }
}

impl Metrics {
    /// Count one served command for `verb` (post-success).
    pub fn count_verb(&self, verb: &str) {
        let c = match verb {
            "QUERY" => &self.queries,
            "BATCH" => &self.batches,
            "PREPARE" => &self.prepares,
            "EXECUTE" => &self.executes,
            "EXPLAIN" => &self.explains,
            "INSPECT" => &self.inspects,
            "SET" => &self.set_calls,
            "STATS" => &self.stats_calls,
            "CHECKPOINT" => &self.checkpoints,
            "TRACE" => &self.traces,
            "REPLICA" => &self.replica_calls,
            "LAG" => &self.lag_calls,
            _ => &self.other_commands,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Track `n` more result bytes buffered for streaming and refresh the
    /// high-water mark.
    pub fn result_buffer_grow(&self, n: u64) {
        let now = self.result_buffer_bytes.fetch_add(n, Ordering::Relaxed) + n;
        self.result_buffer_peak_bytes
            .fetch_max(now, Ordering::Relaxed);
    }

    /// Release `n` buffered result bytes once they reach the socket.
    pub fn result_buffer_shrink(&self, n: u64) {
        self.result_buffer_bytes.fetch_sub(n, Ordering::Relaxed);
    }

    /// Record one job's end-to-end latency under its verb (and the
    /// all-verbs histogram).
    pub fn record_latency(&self, verb: &str, elapsed: Duration) {
        self.latency.record(elapsed);
        self.verb_latency[verb_index(verb)].record(elapsed);
    }

    /// The per-verb latency histogram (tests, rendering).
    pub fn verb_latency(&self, verb: &str) -> &LatencyHistogram {
        &self.verb_latency[verb_index(verb)]
    }

    /// Total error responses (protocol + execution).
    pub fn total_errors(&self) -> u64 {
        self.protocol_errors.load(Ordering::Relaxed) + self.exec_errors.load(Ordering::Relaxed)
    }

    /// Seconds since this server started.
    pub fn uptime_s(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Unix seconds when this server started.
    pub fn started_at_unix(&self) -> u64 {
        self.started_at_unix
    }

    /// Total commands served across all verbs.
    pub fn total_served(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
            + self.batches.load(Ordering::Relaxed)
            + self.prepares.load(Ordering::Relaxed)
            + self.executes.load(Ordering::Relaxed)
            + self.explains.load(Ordering::Relaxed)
            + self.inspects.load(Ordering::Relaxed)
            + self.set_calls.load(Ordering::Relaxed)
            + self.stats_calls.load(Ordering::Relaxed)
            + self.checkpoints.load(Ordering::Relaxed)
            + self.traces.load(Ordering::Relaxed)
            + self.replica_calls.load(Ordering::Relaxed)
            + self.lag_calls.load(Ordering::Relaxed)
            + self.other_commands.load(Ordering::Relaxed)
    }

    /// Collect the server-wide samples (everything `Metrics` itself owns:
    /// identity, verb counters, error counters, session gauges, latency
    /// histograms). Engine- and router-scoped samples are appended by their
    /// owners; all of them feed both `STATS` and `/metrics`.
    pub fn server_samples(&self) -> Vec<Metric> {
        let o = Ordering::Relaxed;
        let opened = self.sessions_opened.load(o);
        let closed = self.sessions_closed.load(o);
        let mut v: Vec<Metric> = Vec::with_capacity(48);
        v.push(Metric::gauge("uptime_s", self.uptime_s()));
        v.push(Metric::gauge("started_at_unix", self.started_at_unix));
        v.push(Metric::text("build_version", env!("CARGO_PKG_VERSION")).named("build"));
        v.push(Metric::counter("commands_served", self.total_served()));
        v.push(Metric::counter("queries", self.queries.load(o)));
        v.push(Metric::counter("batches", self.batches.load(o)));
        v.push(Metric::counter("prepares", self.prepares.load(o)));
        v.push(Metric::counter("executes", self.executes.load(o)));
        v.push(Metric::counter("explains", self.explains.load(o)));
        v.push(Metric::counter("inspects", self.inspects.load(o)));
        v.push(Metric::counter("set_calls", self.set_calls.load(o)));
        v.push(Metric::counter("stats_calls", self.stats_calls.load(o)));
        v.push(Metric::counter(
            "checkpoints_served",
            self.checkpoints.load(o),
        ));
        v.push(Metric::counter("traces", self.traces.load(o)));
        v.push(Metric::counter("replica_calls", self.replica_calls.load(o)));
        v.push(Metric::counter("lag_calls", self.lag_calls.load(o)));
        v.push(Metric::counter(
            "other_commands",
            self.other_commands.load(o),
        ));
        v.push(Metric::counter("errors", self.total_errors()));
        v.push(Metric::counter(
            "protocol_errors",
            self.protocol_errors.load(o),
        ));
        v.push(Metric::counter("exec_errors", self.exec_errors.load(o)));
        v.push(Metric::counter("sessions_opened", opened));
        v.push(Metric::gauge(
            "sessions_open",
            opened.saturating_sub(closed),
        ));
        v.push(Metric::gauge("queue_depth", self.queue_depth.load(o)));
        v.push(Metric::counter(
            "busy_rejections",
            self.busy_rejections.load(o),
        ));
        v.push(Metric::counter(
            "statements_timed_out",
            self.statements_timed_out.load(o),
        ));
        v.push(Metric::counter(
            "metrics_scrapes",
            self.metrics_scrapes.load(o),
        ));
        v.push(Metric::counter(
            "pipelined_frames",
            self.pipelined_frames.load(o),
        ));
        v.push(Metric::counter(
            "batch_statements",
            self.batch_statements.load(o),
        ));
        v.push(Metric::counter("params_bound", self.params_bound.load(o)));
        v.push(Metric::counter(
            "chunks_streamed",
            self.chunks_streamed.load(o),
        ));
        v.push(Metric::gauge(
            "result_buffer_bytes",
            self.result_buffer_bytes.load(o),
        ));
        v.push(Metric::gauge(
            "result_buffer_peak_bytes",
            self.result_buffer_peak_bytes.load(o),
        ));
        let mut all = self.latency.snapshot();
        all.percentiles = PCT_P50_P95_P99;
        v.push(Metric::hist("latency", all));
        for (verb, hist) in VERBS.iter().zip(self.verb_latency.iter()) {
            let mut snap = hist.snapshot();
            snap.skip_if_empty = true;
            let verb = verb.to_ascii_lowercase();
            v.push(Metric::hist(format!("latency_{verb}"), snap).label("verb", verb.clone()));
        }
        v
    }

    /// Samples for the engine's plan cache and prepared-statement count
    /// (engine-owned state, historically rendered with the server block).
    pub fn plan_samples(plan: PlanCacheStats, plan_entries: usize, prepared: usize) -> Vec<Metric> {
        vec![
            Metric::gauge("plan_cache_entries", plan_entries as u64),
            Metric::counter("plan_cache_hits", plan.hits),
            Metric::counter("plan_cache_misses", plan.misses),
            Metric::counter("plan_cache_evictions", plan.evictions),
            Metric::counter("plan_cache_invalidations", plan.invalidations),
            Metric::gaugef("plan_cache_hit_rate", plan.hit_rate(), 4),
            Metric::gauge("prepared_statements", prepared as u64),
        ]
    }

    /// Render the `STATS` body: one `key value` pair per line (the
    /// historical entry point; equivalent to rendering `server_samples` +
    /// `plan_samples`).
    pub fn render(&self, plan: PlanCacheStats, plan_entries: usize, prepared: usize) -> String {
        let mut samples = self.server_samples();
        samples.extend(Self::plan_samples(plan, plan_entries, prepared));
        render_stats_text(&samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_are_ordered() {
        let h = LatencyHistogram::default();
        for us in [1u64, 10, 100, 1000, 10_000] {
            for _ in 0..20 {
                h.record(Duration::from_micros(us));
            }
        }
        assert_eq!(h.count(), 100);
        let p50 = h.percentile(0.50);
        let p95 = h.percentile(0.95);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p50 >= 100, "median bucket should cover 100us, got {p50}");
        assert_eq!(h.total_us(), 20 * (1 + 10 + 100 + 1000 + 10_000));
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.percentile(0.99), 0);
    }

    #[test]
    fn sub_microsecond_samples_land_in_bucket_zero() {
        // Regression: `64 - leading_zeros(1)` put 1µs samples in bucket 1,
        // reporting every percentile one bucket (2×) too high.
        let h = LatencyHistogram::default();
        h.record(Duration::from_nanos(100)); // rounds to 0µs
        h.record(Duration::from_micros(1));
        assert_eq!(h.count(), 2);
        // Both samples sit in bucket 0, whose upper edge is 2µs.
        assert_eq!(h.percentile(1.0), 2);
    }

    #[test]
    fn render_contains_all_keys() {
        let m = Metrics::default();
        m.count_verb("QUERY");
        m.count_verb("STATS");
        let body = m.render(PlanCacheStats::default(), 0, 2);
        for key in [
            "commands_served 2",
            "queries 1",
            "plan_cache_hit_rate 0.0000",
            "prepared_statements 2",
            "latency_p99_us 0",
            "other_commands 0",
            "protocol_errors 0",
            "exec_errors 0",
            "busy_rejections 0",
            "statements_timed_out 0",
            "metrics_scrapes 0",
            "uptime_s ",
            "started_at_unix ",
            "build_version ",
        ] {
            assert!(body.contains(key), "missing '{key}' in:\n{body}");
        }
    }

    #[test]
    fn shutdown_and_deallocate_reconcile_into_totals() {
        let m = Metrics::default();
        m.count_verb("QUERY");
        m.count_verb("SHUTDOWN");
        m.count_verb("DEALLOCATE");
        m.count_verb("TRACE");
        assert_eq!(m.total_served(), 4);
        assert_eq!(m.other_commands.load(Ordering::Relaxed), 2);
        let body = m.render(PlanCacheStats::default(), 0, 0);
        assert!(body.contains("commands_served 4"), "{body}");
        assert!(body.contains("other_commands 2"), "{body}");
        assert!(body.contains("traces 1"), "{body}");
    }

    #[test]
    fn per_verb_latency_renders_only_active_verbs() {
        let m = Metrics::default();
        m.record_latency("QUERY", Duration::from_micros(50));
        m.record_latency("SHUTDOWN", Duration::from_micros(10));
        assert_eq!(m.latency.count(), 2);
        assert_eq!(m.verb_latency("QUERY").count(), 1);
        assert_eq!(m.verb_latency("SHUTDOWN").count(), 1); // folded into OTHER
        let body = m.render(PlanCacheStats::default(), 0, 0);
        assert!(body.contains("latency_query_count 1"), "{body}");
        assert!(body.contains("latency_query_p95_us"), "{body}");
        assert!(body.contains("latency_other_count 1"), "{body}");
        assert!(!body.contains("latency_prepare_count"), "{body}");
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let m = Metrics::default();
        m.count_verb("QUERY");
        m.record_latency("QUERY", Duration::from_micros(100));
        let samples = m.server_samples();
        let text = render_prometheus(&samples);
        assert!(text.contains("# TYPE elephant_queries counter"), "{text}");
        assert!(text.contains("elephant_queries 1"), "{text}");
        assert!(text.contains("# TYPE elephant_latency histogram"), "{text}");
        assert!(text.contains("elephant_latency_count 1"), "{text}");
        assert!(text.contains("elephant_latency_sum 100"), "{text}");
        assert!(
            text.contains("elephant_latency_bucket{le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("elephant_build_info{value=\"")
                || text.contains("elephant_build_info{value="),
            "{text}"
        );
        // One TYPE line per name, buckets cumulative.
        let type_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("# TYPE elephant_latency "))
            .collect();
        assert_eq!(type_lines.len(), 1, "{text}");
    }

    #[test]
    fn stats_text_and_prometheus_agree_on_values() {
        let m = Metrics::default();
        m.count_verb("QUERY");
        m.count_verb("QUERY");
        m.count_verb("STATS");
        let samples = m.server_samples();
        let stats = render_stats_text(&samples);
        let prom = render_prometheus(&samples);
        // Same collection: a counter must read identically on both surfaces.
        assert!(stats.contains("\nqueries 2"), "{stats}");
        assert!(prom.contains("\nelephant_queries 2\n"), "{prom}");
        assert!(stats.contains("\ncommands_served 3"), "{stats}");
        assert!(prom.contains("elephant_commands_served 3"), "{prom}");
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(1)); // bucket 0
        h.record(Duration::from_micros(3)); // bucket 1
        h.record(Duration::from_micros(100)); // bucket 6
        let m = Metric::hist("lat", h.snapshot());
        let text = render_prometheus(&[m]);
        assert!(text.contains("elephant_lat_bucket{le=\"2\"} 1"), "{text}");
        assert!(text.contains("elephant_lat_bucket{le=\"4\"} 2"), "{text}");
        assert!(text.contains("elephant_lat_bucket{le=\"128\"} 3"), "{text}");
        assert!(
            text.contains("elephant_lat_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("elephant_lat_count 3"), "{text}");
    }
}
