//! Per-connection session threads.
//!
//! A session owns one TCP connection: it reads frames, parses commands,
//! and submits them to the [`ShardRouter`], which owns admission control
//! and table-affine routing — sessions are shard-agnostic and the wire
//! protocol is unchanged by sharding. Protocol-level failures (unknown
//! verb, malformed or oversized frame) are answered with a structured
//! error and the connection stays open; only transport errors and a dead
//! executor end the session.
//!
//! Reads use a short socket timeout so an idle session notices the
//! shutdown flag: once the server is draining, idle connections are closed
//! instead of holding the drain hostage, while a command already submitted
//! still gets its response.

use crate::metrics::Metrics;
use crate::proto2;
use crate::protocol::{
    codes, parse_command, write_err, write_ok, Command, FrameError, FrameReader,
};
use crate::shard::ShardRouter;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Poll interval for noticing the shutdown flag while blocked on a read.
const READ_POLL: Duration = Duration::from_millis(100);

/// Run one connection to completion. Consumes the stream; returns when the
/// client disconnects, a transport error occurs, or the server drains.
pub(crate) fn run_session(
    stream: TcpStream,
    session_id: u64,
    router: Arc<ShardRouter>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    max_result_buffer: usize,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut frames = FrameReader::new();

    loop {
        let frame = match frames.read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => break, // clean disconnect
            Err(FrameError::Timeout) => {
                if shutdown.load(Ordering::SeqCst) {
                    break; // draining: drop idle connections
                }
                continue;
            }
            Err(FrameError::Oversized(n)) => {
                metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let msg = format!("frame of {n} bytes exceeds limit");
                if write_err(&mut writer, codes::OVERSIZED, &msg).is_err() {
                    break;
                }
                continue;
            }
            Err(FrameError::BadLength(what)) => {
                metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let msg = format!("bad length header '{what}'");
                if write_err(&mut writer, codes::PARSE, &msg).is_err() {
                    break;
                }
                continue;
            }
            Err(FrameError::Io(_)) => break, // mid-frame disconnect etc.
        };

        // Protocol negotiation: `HELLO v2` upgrades this connection to the
        // pipelined v2 wire (acknowledged on the v1 framing the client is
        // still speaking); any other HELLO is a typed refusal naming what
        // the server supports. Clients that never send HELLO stay on v1.
        if let Some(version) = frame
            .strip_prefix("HELLO ")
            .or_else(|| frame.strip_prefix("hello "))
        {
            if version.trim() == "v2" {
                if write_ok(&mut writer, "v2").is_err() {
                    break;
                }
                proto2::run_v2_session(
                    reader,
                    writer,
                    session_id,
                    router,
                    metrics,
                    shutdown,
                    max_result_buffer,
                );
                return; // v2 loop owns close_session
            }
            metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
            let msg = format!("unsupported protocol '{}' (supported: v2)", version.trim());
            if write_err(&mut writer, codes::PARSE, &msg).is_err() {
                break;
            }
            continue;
        }

        let command = match parse_command(&frame) {
            Ok(c) => c,
            Err((code, msg)) => {
                metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                if write_err(&mut writer, code, &msg).is_err() {
                    break;
                }
                continue;
            }
        };

        // Refuse new work while draining (SHUTDOWN and STATS stay allowed
        // so clients can observe the drain).
        if shutdown.load(Ordering::SeqCst) && !matches!(command, Command::Shutdown | Command::Stats)
        {
            metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
            if write_err(&mut writer, codes::DRAINING, "server is draining").is_err() {
                break;
            }
            continue;
        }

        match router.submit(session_id, command) {
            Ok(body) => {
                if write_ok(&mut writer, &body).is_err() {
                    break;
                }
            }
            Err((code, msg)) => {
                let fatal = code == codes::INTERNAL;
                if write_err(&mut writer, code, &msg).is_err() || fatal {
                    // INTERNAL means an executor is gone — only possible
                    // deep into shutdown; drop the connection.
                    break;
                }
            }
        }
    }

    // Best effort: free this session's prepared statements on every shard.
    router.close_session(session_id);
}
