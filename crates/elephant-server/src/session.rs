//! Per-connection session threads.
//!
//! A session owns one TCP connection: it reads frames, parses commands,
//! forwards them to the executor over the bounded queue (blocking when the
//! queue is full — that *is* the backpressure), and writes responses back.
//! Protocol-level failures (unknown verb, malformed or oversized frame)
//! are answered with a structured error and the connection stays open;
//! only transport errors end the session.
//!
//! Reads use a short socket timeout so an idle session notices the
//! shutdown flag: once the server is draining, idle connections are closed
//! instead of holding the drain hostage, while a command already submitted
//! still gets its response.

use crate::executor::Job;
use crate::metrics::Metrics;
use crate::protocol::{
    codes, parse_command, write_err, write_ok, Command, FrameError, FrameReader,
};
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Poll interval for noticing the shutdown flag while blocked on a read.
const READ_POLL: Duration = Duration::from_millis(100);

/// How long admission control waits for a queue slot before refusing the
/// command with [`codes::BUSY`]. Short: the point is to convert unbounded
/// head-of-line blocking into a bounded, retryable signal.
const ADMISSION_WAIT: Duration = Duration::from_millis(250);

/// Sleep between queue retries inside the admission wait.
const ADMISSION_POLL: Duration = Duration::from_millis(10);

/// Run one connection to completion. Consumes the stream; returns when the
/// client disconnects, a transport error occurs, or the server drains.
pub(crate) fn run_session(
    stream: TcpStream,
    session_id: u64,
    tx: SyncSender<Job>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut frames = FrameReader::new();

    loop {
        let frame = match frames.read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => break, // clean disconnect
            Err(FrameError::Timeout) => {
                if shutdown.load(Ordering::SeqCst) {
                    break; // draining: drop idle connections
                }
                continue;
            }
            Err(FrameError::Oversized(n)) => {
                metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let msg = format!("frame of {n} bytes exceeds limit");
                if write_err(&mut writer, codes::OVERSIZED, &msg).is_err() {
                    break;
                }
                continue;
            }
            Err(FrameError::BadLength(what)) => {
                metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let msg = format!("bad length header '{what}'");
                if write_err(&mut writer, codes::PARSE, &msg).is_err() {
                    break;
                }
                continue;
            }
            Err(FrameError::Io(_)) => break, // mid-frame disconnect etc.
        };

        let command = match parse_command(&frame) {
            Ok(c) => c,
            Err((code, msg)) => {
                metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                if write_err(&mut writer, code, &msg).is_err() {
                    break;
                }
                continue;
            }
        };

        // Refuse new work while draining (SHUTDOWN and STATS stay allowed
        // so clients can observe the drain).
        if shutdown.load(Ordering::SeqCst) && !matches!(command, Command::Shutdown | Command::Stats)
        {
            metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
            if write_err(&mut writer, codes::DRAINING, "server is draining").is_err() {
                break;
            }
            continue;
        }

        // Admission control: try for a queue slot within a bounded wait,
        // then refuse with the retryable ERR_BUSY instead of blocking the
        // client indefinitely behind a saturated executor.
        let (reply_tx, reply_rx) = mpsc::channel();
        let mut job = Job::Command {
            session: session_id,
            command,
            reply: reply_tx,
        };
        let admission_deadline = Instant::now() + ADMISSION_WAIT;
        let admitted = loop {
            metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
            match tx.try_send(job) {
                Ok(()) => break Ok(()),
                Err(TrySendError::Full(j)) => {
                    metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    if Instant::now() >= admission_deadline {
                        break Err(true);
                    }
                    job = j;
                    thread::sleep(ADMISSION_POLL);
                }
                Err(TrySendError::Disconnected(_)) => {
                    metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    break Err(false);
                }
            }
        };
        match admitted {
            Ok(()) => {}
            Err(true) => {
                metrics.busy_rejections.fetch_add(1, Ordering::Relaxed);
                let msg = format!(
                    "executor queue full after {} ms; retry with backoff",
                    ADMISSION_WAIT.as_millis()
                );
                if write_err(&mut writer, codes::BUSY, &msg).is_err() {
                    break;
                }
                continue;
            }
            Err(false) => {
                // Executor gone — only possible deep into shutdown.
                let _ = write_err(&mut writer, codes::INTERNAL, "executor unavailable");
                break;
            }
        }
        match reply_rx.recv() {
            Ok(Ok(body)) => {
                if write_ok(&mut writer, &body).is_err() {
                    break;
                }
            }
            Ok(Err((code, msg))) => {
                if write_err(&mut writer, code, &msg).is_err() {
                    break;
                }
            }
            Err(_) => {
                let _ = write_err(&mut writer, codes::INTERNAL, "executor dropped the job");
                break;
            }
        }
    }

    // Best effort: free this session's prepared statements.
    let _ = tx.send(Job::CloseSession {
        session: session_id,
    });
}
