//! Wire protocol: framing, command parsing, and response encoding.
//!
//! Requests are text frames in one of two encodings:
//!
//! * **Simple line** — `VERB rest-of-command\n`. Usable for any command
//!   whose text fits on one line (no embedded newlines).
//! * **Length-prefixed** — `!<n>\n` followed by exactly `n` payload bytes
//!   and a trailing `\n`. The payload is the command text and may span
//!   multiple lines (required for `INSPECT`, whose pipeline source is
//!   multi-line Python).
//!
//! Responses are always length-prefixed so bodies can contain anything:
//!
//! * success — `+<n>\n<body>\n`
//! * error — `-<n>\n<CODE> <message>\n`
//!
//! where `<n>` counts the body bytes (excluding the trailing newline).
//! Error payloads start with a machine-readable code from [`codes`],
//! a space, then a human-readable message.

use std::io::{self, BufRead, Read, Write};

/// Hard ceiling on a single frame's payload (1 MiB). Oversized frames are
/// drained and refused with [`codes::OVERSIZED`]; the session stays up.
pub const MAX_FRAME: usize = 1 << 20;

/// Separator between the statements of a `BATCH` frame and between the
/// per-statement bodies of its response: ASCII Record Separator (0x1E),
/// which cannot appear in SQL text or CSV output.
pub const BATCH_SEP: char = '\x1e';

/// Most statements accepted in one `BATCH` frame.
pub const MAX_BATCH: usize = 1024;

/// Spans returned by a bare `TRACE` (no explicit count).
pub const DEFAULT_TRACE_SPANS: usize = 20;

/// Machine-readable error codes carried in the first token of an error body.
pub mod codes {
    /// Malformed frame or unparsable command line.
    pub const PARSE: &str = "ERR_PARSE";
    /// Unknown verb.
    pub const UNKNOWN: &str = "ERR_UNKNOWN_VERB";
    /// Frame payload exceeded [`super::MAX_FRAME`].
    pub const OVERSIZED: &str = "ERR_OVERSIZED";
    /// SQL planning/execution failure.
    pub const EXEC: &str = "ERR_EXEC";
    /// Pipeline inspection failure.
    pub const INSPECT: &str = "ERR_INSPECT";
    /// Server is draining after SHUTDOWN; no new work accepted.
    pub const DRAINING: &str = "ERR_DRAINING";
    /// Internal server error (executor gone, poisoned state, ...).
    pub const INTERNAL: &str = "ERR_INTERNAL";
    /// Executor queue full past the admission wait; **retryable** — back
    /// off and resend the same command.
    pub const BUSY: &str = "ERR_BUSY";
    /// Writes are refused: either durable storage failed and the engine
    /// degraded to read-only (a `CHECKPOINT` re-arms it), or the server is
    /// a replication follower (permanent — send the write to the leader).
    /// **Not** retryable on the same server.
    pub const READ_ONLY: &str = "ERR_READ_ONLY";
    /// Statement exceeded the server's statement timeout and was cancelled
    /// cooperatively; **retryable** (though likely to time out again
    /// unchanged).
    pub const TIMEOUT: &str = "ERR_TIMEOUT";
    /// The statement writes (or prepares against) tables owned by more than
    /// one shard. **Not** retryable: split the statement per shard or keep
    /// co-written tables on one shard (same `shard_of` bucket).
    pub const CROSS_SHARD: &str = "ERR_CROSS_SHARD";
}

/// What a `TRACE` command asks for (the TRACE v2 grammar).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceRequest {
    /// `TRACE [n]` — the most recent `n` root spans across all shard rings.
    Recent(usize),
    /// `TRACE q<id>` — the full span tree of one query, reassembled from
    /// every shard's ring and rendered hierarchically with per-shard time
    /// attribution.
    Tree(u64),
}

/// A parsed client command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Execute one SQL statement; SELECTs return CSV, DDL/DML return a
    /// one-line acknowledgement.
    Query(String),
    /// Plan + cache a SELECT under a session-scoped name.
    Prepare {
        /// Statement name, unique per session.
        name: String,
        /// The SELECT text.
        sql: String,
    },
    /// Run a previously prepared statement, optionally binding `$n`
    /// placeholders: `EXECUTE name` or `EXECUTE name (v1, v2, ...)`.
    Execute {
        /// Statement name.
        name: String,
        /// Raw text between the argument parentheses, unparsed (the engine
        /// lexes it); `None` when no argument list was given.
        args: Option<String>,
    },
    /// Execute several statements from one frame in order, amortizing
    /// framing and group commit; statements and response bodies are joined
    /// by [`BATCH_SEP`].
    Batch(Vec<String>),
    /// Drop a prepared statement.
    Deallocate(String),
    /// Render the optimized plan; with `analyze`, execute the query and
    /// annotate each operator with its runtime rows/time.
    Explain {
        /// The SELECT text.
        sql: String,
        /// True for `EXPLAIN ANALYZE`.
        analyze: bool,
    },
    /// Inspect recorded spans: recent roots, or one query's span tree.
    Trace(TraceRequest),
    /// Run an ML pipeline through the SQL backend with bias checks.
    Inspect {
        /// Sensitive columns to histogram after every operator.
        columns: Vec<String>,
        /// Max tolerated absolute ratio change per group.
        threshold: f64,
        /// The Python pipeline source.
        source: String,
    },
    /// Set a session variable (`SET <name> [=] <value>`); currently only
    /// `exec_mode` (row | columnar | auto) is defined.
    Set {
        /// Variable name (case-insensitive).
        name: String,
        /// Unparsed value text; validated by the executor.
        value: String,
    },
    /// Server + engine counters.
    Stats,
    /// Snapshot all tables to durable storage and truncate the WAL.
    Checkpoint,
    /// Replication topology: role, followers, shipped bytes, watermarks.
    Replica,
    /// Replication lag watermarks (committed vs. applied LSNs), the
    /// smallest surface a read-routing client needs to poll.
    Lag,
    /// Begin graceful drain: stop accepting, finish in-flight work.
    Shutdown,
}

impl Command {
    /// Verb label used for metrics.
    pub fn verb(&self) -> &'static str {
        match self {
            Command::Query(_) => "QUERY",
            Command::Batch(_) => "BATCH",
            Command::Prepare { .. } => "PREPARE",
            Command::Execute { .. } => "EXECUTE",
            Command::Deallocate(_) => "DEALLOCATE",
            Command::Explain { .. } => "EXPLAIN",
            Command::Trace(_) => "TRACE",
            Command::Inspect { .. } => "INSPECT",
            Command::Set { .. } => "SET",
            Command::Stats => "STATS",
            Command::Checkpoint => "CHECKPOINT",
            Command::Replica => "REPLICA",
            Command::Lag => "LAG",
            Command::Shutdown => "SHUTDOWN",
        }
    }

    /// One-line human summary used as span detail and in the slow-query
    /// log. Never includes pipeline source (it can be large and multiline).
    pub fn summary(&self) -> String {
        match self {
            Command::Query(sql) => sql.clone(),
            Command::Batch(stmts) => format!("{} statements", stmts.len()),
            Command::Prepare { name, sql } => format!("{name}: {sql}"),
            Command::Execute { name, args: None } => name.clone(),
            Command::Execute {
                name,
                args: Some(a),
            } => format!("{name} ({a})"),
            Command::Deallocate(name) => name.clone(),
            Command::Explain { sql, analyze } => {
                if *analyze {
                    format!("ANALYZE {sql}")
                } else {
                    sql.clone()
                }
            }
            Command::Trace(TraceRequest::Recent(n)) => format!("last {n}"),
            Command::Trace(TraceRequest::Tree(id)) => format!("q{id}"),
            Command::Inspect {
                columns, threshold, ..
            } => format!("columns={} threshold={threshold}", columns.join(",")),
            Command::Set { name, value } => format!("{name}={value}"),
            Command::Stats
            | Command::Checkpoint
            | Command::Replica
            | Command::Lag
            | Command::Shutdown => String::new(),
        }
    }
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying transport error (includes mid-frame disconnects).
    Io(io::Error),
    /// Read timed out with no (complete) frame; caller may retry with the
    /// same reader — partial data is preserved in the scratch buffer.
    Timeout,
    /// `!<n>` declared a payload larger than [`MAX_FRAME`]. The payload has
    /// already been drained; the connection is still usable.
    Oversized(usize),
    /// The `!<n>` length header was not a number.
    BadLength(String),
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        if matches!(
            e.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        ) {
            FrameError::Timeout
        } else {
            FrameError::Io(e)
        }
    }
}

/// Reusable per-connection frame reader state. Keeping the partial-line
/// buffer here lets reads resume cleanly after a timeout (needed for the
/// shutdown-drain poll in sessions).
#[derive(Debug, Default)]
pub struct FrameReader {
    line: String,
    payload: Vec<u8>,
    payload_filled: usize,
    /// Set while draining an oversized payload: (remaining bytes, declared).
    draining: Option<(usize, usize)>,
}

impl FrameReader {
    /// Create an empty reader state.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Read one frame. Returns `Ok(None)` on clean EOF at a frame boundary.
    /// [`FrameError::Timeout`] means "no complete frame yet, call again".
    pub fn read_frame(&mut self, r: &mut impl BufRead) -> Result<Option<String>, FrameError> {
        if let Some((remaining, declared)) = self.draining.take() {
            return self.drain_oversized(r, remaining, declared);
        }
        if self.payload_filled > 0 || !self.payload.is_empty() {
            return self.read_payload(r);
        }
        loop {
            match r.read_line(&mut self.line) {
                Ok(0) => {
                    // EOF. Mid-line EOF is a dropped connection.
                    return if self.line.is_empty() {
                        Ok(None)
                    } else {
                        self.line.clear();
                        Err(FrameError::Io(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed mid-frame",
                        )))
                    };
                }
                Ok(_) if !self.line.ends_with('\n') => continue,
                Ok(_) => break,
                Err(e) => return Err(FrameError::from(e)),
            }
        }
        let line = std::mem::take(&mut self.line);
        let line = line.trim_end_matches(['\n', '\r']);
        if let Some(len_text) = line.strip_prefix('!') {
            let n: usize = len_text
                .trim()
                .parse()
                .map_err(|_| FrameError::BadLength(len_text.to_string()))?;
            if n > MAX_FRAME {
                // +1 for the trailing newline after the payload.
                return self.drain_oversized(r, n + 1, n);
            }
            self.payload = vec![0u8; n + 1];
            self.payload_filled = 0;
            self.read_payload(r)
        } else {
            Ok(Some(line.to_string()))
        }
    }

    fn read_payload(&mut self, r: &mut impl Read) -> Result<Option<String>, FrameError> {
        while self.payload_filled < self.payload.len() {
            match r.read(&mut self.payload[self.payload_filled..]) {
                Ok(0) => {
                    return Err(FrameError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-payload",
                    )))
                }
                Ok(k) => self.payload_filled += k,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(FrameError::from(e)),
            }
        }
        let mut payload = std::mem::take(&mut self.payload);
        self.payload_filled = 0;
        payload.pop(); // trailing newline
        String::from_utf8(payload)
            .map(Some)
            .map_err(|_| FrameError::BadLength("payload is not UTF-8".into()))
    }

    fn drain_oversized(
        &mut self,
        r: &mut impl Read,
        mut remaining: usize,
        declared: usize,
    ) -> Result<Option<String>, FrameError> {
        let mut chunk = [0u8; 8192];
        while remaining > 0 {
            let want = remaining.min(chunk.len());
            match r.read(&mut chunk[..want]) {
                Ok(0) => {
                    return Err(FrameError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-payload",
                    )))
                }
                Ok(k) => remaining -= k,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    let fe = FrameError::from(e);
                    if matches!(fe, FrameError::Timeout) {
                        self.draining = Some((remaining, declared));
                    }
                    return Err(fe);
                }
            }
        }
        Err(FrameError::Oversized(declared))
    }
}

/// Parse a complete frame payload into a [`Command`].
pub fn parse_command(frame: &str) -> Result<Command, (&'static str, String)> {
    let frame = frame.trim_start_matches(['\n', '\r', ' ']);
    let (first_line, rest) = match frame.split_once('\n') {
        Some((l, r)) => (l.trim_end_matches('\r'), r),
        None => (frame, ""),
    };
    let (verb, args) = match first_line.split_once(char::is_whitespace) {
        Some((v, a)) => (v, a.trim()),
        None => (first_line, ""),
    };
    let full_args = || -> String {
        if rest.is_empty() {
            args.to_string()
        } else {
            format!("{args}\n{rest}")
        }
    };
    match verb.to_ascii_uppercase().as_str() {
        "QUERY" => {
            let sql = full_args();
            if sql.trim().is_empty() {
                return Err((codes::PARSE, "QUERY requires SQL text".into()));
            }
            Ok(Command::Query(sql))
        }
        "BATCH" => {
            let text = full_args();
            if text.trim().is_empty() {
                return Err((codes::PARSE, "BATCH requires at least one statement".into()));
            }
            let stmts: Vec<String> = text
                .split(BATCH_SEP)
                .map(|s| s.trim().to_string())
                .collect();
            if stmts.iter().any(|s| s.is_empty()) {
                return Err((codes::PARSE, "BATCH contains an empty statement".into()));
            }
            if stmts.len() > MAX_BATCH {
                return Err((
                    codes::PARSE,
                    format!(
                        "BATCH of {} statements exceeds the {MAX_BATCH} cap",
                        stmts.len()
                    ),
                ));
            }
            Ok(Command::Batch(stmts))
        }
        "PREPARE" => {
            let text = full_args();
            let (name, sql) = text
                .split_once(char::is_whitespace)
                .ok_or_else(|| (codes::PARSE, "usage: PREPARE <name> [AS] <sql>".to_string()))?;
            // Accept the PostgreSQL form `PREPARE name AS SELECT ...`.
            let sql = sql.trim_start();
            let sql = match sql.split_once(char::is_whitespace) {
                Some((first, rest)) if first.eq_ignore_ascii_case("AS") => rest,
                _ => sql,
            };
            if name.is_empty() || sql.trim().is_empty() {
                return Err((codes::PARSE, "usage: PREPARE <name> [AS] <sql>".into()));
            }
            Ok(Command::Prepare {
                name: name.to_string(),
                sql: sql.trim().to_string(),
            })
        }
        "EXECUTE" => {
            // `EXECUTE name` or `EXECUTE name (v1, v2, ...)`.
            let (name, tail) = match args.split_once(char::is_whitespace) {
                Some((n, t)) => (n, t.trim()),
                None => (args, ""),
            };
            if name.is_empty() || name.contains('(') {
                return Err((codes::PARSE, "usage: EXECUTE <name> [(v1, v2, ...)]".into()));
            }
            if tail.is_empty() {
                return Ok(Command::Execute {
                    name: name.to_string(),
                    args: None,
                });
            }
            let inner = tail
                .strip_prefix('(')
                .and_then(|t| t.strip_suffix(')'))
                .ok_or_else(|| {
                    (
                        codes::PARSE,
                        "usage: EXECUTE <name> [(v1, v2, ...)]".to_string(),
                    )
                })?;
            Ok(Command::Execute {
                name: name.to_string(),
                args: Some(inner.trim().to_string()),
            })
        }
        "DEALLOCATE" => {
            if args.is_empty() || args.contains(char::is_whitespace) {
                return Err((codes::PARSE, "usage: DEALLOCATE <name>".into()));
            }
            Ok(Command::Deallocate(args.to_string()))
        }
        "EXPLAIN" => {
            let mut sql = full_args();
            let analyze = {
                let trimmed = sql.trim_start();
                let is_analyze = trimmed
                    .split_whitespace()
                    .next()
                    .is_some_and(|w| w.eq_ignore_ascii_case("ANALYZE"));
                if is_analyze {
                    let pos = sql
                        .to_ascii_uppercase()
                        .find("ANALYZE")
                        .expect("word found");
                    sql = sql[pos + "ANALYZE".len()..].trim_start().to_string();
                }
                is_analyze
            };
            if sql.trim().is_empty() {
                return Err((codes::PARSE, "EXPLAIN requires SQL text".into()));
            }
            Ok(Command::Explain { sql, analyze })
        }
        "TRACE" => {
            if args.is_empty() {
                return Ok(Command::Trace(TraceRequest::Recent(DEFAULT_TRACE_SPANS)));
            }
            if let Some(id_text) = args.strip_prefix('q').or_else(|| args.strip_prefix('Q')) {
                let id: u64 = id_text
                    .parse()
                    .map_err(|_| (codes::PARSE, "usage: TRACE [n | q<query_id>]".to_string()))?;
                return Ok(Command::Trace(TraceRequest::Tree(id)));
            }
            let n: usize = args
                .parse()
                .map_err(|_| (codes::PARSE, "usage: TRACE [n | q<query_id>]".to_string()))?;
            Ok(Command::Trace(TraceRequest::Recent(n.max(1))))
        }
        "INSPECT" => {
            let mut head = args.split_whitespace();
            let cols = head.next().ok_or_else(|| {
                (
                    codes::PARSE,
                    "usage: INSPECT <cols> <threshold>\\n<source>".to_string(),
                )
            })?;
            let threshold: f64 = head.next().and_then(|t| t.parse().ok()).ok_or_else(|| {
                (
                    codes::PARSE,
                    "INSPECT threshold must be a number".to_string(),
                )
            })?;
            if head.next().is_some() {
                return Err((codes::PARSE, "INSPECT header has trailing tokens".into()));
            }
            if rest.trim().is_empty() {
                return Err((
                    codes::PARSE,
                    "INSPECT requires a pipeline source body".into(),
                ));
            }
            Ok(Command::Inspect {
                columns: cols.split(',').map(|c| c.trim().to_string()).collect(),
                threshold,
                source: rest.to_string(),
            })
        }
        "SET" => {
            // Accept `SET name value`, `SET name = value`, `SET name=value`.
            let (name, value) = match args.split_once('=') {
                Some((n, v)) => (n.trim(), v.trim()),
                None => {
                    let mut it = args.split_whitespace();
                    (it.next().unwrap_or(""), it.next().unwrap_or(""))
                }
            };
            let one_token = |s: &str| s.split_whitespace().count() == 1;
            // Each side must be exactly one bare token: no missing value,
            // no trailing junk, no second `=`.
            if !one_token(name) || !one_token(value) || value.contains('=') {
                return Err((codes::PARSE, "usage: SET <name> [=] <value>".into()));
            }
            if args.split_once('=').is_none() && args.split_whitespace().count() != 2 {
                return Err((codes::PARSE, "usage: SET <name> [=] <value>".into()));
            }
            Ok(Command::Set {
                name: name.to_ascii_lowercase(),
                value: value.to_string(),
            })
        }
        "STATS" => Ok(Command::Stats),
        "CHECKPOINT" => Ok(Command::Checkpoint),
        "REPLICA" => Ok(Command::Replica),
        "LAG" => Ok(Command::Lag),
        "SHUTDOWN" => Ok(Command::Shutdown),
        other => Err((codes::UNKNOWN, format!("unknown verb '{other}'"))),
    }
}

/// Write a success response: `+<n>\n<body>\n`.
pub fn write_ok(w: &mut impl Write, body: &str) -> io::Result<()> {
    write!(w, "+{}\n{}\n", body.len(), body)?;
    w.flush()
}

/// Write an error response: `-<n>\n<CODE> <message>\n`.
pub fn write_err(w: &mut impl Write, code: &str, msg: &str) -> io::Result<()> {
    let msg = msg.replace('\n', " ");
    let body = format!("{code} {msg}");
    write!(w, "-{}\n{}\n", body.len(), body)?;
    w.flush()
}

/// Encode a request frame, choosing length-prefixed framing whenever the
/// command text contains a newline (used by the client).
pub fn encode_request(command: &str) -> String {
    if command.contains('\n') {
        format!("!{}\n{}\n", command.len(), command)
    } else {
        format!("{command}\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read_all(input: &str) -> Vec<Result<Option<String>, FrameError>> {
        let mut r = Cursor::new(input.as_bytes().to_vec());
        let mut fr = FrameReader::new();
        let mut out = Vec::new();
        loop {
            let item = fr.read_frame(&mut r);
            let done = matches!(item, Ok(None) | Err(FrameError::Io(_)));
            out.push(item);
            if done {
                break;
            }
        }
        out
    }

    #[test]
    fn simple_line_frames() {
        let frames = read_all("STATS\nQUERY SELECT 1\n");
        assert_eq!(frames[0].as_ref().unwrap().as_deref(), Some("STATS"));
        assert_eq!(
            frames[1].as_ref().unwrap().as_deref(),
            Some("QUERY SELECT 1")
        );
        assert!(matches!(frames[2], Ok(None)));
    }

    #[test]
    fn length_prefixed_frame_with_newlines() {
        let body = "INSPECT race 0.3\nline1\nline2";
        let wire = encode_request(body);
        assert!(wire.starts_with('!'));
        let frames = read_all(&wire);
        assert_eq!(frames[0].as_ref().unwrap().as_deref(), Some(body));
    }

    #[test]
    fn oversized_frame_is_drained_and_flagged() {
        let n = MAX_FRAME + 5;
        let mut wire = format!("!{n}\n");
        wire.push_str(&"x".repeat(n));
        wire.push('\n');
        wire.push_str("STATS\n");
        let frames = read_all(&wire);
        assert!(matches!(frames[0], Err(FrameError::Oversized(d)) if d == n));
        // The connection remains usable: the next frame parses.
        assert_eq!(frames[1].as_ref().unwrap().as_deref(), Some("STATS"));
    }

    #[test]
    fn bad_length_header() {
        let frames = read_all("!abc\n");
        assert!(matches!(frames[0], Err(FrameError::BadLength(_))));
    }

    #[test]
    fn mid_frame_disconnect_is_io_error() {
        let frames = read_all("!10\nabc");
        assert!(matches!(frames[0], Err(FrameError::Io(_))));
    }

    #[test]
    fn parse_all_verbs() {
        assert_eq!(
            parse_command("QUERY SELECT 1").unwrap(),
            Command::Query("SELECT 1".into())
        );
        assert_eq!(
            parse_command("prepare q1 SELECT a FROM t").unwrap(),
            Command::Prepare {
                name: "q1".into(),
                sql: "SELECT a FROM t".into()
            }
        );
        assert_eq!(
            parse_command("EXECUTE q1").unwrap(),
            Command::Execute {
                name: "q1".into(),
                args: None
            }
        );
        assert_eq!(
            parse_command("EXECUTE q1 (1, 'x', null)").unwrap(),
            Command::Execute {
                name: "q1".into(),
                args: Some("1, 'x', null".into())
            }
        );
        assert_eq!(
            parse_command("prepare q2 AS SELECT a FROM t WHERE a = $1").unwrap(),
            Command::Prepare {
                name: "q2".into(),
                sql: "SELECT a FROM t WHERE a = $1".into()
            }
        );
        assert_eq!(
            parse_command("BATCH INSERT INTO t VALUES (1)\u{1e}INSERT INTO t VALUES (2)").unwrap(),
            Command::Batch(vec![
                "INSERT INTO t VALUES (1)".into(),
                "INSERT INTO t VALUES (2)".into()
            ])
        );
        assert_eq!(
            parse_command("BATCH SELECT 1").unwrap(),
            Command::Batch(vec!["SELECT 1".into()])
        );
        assert_eq!(
            parse_command("DEALLOCATE q1").unwrap(),
            Command::Deallocate("q1".into())
        );
        assert_eq!(
            parse_command("EXPLAIN SELECT 1").unwrap(),
            Command::Explain {
                sql: "SELECT 1".into(),
                analyze: false
            }
        );
        assert_eq!(
            parse_command("EXPLAIN ANALYZE SELECT 1").unwrap(),
            Command::Explain {
                sql: "SELECT 1".into(),
                analyze: true
            }
        );
        assert_eq!(
            parse_command("explain analyze SELECT 1").unwrap(),
            Command::Explain {
                sql: "SELECT 1".into(),
                analyze: true
            }
        );
        assert_eq!(
            parse_command("TRACE").unwrap(),
            Command::Trace(TraceRequest::Recent(DEFAULT_TRACE_SPANS))
        );
        assert_eq!(
            parse_command("TRACE 5").unwrap(),
            Command::Trace(TraceRequest::Recent(5))
        );
        assert_eq!(
            parse_command("TRACE 0").unwrap(),
            Command::Trace(TraceRequest::Recent(1))
        );
        assert_eq!(
            parse_command("TRACE q17").unwrap(),
            Command::Trace(TraceRequest::Tree(17))
        );
        assert_eq!(
            parse_command("TRACE Q3").unwrap(),
            Command::Trace(TraceRequest::Tree(3))
        );
        assert_eq!(parse_command("TRACE five").unwrap_err().0, codes::PARSE);
        assert_eq!(parse_command("TRACE qx").unwrap_err().0, codes::PARSE);
        assert_eq!(
            parse_command("EXPLAIN ANALYZE").unwrap_err().0,
            codes::PARSE
        );
        assert_eq!(
            parse_command("SET exec_mode columnar").unwrap(),
            Command::Set {
                name: "exec_mode".into(),
                value: "columnar".into()
            }
        );
        assert_eq!(
            parse_command("set EXEC_mode = auto").unwrap(),
            Command::Set {
                name: "exec_mode".into(),
                value: "auto".into()
            }
        );
        assert_eq!(
            parse_command("SET exec_mode=row").unwrap(),
            Command::Set {
                name: "exec_mode".into(),
                value: "row".into()
            }
        );
        assert_eq!(parse_command("STATS").unwrap(), Command::Stats);
        assert_eq!(parse_command("CHECKPOINT").unwrap(), Command::Checkpoint);
        assert_eq!(parse_command("REPLICA").unwrap(), Command::Replica);
        assert_eq!(parse_command("lag").unwrap(), Command::Lag);
        assert_eq!(parse_command("SHUTDOWN").unwrap(), Command::Shutdown);
        match parse_command("INSPECT race,sex 0.25\ndf = pd.read_csv(\"x.csv\")").unwrap() {
            Command::Inspect {
                columns,
                threshold,
                source,
            } => {
                assert_eq!(columns, vec!["race".to_string(), "sex".to_string()]);
                assert!((threshold - 0.25).abs() < 1e-12);
                assert!(source.contains("read_csv"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parse_errors_carry_codes() {
        assert_eq!(parse_command("FROBNICATE").unwrap_err().0, codes::UNKNOWN);
        assert_eq!(parse_command("QUERY").unwrap_err().0, codes::PARSE);
        assert_eq!(parse_command("PREPARE q1").unwrap_err().0, codes::PARSE);
        assert_eq!(
            parse_command("INSPECT race notanumber\nx").unwrap_err().0,
            codes::PARSE
        );
        assert_eq!(
            parse_command("INSPECT race 0.3").unwrap_err().0,
            codes::PARSE
        );
        assert_eq!(parse_command("BATCH").unwrap_err().0, codes::PARSE);
        assert_eq!(
            parse_command("BATCH SELECT 1\u{1e}\u{1e}SELECT 2")
                .unwrap_err()
                .0,
            codes::PARSE
        );
        assert_eq!(
            parse_command("EXECUTE q1 (1, 2").unwrap_err().0,
            codes::PARSE
        );
        assert_eq!(parse_command("SET").unwrap_err().0, codes::PARSE);
        assert_eq!(parse_command("SET exec_mode").unwrap_err().0, codes::PARSE);
        assert_eq!(
            parse_command("SET exec_mode row extra").unwrap_err().0,
            codes::PARSE
        );
    }

    #[test]
    fn response_encoding_round_trip() {
        let mut buf = Vec::new();
        write_ok(&mut buf, "a,b\n1,2").unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "+7\na,b\n1,2\n");
        let mut buf = Vec::new();
        write_err(&mut buf, codes::EXEC, "no such\ntable").unwrap();
        assert_eq!(
            String::from_utf8(buf).unwrap(),
            format!(
                "-{}\nERR_EXEC no such table\n",
                "ERR_EXEC no such table".len()
            )
        );
    }
}
