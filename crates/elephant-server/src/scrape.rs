//! The `/metrics` listener: a minimal plain-HTTP endpoint serving the
//! Prometheus text exposition format (0.0.4), dependency-free.
//!
//! Deliberately not a web server: it answers exactly `GET /metrics` (and
//! `GET /metrics?...`), closes the connection after every response, and
//! parses only the request line. That is all a Prometheus scraper (or
//! `curl`) needs, and it keeps the observability plane inside the no-new-
//! dependencies budget of the rest of the server.
//!
//! The thread holds only a [`Weak`] reference to the router: the accept
//! loop owns the strong [`Arc`], and dropping it at drain end is what lets
//! the executors observe queue disconnection and exit. A scrape arriving
//! mid-drain gets `503 Service Unavailable` instead of keeping the server
//! alive.

use crate::shard::ShardRouter;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Accept-loop poll interval for the shutdown flag.
const SCRAPE_POLL: Duration = Duration::from_millis(50);

/// Cap on the request head we read; a scrape request line is tiny.
const MAX_REQUEST_BYTES: usize = 4096;

/// Per-connection socket timeout: a stalled scraper must not wedge the
/// single-threaded listener.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Spawn the metrics listener thread. It serves until `shutdown` flips (or
/// the router is gone and the process is tearing down).
pub(crate) fn spawn(
    listener: TcpListener,
    router: Weak<ShardRouter>,
    shutdown: Arc<AtomicBool>,
) -> io::Result<JoinHandle<()>> {
    listener.set_nonblocking(true)?;
    thread::Builder::new()
        .name("elephant-metrics".into())
        .spawn(move || {
            while !shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        // Serve inline: scrapes are rare (seconds apart) and
                        // cheap; a slow peer is bounded by the socket timeout.
                        let _ = serve_one(stream, &router);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(SCRAPE_POLL);
                    }
                    Err(_) => thread::sleep(SCRAPE_POLL),
                }
            }
        })
}

/// Read one request, answer it, close.
fn serve_one(mut stream: TcpStream, router: &Weak<ShardRouter>) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let request_line = read_request_line(&mut stream)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);
    if method != "GET" {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n",
        );
    }
    if path != "/metrics" {
        return respond(
            &mut stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found (try /metrics)\n",
        );
    }
    match router.upgrade() {
        Some(router) => match router.prometheus_body() {
            Ok(body) => respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            ),
            Err((code, msg)) => respond(
                &mut stream,
                "500 Internal Server Error",
                "text/plain; charset=utf-8",
                &format!("{code}: {msg}\n"),
            ),
        },
        None => respond(
            &mut stream,
            "503 Service Unavailable",
            "text/plain; charset=utf-8",
            "server is draining\n",
        ),
    }
}

/// Read the whole request head (through the blank line) and return the
/// request line. Consuming the headers matters: closing a socket with
/// unread bytes turns the close into a TCP RST, which can discard the
/// response before the scraper reads it.
fn read_request_line(stream: &mut TcpStream) -> io::Result<String> {
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while head.len() < MAX_REQUEST_BYTES {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                head.push(byte[0]);
                if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
                    break;
                }
            }
            Err(e) => return Err(e),
        }
    }
    let first = head.split(|b| *b == b'\n').next().unwrap_or(&[]);
    Ok(String::from_utf8_lossy(first)
        .trim_end_matches('\r')
        .to_string())
}

/// Write a minimal HTTP/1.1 response and close the connection.
fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
