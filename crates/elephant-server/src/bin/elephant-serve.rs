//! `elephant-serve` — stand-alone server binary.
//!
//! ```text
//! elephant-serve [--addr HOST:PORT] [--disk] [--exec-mode MODE] [--rows N]
//!                [--seed N] [--queue N] [--no-data] [--data-dir PATH]
//!                [--fsync POLICY] [--slow-query-us N]
//!                [--statement-timeout-ms N] [--repl-addr HOST:PORT]
//!                [--replicate-from HOST:PORT] [--auto-checkpoint-wal-bytes N]
//!                [--shards N] [--metrics-addr HOST:PORT]
//!                [--max-result-buffer-bytes N]
//! ```
//!
//! `--exec-mode row|columnar|auto` picks the default query execution
//! engine (row-at-a-time, batch-at-a-time columnar, or plan-driven
//! choice); clients override it per session with `SET exec_mode <mode>`.
//!
//! By default binds 127.0.0.1:5462, uses the in-memory profile, and
//! pre-registers the standard synthetic pipeline datasets so `INSPECT`
//! works immediately. With `--data-dir` the server recovers whatever the
//! directory holds on startup and write-ahead-logs every acknowledged
//! DDL/DML; `--fsync` picks the WAL durability policy (`always`, `off`,
//! or `every_n:N`).
//!
//! Replication: `--repl-addr` (with `--data-dir`) makes this server a
//! leader streaming committed WAL frames to followers; `--replicate-from`
//! makes it a read-only follower of the leader replicating at that
//! address. `--auto-checkpoint-wal-bytes` checkpoints automatically once
//! the WAL outgrows the budget.
//!
//! Sharding: `--shards N` runs N engine shards (defaults to the machine's
//! available parallelism), each with its own executor thread and — when
//! durable — its own WAL/snapshot subdirectory; tables are routed to
//! shards by name hash. Incompatible with replication. See
//! `docs/SHARDING.md`.
//!
//! Observability: `--metrics-addr HOST:PORT` starts a plain-HTTP metrics
//! listener serving the Prometheus text format on `GET /metrics` — the
//! same counters as the `STATS` verb, machine-readable. Distributed
//! traces are available over the regular protocol with `TRACE` /
//! `TRACE q<id>`. See `docs/OBSERVABILITY.md`.

use elephant_server::{start, ServerConfig};
use sqlengine::{ExecMode, FsyncPolicy};
use std::path::PathBuf;
use std::process::exit;

fn main() {
    let mut addr = "127.0.0.1:5462".to_string();
    let mut in_memory = true;
    let mut exec_mode = ExecMode::default();
    let mut rows: usize = 200;
    let mut seed: u64 = 7;
    let mut queue: usize = 64;
    let mut with_data = true;
    let mut data_dir: Option<PathBuf> = None;
    let mut fsync = FsyncPolicy::Always;
    let mut slow_query_us: Option<u64> = None;
    let mut statement_timeout_ms: Option<u64> = None;
    let mut repl_addr: Option<String> = None;
    let mut replicate_from: Option<String> = None;
    let mut auto_checkpoint_wal_bytes: Option<u64> = None;
    let mut shards: Option<usize> = None;
    let mut metrics_addr: Option<String> = None;
    let mut max_result_buffer_bytes: usize = 64 << 20;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--disk" => in_memory = false,
            "--exec-mode" => exec_mode = parse(&value("--exec-mode"), "--exec-mode"),
            "--rows" => rows = parse(&value("--rows"), "--rows"),
            "--seed" => seed = parse(&value("--seed"), "--seed"),
            "--queue" => queue = parse(&value("--queue"), "--queue"),
            "--no-data" => with_data = false,
            "--data-dir" => data_dir = Some(PathBuf::from(value("--data-dir"))),
            "--fsync" => fsync = parse(&value("--fsync"), "--fsync"),
            "--slow-query-us" => {
                slow_query_us = Some(parse(&value("--slow-query-us"), "--slow-query-us"));
            }
            "--statement-timeout-ms" => {
                statement_timeout_ms = Some(parse(
                    &value("--statement-timeout-ms"),
                    "--statement-timeout-ms",
                ));
            }
            "--repl-addr" => repl_addr = Some(value("--repl-addr")),
            "--replicate-from" => replicate_from = Some(value("--replicate-from")),
            "--auto-checkpoint-wal-bytes" => {
                auto_checkpoint_wal_bytes = Some(parse(
                    &value("--auto-checkpoint-wal-bytes"),
                    "--auto-checkpoint-wal-bytes",
                ));
            }
            "--shards" => shards = Some(parse(&value("--shards"), "--shards")),
            "--metrics-addr" => metrics_addr = Some(value("--metrics-addr")),
            "--max-result-buffer-bytes" => {
                max_result_buffer_bytes = parse(
                    &value("--max-result-buffer-bytes"),
                    "--max-result-buffer-bytes",
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: elephant-serve [--addr HOST:PORT] [--disk] \
                     [--exec-mode row|columnar|auto] [--rows N] \
                     [--seed N] [--queue N] [--no-data] [--data-dir PATH] \
                     [--fsync always|off|every_n:N] [--slow-query-us N] \
                     [--statement-timeout-ms N] [--repl-addr HOST:PORT] \
                     [--replicate-from HOST:PORT] [--auto-checkpoint-wal-bytes N] \
                     [--shards N (default: available parallelism; 1 with replication)] \
                     [--metrics-addr HOST:PORT (Prometheus text format on GET /metrics)] \
                     [--max-result-buffer-bytes N (v2 per-response cap, default 64 MiB)]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag '{other}' (try --help)");
                exit(2);
            }
        }
    }

    let durable = data_dir.is_some();
    let config_role_follower = replicate_from.clone();
    // Default to one shard per core; replication replays exactly one WAL,
    // so replicated servers default to a single shard instead.
    let shards = shards.unwrap_or_else(|| {
        if repl_addr.is_some() || replicate_from.is_some() {
            1
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    });
    let mut config = ServerConfig {
        addr,
        queue_capacity: queue,
        in_memory,
        exec_mode,
        files: Vec::new(),
        data_dir,
        fsync,
        slow_query_us,
        statement_timeout_ms,
        repl_addr,
        replicate_from,
        auto_checkpoint_wal_bytes,
        shards,
        metrics_addr,
        max_result_buffer_bytes,
    };
    if with_data {
        config = config.with_standard_pipeline_data(rows, seed);
    }

    let handle = match start(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("startup failed: {e}");
            exit(1);
        }
    };
    let role = match (handle.repl_addr(), config_role_follower) {
        (Some(repl), _) => format!("leader, replicating on {repl}"),
        (None, Some(upstream)) => format!("follower of {upstream}"),
        (None, None) => "standalone".to_string(),
    };
    println!(
        "elephant-serve listening on {} ({} profile, {exec_mode} execution, {} storage, \
         {shards} shard{}, {role}); send SHUTDOWN to stop",
        handle.local_addr(),
        if in_memory { "in-memory" } else { "disk-based" },
        if durable { "durable" } else { "volatile" },
        if shards == 1 { "" } else { "s" },
    );
    if let Some(metrics) = handle.metrics_addr() {
        println!("metrics exposition on http://{metrics}/metrics");
    }
    handle.join();
    println!("elephant-serve drained, bye");
}

fn parse<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse '{text}'");
        exit(2);
    })
}
