//! `elephant-ctl` — one-shot protocol client for scripts, CI, and
//! debugging.
//!
//! ```text
//! elephant-ctl [--addr HOST:PORT] <command words...>
//! ```
//!
//! Joins the remaining arguments into one protocol command, sends it over
//! a fresh connection, prints the response body to stdout, and exits 0.
//! Server errors print `<CODE> <message>` to stderr and exit 1; transport
//! trouble exits 2. Examples:
//!
//! ```text
//! elephant-ctl QUERY "SELECT count(*) AS n FROM t"
//! elephant-ctl STATS
//! elephant-ctl TRACE q42
//! elephant-ctl SHUTDOWN
//! ```
//!
//! Multi-line payloads (`INSPECT` pipeline sources) can be piped instead:
//! `elephant-ctl --stdin` reads the entire command from stdin and sends it
//! as one frame, letting the client pick length-prefixed framing.
//!
//! Bulk modes read one protocol command per stdin line and use the v2
//! wire (`HELLO v2`):
//!
//! - `--pipeline` keeps every command in flight at once on a
//!   [`PipelineClient`] and prints each response in order, separated by
//!   blank lines. Any command failing marks the exit code but the rest
//!   still run.
//! - `--batch` joins the lines (which must be bare SQL, no verb) into ONE
//!   `BATCH` frame, sharing a single round trip and — on a single shard —
//!   a single WAL group commit.
//!
//! ```text
//! printf 'QUERY INSERT INTO t VALUES (1)\nQUERY SELECT count(*) AS n FROM t\n' \
//!     | elephant-ctl --pipeline
//! printf 'INSERT INTO t VALUES (1)\nINSERT INTO t VALUES (2)\n' \
//!     | elephant-ctl --batch
//! ```

use elephant_server::{ClientError, ElephantClient, PipelineClient};
use std::io::Read;
use std::process::exit;

fn main() {
    let mut addr = "127.0.0.1:5462".to_string();
    let mut from_stdin = false;
    let mut pipeline = false;
    let mut batch = false;
    let mut words: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                addr = args.next().unwrap_or_else(|| {
                    eprintln!("--addr needs a value");
                    exit(2);
                });
            }
            "--stdin" => from_stdin = true,
            "--pipeline" => pipeline = true,
            "--batch" => batch = true,
            "--help" | "-h" => {
                println!(
                    "usage: elephant-ctl [--addr HOST:PORT] <command words...>\n       \
                     elephant-ctl [--addr HOST:PORT] --stdin     (read the frame from stdin)\n       \
                     elephant-ctl [--addr HOST:PORT] --pipeline  (one command per stdin line, all in flight over v2)\n       \
                     elephant-ctl [--addr HOST:PORT] --batch     (one SQL statement per stdin line, one BATCH frame over v2)"
                );
                return;
            }
            _ => {
                words.push(arg);
                words.extend(args.by_ref());
            }
        }
    }

    if pipeline && batch {
        eprintln!("--pipeline and --batch are mutually exclusive");
        exit(2);
    }
    if pipeline || batch {
        run_bulk(&addr, pipeline);
        return;
    }

    let command = if from_stdin {
        let mut buf = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
            eprintln!("reading stdin: {e}");
            exit(2);
        }
        buf.trim_end_matches('\n').to_string()
    } else {
        words.join(" ")
    };
    if command.is_empty() {
        eprintln!("no command given (try --help)");
        exit(2);
    }

    let mut client = match ElephantClient::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("connect {addr}: {e}");
            exit(2);
        }
    };
    match client.send(&command) {
        Ok(body) => println!("{body}"),
        Err(ClientError::Server(e)) => {
            eprintln!("{e}");
            exit(1);
        }
        Err(e) => {
            eprintln!("{e}");
            exit(2);
        }
    }
}

/// `--pipeline` / `--batch`: one line per command (or statement) on stdin,
/// sent over one v2 connection.
fn run_bulk(addr: &str, pipeline: bool) {
    let mut buf = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
        eprintln!("reading stdin: {e}");
        exit(2);
    }
    let lines: Vec<&str> = buf.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        eprintln!("no commands on stdin (try --help)");
        exit(2);
    }

    let mut client = match PipelineClient::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("connect {addr}: {e}");
            exit(2);
        }
    };

    if pipeline {
        match client.pipeline(&lines) {
            Ok(results) => {
                let mut failed = false;
                for (i, result) in results.iter().enumerate() {
                    if i > 0 {
                        println!();
                    }
                    match result {
                        Ok(body) => println!("{body}"),
                        Err(e) => {
                            failed = true;
                            eprintln!("command {}: {e}", i + 1);
                        }
                    }
                }
                if failed {
                    exit(1);
                }
            }
            Err(e) => {
                eprintln!("{e}");
                exit(2);
            }
        }
    } else {
        match client.batch(&lines) {
            Ok(bodies) => {
                for (i, body) in bodies.iter().enumerate() {
                    if i > 0 {
                        println!();
                    }
                    println!("{body}");
                }
            }
            Err(ClientError::Server(e)) => {
                eprintln!("{e}");
                exit(1);
            }
            Err(e) => {
                eprintln!("{e}");
                exit(2);
            }
        }
    }
}
