//! `elephant-ctl` — one-shot protocol client for scripts, CI, and
//! debugging.
//!
//! ```text
//! elephant-ctl [--addr HOST:PORT] <command words...>
//! ```
//!
//! Joins the remaining arguments into one protocol command, sends it over
//! a fresh connection, prints the response body to stdout, and exits 0.
//! Server errors print `<CODE> <message>` to stderr and exit 1; transport
//! trouble exits 2. Examples:
//!
//! ```text
//! elephant-ctl QUERY "SELECT count(*) AS n FROM t"
//! elephant-ctl STATS
//! elephant-ctl TRACE q42
//! elephant-ctl SHUTDOWN
//! ```
//!
//! Multi-line payloads (`INSPECT` pipeline sources) can be piped instead:
//! `elephant-ctl --stdin` reads the entire command from stdin and sends it
//! as one frame, letting the client pick length-prefixed framing.

use elephant_server::{ClientError, ElephantClient};
use std::io::Read;
use std::process::exit;

fn main() {
    let mut addr = "127.0.0.1:5462".to_string();
    let mut from_stdin = false;
    let mut words: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                addr = args.next().unwrap_or_else(|| {
                    eprintln!("--addr needs a value");
                    exit(2);
                });
            }
            "--stdin" => from_stdin = true,
            "--help" | "-h" => {
                println!(
                    "usage: elephant-ctl [--addr HOST:PORT] <command words...>\n       \
                     elephant-ctl [--addr HOST:PORT] --stdin   (read the frame from stdin)"
                );
                return;
            }
            _ => {
                words.push(arg);
                words.extend(args.by_ref());
            }
        }
    }

    let command = if from_stdin {
        let mut buf = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
            eprintln!("reading stdin: {e}");
            exit(2);
        }
        buf.trim_end_matches('\n').to_string()
    } else {
        words.join(" ")
    };
    if command.is_empty() {
        eprintln!("no command given (try --help)");
        exit(2);
    }

    let mut client = match ElephantClient::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("connect {addr}: {e}");
            exit(2);
        }
    };
    match client.send(&command) {
        Ok(body) => println!("{body}"),
        Err(ClientError::Server(e)) => {
            eprintln!("{e}");
            exit(1);
        }
        Err(e) => {
            eprintln!("{e}");
            exit(2);
        }
    }
}
