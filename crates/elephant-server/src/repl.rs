//! Replication role state shared between `start()` and the executor.
//!
//! The executor answers `REPLICA`, `LAG`, and the replication section of
//! `STATS` from this snapshot of the topology: which role the server plays,
//! the leader's follower registry (set after the replication listener
//! binds, hence the `OnceLock`), and the follower's own progress counters.

use elephant_repl::{FollowerStatus, LeaderRegistry};
use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};

/// Which part a server plays in a replication topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplRole {
    /// No replication configured.
    Standalone,
    /// Owns the durable store and streams its WAL to followers.
    Leader,
    /// Applies the leader's WAL into a read-only engine.
    Follower,
}

impl ReplRole {
    /// Lowercase label used in `STATS` and `REPLICA` bodies.
    pub fn label(&self) -> &'static str {
        match self {
            ReplRole::Standalone => "standalone",
            ReplRole::Leader => "leader",
            ReplRole::Follower => "follower",
        }
    }
}

/// Topology info the executor renders for `REPLICA` / `LAG` / `STATS`.
#[derive(Debug)]
pub(crate) struct ReplState {
    role: ReplRole,
    /// Follower mode: the leader's replication address.
    leader_addr: Option<String>,
    /// Leader mode: per-follower counters, set once the listener is up.
    registry: OnceLock<Arc<LeaderRegistry>>,
    /// Follower mode: the apply loop's progress.
    follower: Option<Arc<FollowerStatus>>,
}

impl ReplState {
    pub fn standalone() -> ReplState {
        ReplState {
            role: ReplRole::Standalone,
            leader_addr: None,
            registry: OnceLock::new(),
            follower: None,
        }
    }

    pub fn leader() -> ReplState {
        ReplState {
            role: ReplRole::Leader,
            leader_addr: None,
            registry: OnceLock::new(),
            follower: None,
        }
    }

    pub fn follower(leader_addr: String, status: Arc<FollowerStatus>) -> ReplState {
        ReplState {
            role: ReplRole::Follower,
            leader_addr: Some(leader_addr),
            registry: OnceLock::new(),
            follower: Some(status),
        }
    }

    pub fn role(&self) -> ReplRole {
        self.role
    }

    /// Install the leader registry once the replication listener is bound.
    pub fn set_registry(&self, registry: Arc<LeaderRegistry>) {
        let _ = self.registry.set(registry);
    }

    /// The `REPLICA` body: role plus one line per follower the leader has
    /// fed (leaders), or the upstream pointer (followers).
    pub fn render_replica(&self, committed_lsn: Option<u64>) -> String {
        let mut s = format!("role {}", self.role.label());
        match self.role {
            ReplRole::Leader => {
                if let Some(lsn) = committed_lsn {
                    let _ = write!(s, "\ncommitted_lsn {lsn}");
                }
                if let Some(reg) = self.registry.get() {
                    let _ = write!(s, "\nfollowers_connected {}", reg.connected());
                    if let Some(min) = reg.min_acked_lsn() {
                        let _ = write!(s, "\nmin_acked_lsn {min}");
                    }
                    for v in reg.views() {
                        let _ = write!(
                            s,
                            "\nfollower {} connected={} acked_lsn={} bytes_shipped={} snapshots_sent={}",
                            v.peer,
                            u8::from(v.connected),
                            v.acked_lsn,
                            v.bytes_shipped,
                            v.snapshots_sent
                        );
                    }
                } else {
                    let _ = write!(s, "\nfollowers_connected 0");
                }
            }
            ReplRole::Follower => {
                if let Some(addr) = &self.leader_addr {
                    let _ = write!(s, "\nleader {addr}");
                }
                if let Some(f) = &self.follower {
                    let _ = write!(s, "\n{}", render_follower(f));
                }
            }
            ReplRole::Standalone => {}
        }
        s
    }

    /// The `LAG` body: the smallest parseable surface a routing client
    /// needs — the leader's committed LSN, or the follower's applied vs.
    /// leader LSN.
    pub fn render_lag(&self, committed_lsn: Option<u64>) -> String {
        let mut s = format!("role {}", self.role.label());
        match self.role {
            ReplRole::Leader | ReplRole::Standalone => {
                if let Some(lsn) = committed_lsn {
                    let _ = write!(s, "\ncommitted_lsn {lsn}");
                }
                if let Some(reg) = self.registry.get() {
                    if let Some(min) = reg.min_acked_lsn() {
                        let _ = write!(s, "\nmin_acked_lsn {min}");
                    }
                }
            }
            ReplRole::Follower => {
                if let Some(f) = &self.follower {
                    let _ = write!(s, "\n{}", render_follower(f));
                }
            }
        }
        s
    }

    /// Replication lines appended to the `STATS` body.
    pub fn stats_lines(&self, committed_lsn: Option<u64>) -> String {
        let mut s = format!("repl_role {}", self.role.label());
        match self.role {
            ReplRole::Leader => {
                if let Some(lsn) = committed_lsn {
                    let _ = write!(s, "\nrepl_committed_lsn {lsn}");
                }
                if let Some(reg) = self.registry.get() {
                    let _ = write!(s, "\nrepl_followers_connected {}", reg.connected());
                    let views = reg.views();
                    let bytes: u64 = views.iter().map(|v| v.bytes_shipped).sum();
                    let snaps: u64 = views.iter().map(|v| v.snapshots_sent).sum();
                    let _ = write!(s, "\nrepl_bytes_shipped {bytes}");
                    let _ = write!(s, "\nrepl_snapshots_sent {snaps}");
                    if let Some(min) = reg.min_acked_lsn() {
                        let _ = write!(s, "\nrepl_min_acked_lsn {min}");
                        if let Some(lsn) = committed_lsn {
                            let _ = write!(s, "\nrepl_lag_lsns {}", lsn.saturating_sub(min));
                        }
                    }
                }
            }
            ReplRole::Follower => {
                if let Some(f) = &self.follower {
                    let o = Ordering::Acquire;
                    let _ = write!(s, "\nrepl_applied_lsn {}", f.applied_lsn.load(o));
                    let _ = write!(s, "\nrepl_leader_lsn {}", f.leader_lsn.load(o));
                    let _ = write!(s, "\nrepl_lag_lsns {}", f.lag_lsns());
                    let _ = write!(
                        s,
                        "\nrepl_bytes_received {}",
                        f.bytes_received.load(Ordering::Relaxed)
                    );
                    let _ = write!(
                        s,
                        "\nrepl_snapshots_loaded {}",
                        f.snapshots_loaded.load(Ordering::Relaxed)
                    );
                    let _ = write!(
                        s,
                        "\nrepl_reconnects {}",
                        f.reconnects.load(Ordering::Relaxed)
                    );
                    let _ = write!(s, "\nrepl_connected {}", u8::from(f.connected.load(o)));
                }
            }
            ReplRole::Standalone => {}
        }
        s
    }
}

fn render_follower(f: &FollowerStatus) -> String {
    let o = Ordering::Acquire;
    let mut s = format!(
        "applied_lsn {}\nleader_lsn {}\nlag_lsns {}\nconnected {}\nreconnects {}\nsnapshots_loaded {}",
        f.applied_lsn.load(o),
        f.leader_lsn.load(o),
        f.lag_lsns(),
        u8::from(f.connected.load(o)),
        f.reconnects.load(Ordering::Relaxed),
        f.snapshots_loaded.load(Ordering::Relaxed),
    );
    if let Some(e) = f
        .last_error
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
    {
        let _ = write!(s, "\nlast_error {}", e.replace('\n', " "));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standalone_renders_bare_role() {
        let st = ReplState::standalone();
        assert_eq!(st.render_replica(None), "role standalone");
        assert_eq!(st.render_lag(Some(7)), "role standalone\ncommitted_lsn 7");
        assert_eq!(st.stats_lines(None), "repl_role standalone");
    }

    #[test]
    fn leader_renders_followers_and_watermarks() {
        let st = ReplState::leader();
        assert_eq!(
            st.render_replica(Some(9)),
            "role leader\ncommitted_lsn 9\nfollowers_connected 0"
        );
        let reg = Arc::new(LeaderRegistry::default());
        let entry = reg.register("10.0.0.2:9999");
        entry.acked_lsn.store(8, Ordering::Release);
        entry.bytes_shipped.store(512, Ordering::Release);
        st.set_registry(Arc::clone(&reg));
        let body = st.render_replica(Some(9));
        assert!(body.contains("followers_connected 1"), "{body}");
        assert!(body.contains("min_acked_lsn 8"), "{body}");
        assert!(
            body.contains("follower 10.0.0.2:9999 connected=1 acked_lsn=8 bytes_shipped=512"),
            "{body}"
        );
        let stats = st.stats_lines(Some(9));
        assert!(stats.contains("repl_lag_lsns 1"), "{stats}");
        assert!(stats.contains("repl_bytes_shipped 512"), "{stats}");
    }

    #[test]
    fn follower_renders_progress_and_last_error() {
        let status = Arc::new(FollowerStatus::default());
        status.applied_lsn.store(5, Ordering::Release);
        status.leader_lsn.store(8, Ordering::Release);
        status.set_error("feed hole");
        let st = ReplState::follower("127.0.0.1:5463".into(), Arc::clone(&status));
        let body = st.render_lag(None);
        assert!(body.starts_with("role follower"), "{body}");
        assert!(body.contains("applied_lsn 5"), "{body}");
        assert!(body.contains("lag_lsns 3"), "{body}");
        assert!(body.contains("last_error feed hole"), "{body}");
        assert!(st.render_replica(None).contains("leader 127.0.0.1:5463"));
    }
}
