#![warn(missing_docs)]
//! A concurrent SQL/inspection serving layer over the embedded engine.
//!
//! The paper's system runs pipelines *inside* a database server; this crate
//! gives the reproduction the same deployment shape. It wraps the embedded
//! [`sqlengine::Engine`] in a small TCP server with a newline / length-
//! prefixed text protocol (see [`protocol`] and `docs/PROTOCOL.md`):
//!
//! | verb | effect |
//! |------|--------|
//! | `QUERY` | run one SQL statement, rows come back as CSV |
//! | `BATCH` | run many statements from one frame, amortizing framing and group commit |
//! | `PREPARE` / `EXECUTE` | plan once via the engine's LRU plan cache, run many times; `$n` placeholders bind at `EXECUTE name (args)` |
//! | `EXPLAIN` | render the optimized plan |
//! | `INSPECT` | run an ML pipeline through the SQL backend with bias checks |
//! | `SET` | per-session options, e.g. `SET exec_mode row\|columnar\|auto` |
//! | `STATS` | counters, queue depth, latency percentiles, plan-cache hit rate, storage/recovery/replication stats |
//! | `TRACE` | distributed tracing: `TRACE [n]` lists recent root spans, `TRACE q<id>` renders one query's span tree (see `docs/OBSERVABILITY.md`) |
//! | `CHECKPOINT` | snapshot all tables to the data directory and truncate the WAL |
//! | `REPLICA` | replication topology: role, followers, shipped bytes, watermarks |
//! | `LAG` | replication watermarks (committed vs. applied LSN) for read routing |
//! | `SHUTDOWN` | graceful drain |
//!
//! Sending `HELLO v2` as the first command upgrades the connection to the
//! pipelined v2 wire protocol ([`proto2`]): sequence-tagged frames, many
//! requests in flight per connection, and chunked streaming of large
//! results under a configurable result-buffer cap. Clients that never send
//! `HELLO` keep speaking v1 byte-identically.
//!
//! Started with a `--data-dir` (or [`ServerConfig::data_dir`]), the server
//! write-ahead-logs every acknowledged DDL/DML through `elephant-store` and
//! recovers snapshot + WAL on startup — a `kill -9` loses nothing that was
//! acknowledged under `--fsync always`. See `docs/STORAGE.md`.
//!
//! Adding `--repl-addr` makes a durable server a replication **leader**:
//! it streams committed WAL frames to every follower that connects.
//! `--replicate-from` starts a **follower**: a volatile, permanently
//! read-only server that bootstraps from the leader's snapshot, applies
//! its WAL in LSN order, and serves byte-identical reads. [`client::ReplicatedClient`]
//! routes reads across followers and writes to the leader. See
//! `docs/REPLICATION.md`.
//!
//! # Architecture
//!
//! The engine is not `Send` (its catalog shares view definitions through
//! `Rc`), so each engine is pinned to its own executor thread; with
//! `--shards N` the server runs N of them and a shard router assigns
//! tables to shards by name hash (see [`shard_of`] and `docs/SHARDING.md`):
//!
//! ```text
//! client ──TCP──▶ session thread ──▶ shard router ──bounded mpsc──▶ executor 0 (Engine + WAL 0)
//! client ──TCP──▶ session thread ──▶      │        ──bounded mpsc──▶ executor 1 (Engine + WAL 1)
//!                      ◀── reply channel ─┘
//! ```
//!
//! Single-shard statements route directly; cross-shard read-only queries
//! run scatter-gather (foreign tables are exported to a coordinator shard
//! which runs the whole plan); cross-shard writes are refused with the
//! typed `ERR_CROSS_SHARD`. Each executor drains its queue in batches
//! wrapped in a WAL **group commit**: one fsync acknowledges every write
//! in the batch (`wal_group_commits` in `STATS`).
//!
//! Each connection gets a session thread that parses frames and holds the
//! session id; prepared statements are namespaced per session inside the
//! executor. The job queues are **bounded** `sync_channel`s: a slow
//! executor triggers admission control (retryable `ERR_BUSY`) instead of
//! buffering unboundedly. `SHUTDOWN` travels through the queue, so
//! everything enqueued before it still completes — the executor flips a
//! flag that stops the accept loop, sessions finish and hang up, and when
//! the last queue sender drops the executors exit.
//!
//! # Quick start
//!
//! ```
//! use elephant_server::{start, ElephantClient, ServerConfig};
//!
//! let handle = start(ServerConfig::default()).unwrap();
//! let mut c = ElephantClient::connect(handle.local_addr()).unwrap();
//! c.query_raw("CREATE TABLE t (a int)").unwrap();
//! c.query_raw("INSERT INTO t VALUES (1), (2)").unwrap();
//! assert_eq!(c.query_raw("SELECT sum(a) AS s FROM t").unwrap(), "s\n3\n");
//! c.shutdown().unwrap();
//! drop(c);
//! handle.join();
//! ```

pub mod client;
mod executor;
pub mod metrics;
pub mod proto2;
pub mod protocol;
mod repl;
mod scrape;
pub mod server;
mod session;
mod shard;

pub use client::wire::PipelineClient;
pub use client::{
    ClientError, ClientResult, ElephantClient, ReplicatedClient, RetryPolicy, ServerError,
};
pub use metrics::{LatencyHistogram, Metrics};
pub use protocol::{Command, TraceRequest, MAX_FRAME};
pub use repl::ReplRole;
pub use server::{start, ServerConfig, ServerHandle};
pub use shard::shard_of;
