#![warn(missing_docs)]
//! A concurrent SQL/inspection serving layer over the embedded engine.
//!
//! The paper's system runs pipelines *inside* a database server; this crate
//! gives the reproduction the same deployment shape. It wraps the embedded
//! [`sqlengine::Engine`] in a small TCP server with a newline / length-
//! prefixed text protocol (see [`protocol`] and `docs/PROTOCOL.md`):
//!
//! | verb | effect |
//! |------|--------|
//! | `QUERY` | run one SQL statement, rows come back as CSV |
//! | `PREPARE` / `EXECUTE` | plan once via the engine's LRU plan cache, run many times |
//! | `EXPLAIN` | render the optimized plan |
//! | `INSPECT` | run an ML pipeline through the SQL backend with bias checks |
//! | `SET` | per-session options, e.g. `SET exec_mode row\|columnar\|auto` |
//! | `STATS` | counters, queue depth, latency percentiles, plan-cache hit rate, storage/recovery/replication stats |
//! | `CHECKPOINT` | snapshot all tables to the data directory and truncate the WAL |
//! | `REPLICA` | replication topology: role, followers, shipped bytes, watermarks |
//! | `LAG` | replication watermarks (committed vs. applied LSN) for read routing |
//! | `SHUTDOWN` | graceful drain |
//!
//! Started with a `--data-dir` (or [`ServerConfig::data_dir`]), the server
//! write-ahead-logs every acknowledged DDL/DML through `elephant-store` and
//! recovers snapshot + WAL on startup — a `kill -9` loses nothing that was
//! acknowledged under `--fsync always`. See `docs/STORAGE.md`.
//!
//! Adding `--repl-addr` makes a durable server a replication **leader**:
//! it streams committed WAL frames to every follower that connects.
//! `--replicate-from` starts a **follower**: a volatile, permanently
//! read-only server that bootstraps from the leader's snapshot, applies
//! its WAL in LSN order, and serves byte-identical reads. [`client::ReplicatedClient`]
//! routes reads across followers and writes to the leader. See
//! `docs/REPLICATION.md`.
//!
//! # Architecture
//!
//! The engine is not `Send` (its catalog shares view definitions through
//! `Rc`), so concurrency comes from pipelining, not data parallelism:
//!
//! ```text
//! client ──TCP──▶ session thread ──bounded mpsc──▶ executor thread (owns Engine)
//! client ──TCP──▶ session thread ──────┘                 │
//!                      ◀───────────── reply channel ─────┘
//! ```
//!
//! Each connection gets a session thread that parses frames and holds the
//! session id; prepared statements are namespaced per session inside the
//! executor. The job queue is a **bounded** `sync_channel`: a slow executor
//! blocks sessions (and their clients) instead of buffering unboundedly.
//! `SHUTDOWN` travels through the queue, so everything enqueued before it
//! still completes — the executor flips a flag that stops the accept loop,
//! sessions finish and hang up, and when the last queue sender drops the
//! executor exits.
//!
//! # Quick start
//!
//! ```
//! use elephant_server::{start, ElephantClient, ServerConfig};
//!
//! let handle = start(ServerConfig::default()).unwrap();
//! let mut c = ElephantClient::connect(handle.local_addr()).unwrap();
//! c.query_raw("CREATE TABLE t (a int)").unwrap();
//! c.query_raw("INSERT INTO t VALUES (1), (2)").unwrap();
//! assert_eq!(c.query_raw("SELECT sum(a) AS s FROM t").unwrap(), "s\n3\n");
//! c.shutdown().unwrap();
//! drop(c);
//! handle.join();
//! ```

pub mod client;
mod executor;
pub mod metrics;
pub mod protocol;
mod repl;
pub mod server;
mod session;

pub use client::{
    ClientError, ClientResult, ElephantClient, ReplicatedClient, RetryPolicy, ServerError,
};
pub use metrics::{LatencyHistogram, Metrics};
pub use protocol::{Command, MAX_FRAME};
pub use repl::ReplRole;
pub use server::{start, ServerConfig, ServerHandle};
