//! `INSPECT` parity across execution engines: every stock pipeline must
//! produce a byte-identical inspection report whether the session runs on
//! the row engine or the vectorized columnar engine — same verdicts, same
//! per-operator bias numbers, same row cardinalities. Only the `time_us=`
//! values may differ, so they are normalized before comparison.

use elephant_server::{start, ElephantClient, ServerConfig};

/// Replace every `time_us=<digits>` with `time_us=_`; timings are the one
/// legitimately nondeterministic part of a report.
fn strip_times(report: &str) -> String {
    let mut out = String::with_capacity(report.len());
    let mut rest = report;
    while let Some(i) = rest.find("time_us=") {
        let after = i + "time_us=".len();
        out.push_str(&rest[..after]);
        out.push('_');
        rest = rest[after..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

fn stat(stats: &str, key: &str) -> u64 {
    stats
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{key} ")))
        .unwrap_or_else(|| panic!("missing '{key}' in stats:\n{stats}"))
        .parse()
        .unwrap()
}

#[test]
fn stock_pipelines_report_identically_under_columnar_execution() {
    let handle = start(ServerConfig::default().with_standard_pipeline_data(90, 11)).unwrap();
    let mut c = ElephantClient::connect(handle.local_addr()).unwrap();

    let pipelines: [(&str, &[&str]); 4] = [
        ("@healthcare", &["race", "age_group"]),
        ("@compas", &["race", "sex"]),
        ("@adult simple", &["race", "sex"]),
        ("@adult complex", &["race", "sex"]),
    ];

    // Row engine first (the server default), then the same session switched
    // to columnar; the engine is shared, so reports must match run-to-run.
    let mut row_reports = Vec::new();
    for (pipeline, columns) in &pipelines {
        let report = c.inspect(columns, 0.3, pipeline).unwrap();
        assert!(report.contains("inspection verdict="), "{report}");
        row_reports.push(report);
    }
    let batches_before = stat(&c.stats().unwrap(), "batches_executed");

    assert_eq!(
        c.send("SET exec_mode columnar").unwrap(),
        "set exec_mode columnar"
    );
    for ((pipeline, columns), row_report) in pipelines.iter().zip(&row_reports) {
        let col_report = c.inspect(columns, 0.3, pipeline).unwrap();
        assert_eq!(
            strip_times(&col_report),
            strip_times(row_report),
            "inspection diverged under columnar execution: {pipeline}"
        );
    }

    // The columnar pass really was vectorized: the engine counted batches.
    let stats = c.stats().unwrap();
    assert!(stats.contains("exec_mode columnar"), "{stats}");
    assert!(
        stat(&stats, "batches_executed") > batches_before,
        "columnar INSPECT executed no batches:\n{stats}"
    );

    // Auto mode must agree too (it picks per plan, bridging nothing).
    assert_eq!(c.send("SET exec_mode auto").unwrap(), "set exec_mode auto");
    let (pipeline, columns) = &pipelines[0];
    let auto_report = c.inspect(columns, 0.3, pipeline).unwrap();
    assert_eq!(strip_times(&auto_report), strip_times(&row_reports[0]));

    // Unknown variables and bad values are structured parse errors and do
    // not disturb the session's current mode.
    let err = c.send("SET exec_mode sideways").unwrap_err();
    assert!(err.to_string().contains("exec_mode"), "{err}");
    let err = c.send("SET jit on").unwrap_err();
    assert!(
        err.to_string().contains("unknown session variable"),
        "{err}"
    );
    assert!(c.stats().unwrap().contains("exec_mode auto"));

    c.shutdown().unwrap();
    drop(c);
    handle.join();
}

/// A fresh session starts from the server default, not from another
/// session's `SET`.
#[test]
fn set_exec_mode_is_session_scoped() {
    let handle = start(ServerConfig::default()).unwrap();
    let mut a = ElephantClient::connect(handle.local_addr()).unwrap();
    let mut b = ElephantClient::connect(handle.local_addr()).unwrap();

    a.query_raw("CREATE TABLE t (x int)").unwrap();
    a.query_raw("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    a.send("SET exec_mode columnar").unwrap();
    assert!(a.stats().unwrap().contains("exec_mode columnar"));
    // Session b still reports the server default.
    assert!(b.stats().unwrap().contains("exec_mode row"));
    assert_eq!(b.query_raw("SELECT sum(x) AS s FROM t").unwrap(), "s\n6\n");
    assert_eq!(a.query_raw("SELECT sum(x) AS s FROM t").unwrap(), "s\n6\n");

    a.shutdown().unwrap();
    drop(a);
    drop(b);
    handle.join();
}
