//! Two-phase-commit crash chaos: four writers stream cross-shard
//! transactions (one row into each of two tables on different shards) on a
//! 4-shard `--fsync always` server while a `kill -9` lands inside an armed
//! 2PC phase — before the prepare append, before the prepare fsync, before
//! the decision write, and after the decision but before the commit marker.
//! A `delay_us` failpoint widens each phase so the kill reliably interrupts
//! it.
//!
//! Invariants after restart, per writer pair `(a, b)`:
//!
//! * every **acknowledged** transaction is fully present on BOTH shards
//!   (the ack happens only after the commit decision is durable);
//! * no transaction is half-applied: `a` and `b` hold byte-identical value
//!   sets (at most the one in-flight transaction beyond the acked prefix,
//!   committed on both or on neither — presumed abort);
//! * the recovered tables are byte-identical to a single-shard oracle
//!   server fed the same committed prefix.
//!
//! The CI `txn-chaos` job runs this once per phase (`TXN_CHAOS_PHASE`)
//! under seeds 1/2/3; without the variable every phase runs in sequence.

use elephant_server::{shard_of, ElephantClient};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARDS: usize = 4;
const WRITERS: usize = 4;
/// Every writer needs at least this many acknowledged transactions before
/// the kill, so recovery replays real prepare/commit frames on every shard.
const MIN_ACKS: u64 = 2;

/// The armed 2PC phase windows, in protocol order.
const PHASES: [&str; 4] = [
    "txn.prepare_append",
    "txn.prepare_fsync",
    "txn.decision_write",
    "txn.commit_append",
];

fn serve(dir: &Path, shards: usize, faults: Option<&str>) -> (Child, SocketAddr) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_elephant-serve"));
    cmd.args(["--addr", "127.0.0.1:0", "--no-data", "--fsync", "always"])
        .arg("--shards")
        .arg(shards.to_string())
        .arg("--data-dir")
        .arg(dir)
        .stdout(Stdio::piped());
    match faults {
        Some(spec) => cmd.env("ELEPHANT_FAULTS", spec),
        None => cmd.env_remove("ELEPHANT_FAULTS"),
    };
    let mut child = cmd.spawn().expect("spawn elephant-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read startup line");
    let addr = line
        .split_whitespace()
        .nth(3)
        .unwrap_or_else(|| panic!("no address in startup line: {line}"))
        .parse()
        .expect("parse bound address");
    (child, addr)
}

/// Writer `i`'s table pair, provably split across two shards.
fn pair(i: usize) -> (String, String) {
    let a = (0..64)
        .map(|j| format!("w{i}t{j}"))
        .next()
        .expect("name pool");
    let b = (1..64)
        .map(|j| format!("w{i}t{j}"))
        .find(|n| shard_of(n, SHARDS) != shard_of(&a, SHARDS))
        .expect("64 names must hit at least two of four shards");
    (a, b)
}

fn select_all(c: &mut ElephantClient, table: &str) -> String {
    c.query_raw(&format!("SELECT x FROM {table} ORDER BY x"))
        .unwrap()
}

fn run_phase(phase: &str) {
    let dir = std::env::temp_dir().join(format!(
        "elephant-txn-chaos-{}-{}",
        phase.replace('.', "_"),
        std::process::id()
    ));
    let oracle_dir = dir.join("oracle");
    let _ = std::fs::remove_dir_all(&dir);

    // Arm the phase window: every hit of the site sleeps, so a randomly
    // timed kill lands inside this phase with high probability (the armed
    // site dominates transaction latency).
    let spec = format!("{phase}=delay_us:250000");
    let (mut child, addr) = serve(&dir, SHARDS, Some(&spec));

    let mut admin = ElephantClient::connect(addr).unwrap();
    let pairs: Vec<(String, String)> = (0..WRITERS).map(pair).collect();
    for (a, b) in &pairs {
        admin
            .query_raw(&format!("CREATE TABLE {a} (x int)"))
            .unwrap();
        admin
            .query_raw(&format!("CREATE TABLE {b} (x int)"))
            .unwrap();
    }

    // Writer i streams transaction k: one row into each half of its pair.
    // The ack counter moves only after the server acknowledged, so the
    // acked set is always the contiguous prefix 1..=count.
    let acks: Vec<Arc<AtomicU64>> = (0..WRITERS).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let mut writers = Vec::new();
    for (i, (a, b)) in pairs.iter().enumerate() {
        let (a, b) = (a.clone(), b.clone());
        let acked = Arc::clone(&acks[i]);
        writers.push(std::thread::spawn(move || {
            let mut c = match ElephantClient::connect(addr) {
                Ok(c) => c,
                Err(_) => return,
            };
            for k in 1u64..=100_000 {
                let sql = format!("INSERT INTO {a} VALUES ({k}); INSERT INTO {b} VALUES ({k})");
                match c.query_raw(&sql) {
                    Ok(reply) => {
                        assert_eq!(reply, "ok 2", "{sql}");
                        acked.store(k, Ordering::SeqCst);
                    }
                    Err(_) => return, // the kill landed
                }
            }
        }));
    }

    let deadline = Instant::now() + Duration::from_secs(120);
    while acks.iter().any(|a| a.load(Ordering::SeqCst) < MIN_ACKS) {
        assert!(
            Instant::now() < deadline,
            "phase {phase}: writers too slow to reach MIN_ACKS"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // All writers are mid-stream; the armed delay makes it overwhelmingly
    // likely at least one transaction sits inside the phase window now.
    child.kill().unwrap();
    child.wait().unwrap();
    for w in writers {
        w.join().unwrap();
    }
    let acked: Vec<u64> = acks.iter().map(|a| a.load(Ordering::SeqCst)).collect();

    // Restart with the failpoint disarmed: recovery replays per-shard WALs
    // and resolves prepared groups against the coordinator decision log.
    let (mut child, addr) = serve(&dir, SHARDS, None);
    let mut c = ElephantClient::connect(addr).unwrap();
    for (i, (a, b)) in pairs.iter().enumerate() {
        let want = acked[i];
        assert!(want >= MIN_ACKS);
        let body_a = select_all(&mut c, a);
        let body_b = select_all(&mut c, b);
        assert_eq!(
            body_a, body_b,
            "phase {phase}: transaction half-applied between {a} and {b}"
        );
        let rows: Vec<u64> = body_a.lines().skip(1).map(|l| l.parse().unwrap()).collect();
        let total = rows.len() as u64;
        assert!(
            (want..=want + 1).contains(&total),
            "phase {phase}: {a} holds {total} rows for {want} acks"
        );
        assert_eq!(
            rows,
            (1..=total).collect::<Vec<u64>>(),
            "phase {phase}: {a} recovered a non-contiguous prefix"
        );

        // Byte-identical against a single-shard oracle fed the same
        // committed prefix.
        let _ = std::fs::remove_dir_all(&oracle_dir);
        let (mut oracle_child, oracle_addr) = serve(&oracle_dir, 1, None);
        let mut o = ElephantClient::connect(oracle_addr).unwrap();
        o.query_raw(&format!("CREATE TABLE {a} (x int)")).unwrap();
        for k in 1..=total {
            o.query_raw(&format!("INSERT INTO {a} VALUES ({k})"))
                .unwrap();
        }
        let oracle_body = select_all(&mut o, a);
        assert_eq!(
            body_a, oracle_body,
            "phase {phase}: {a} diverged from the 1-shard oracle"
        );
        drop(o);
        oracle_child.kill().unwrap();
        oracle_child.wait().unwrap();
    }

    // The decision log survived and the server still serves transactions.
    let (a, b) = &pairs[0];
    let next = select_all(&mut c, a).lines().count() as u64; // rows + header
    assert_eq!(
        c.query_raw(&format!(
            "INSERT INTO {a} VALUES ({next}); INSERT INTO {b} VALUES ({next})"
        ))
        .unwrap(),
        "ok 2",
        "phase {phase}: post-recovery transaction failed"
    );

    drop(c);
    child.kill().unwrap();
    child.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn acked_transactions_survive_kill_nine_in_every_2pc_phase() {
    match std::env::var("TXN_CHAOS_PHASE") {
        Ok(phase) => {
            assert!(
                PHASES.contains(&phase.as_str()),
                "unknown TXN_CHAOS_PHASE '{phase}' (expected one of {PHASES:?})"
            );
            run_phase(&phase);
        }
        Err(_) => {
            for phase in PHASES {
                run_phase(phase);
            }
        }
    }
}
