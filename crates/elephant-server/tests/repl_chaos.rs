//! Seeded replication chaos: kill followers and leaders mid-stream and
//! hold the topology to the replication invariants:
//!
//! 1. no write acknowledged by the leader is ever missing from a follower
//!    once it reports caught-up — across follower restarts, leader
//!    restarts, and checkpoint-forced snapshot re-bootstraps,
//! 2. a follower that fell behind a WAL truncation converges via a fresh
//!    snapshot instead of diverging,
//! 3. every process drains cleanly through `SHUTDOWN` — no deadlocks.
//!
//! The workload schedule is seeded through `ELEPHANT_FAULT_SEED` (CI runs
//! a fixed seed matrix), so a failure reproduces exactly.

use elephant_server::{start, ElephantClient, ServerConfig};
use etypes::Prng;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Serialize tests: each one spins up multiple servers and threads, and
/// the leader-restart test rebinds a fixed port.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn seed() -> u64 {
    std::env::var("ELEPHANT_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xE1EFA)
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "elephant-repl-chaos-{}-{name}-{}",
        std::process::id(),
        seed()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn leader_config(dir: &Path, repl_addr: &str) -> ServerConfig {
    ServerConfig {
        data_dir: Some(dir.to_path_buf()),
        repl_addr: Some(repl_addr.to_string()),
        ..ServerConfig::default()
    }
}

fn follower_config(leader_repl: &str) -> ServerConfig {
    ServerConfig {
        replicate_from: Some(leader_repl.to_string()),
        ..ServerConfig::default()
    }
}

fn wait_until(what: &str, mut ok: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !ok() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn wait_caught_up(leader: &mut ElephantClient, follower: &mut ElephantClient) {
    let committed = ElephantClient::parse_watermark(&leader.lag().unwrap(), "committed_lsn")
        .expect("leader LAG carries committed_lsn");
    wait_until("follower catch-up", || {
        ElephantClient::parse_watermark(&follower.lag().unwrap(), "applied_lsn")
            .is_some_and(|applied| applied >= committed)
    });
}

/// Every acked value, as the follower serves it, in insertion order.
fn values_on(c: &mut ElephantClient) -> Vec<i64> {
    c.query_raw("SELECT v FROM acked ORDER BY v")
        .unwrap()
        .lines()
        .skip(1)
        .map(|l| l.parse().unwrap())
        .collect()
}

#[test]
fn follower_restart_across_checkpoint_resyncs_from_snapshot() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = Prng::from_stream(seed(), 1);
    let dir = tmp_dir("follower-restart");

    let leader_handle = start(leader_config(&dir, "127.0.0.1:0")).unwrap();
    let repl_addr = leader_handle.repl_addr().unwrap().to_string();
    let mut leader = ElephantClient::connect(leader_handle.local_addr()).unwrap();
    leader.query_raw("CREATE TABLE acked (v int)").unwrap();

    let mut acked: Vec<i64> = Vec::new();
    let mut next_v = 0i64;
    let mut write_batch = |leader: &mut ElephantClient, acked: &mut Vec<i64>, n: usize| {
        for _ in 0..n {
            leader
                .query_raw(&format!("INSERT INTO acked VALUES ({next_v})"))
                .unwrap();
            acked.push(next_v);
            next_v += 1;
        }
    };

    // First follower life: sees the steady-state stream.
    let f_handle = start(follower_config(&repl_addr)).unwrap();
    let mut f = ElephantClient::connect(f_handle.local_addr()).unwrap();
    write_batch(&mut leader, &mut acked, 3 + rng.below(6));
    wait_caught_up(&mut leader, &mut f);
    assert_eq!(values_on(&mut f), acked);
    f.shutdown().unwrap();
    drop(f);
    f_handle.join();

    // While the follower is down: more writes, then a checkpoint truncates
    // the WAL out from under the follower's resume LSN, then more writes.
    write_batch(&mut leader, &mut acked, 3 + rng.below(6));
    leader.checkpoint().unwrap();
    write_batch(&mut leader, &mut acked, 3 + rng.below(6));

    // Second follower life: the leader cannot replay from the follower's
    // LSN (truncated), so convergence must come from a fresh snapshot.
    let f_handle = start(follower_config(&repl_addr)).unwrap();
    let mut f = ElephantClient::connect(f_handle.local_addr()).unwrap();
    wait_caught_up(&mut leader, &mut f);
    assert_eq!(values_on(&mut f), acked, "acked write lost across resync");
    let stats = f.stats().unwrap();
    assert!(
        ElephantClient::parse_watermark(&stats, "repl_snapshots_loaded").unwrap() >= 1,
        "follower converged without a snapshot?\n{stats}"
    );

    f.shutdown().unwrap();
    drop(f);
    f_handle.join();
    leader.shutdown().unwrap();
    drop(leader);
    leader_handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn leader_restart_mid_stream_loses_no_acked_write() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = Prng::from_stream(seed(), 2);
    let dir = tmp_dir("leader-restart");

    // The follower must find the reborn leader at the same address, so pin
    // a concrete port up front (bind :0, note the port, release it).
    let repl_addr = {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().to_string()
    };

    let leader_handle = start(leader_config(&dir, &repl_addr)).unwrap();
    let mut leader = ElephantClient::connect(leader_handle.local_addr()).unwrap();
    leader.query_raw("CREATE TABLE acked (v int)").unwrap();

    let f_handle = start(follower_config(&repl_addr)).unwrap();
    let mut f = ElephantClient::connect(f_handle.local_addr()).unwrap();

    // A writer hammers the leader while the main thread pulls the plug at
    // a seed-chosen moment; only acknowledged inserts count.
    let writer_addr = leader_handle.local_addr();
    let writer = std::thread::spawn(move || {
        let mut acked = Vec::new();
        let mut c = match ElephantClient::connect(writer_addr) {
            Ok(c) => c,
            Err(_) => return acked,
        };
        for v in 0..500i64 {
            match c.query_raw(&format!("INSERT INTO acked VALUES ({v})")) {
                Ok(_) => acked.push(v),
                // Draining or hung up: nothing after this was acked.
                Err(_) => break,
            }
        }
        acked
    });
    std::thread::sleep(Duration::from_millis(20 + rng.below(80) as u64));
    leader.shutdown().unwrap();
    drop(leader);
    leader_handle.join();
    let acked = writer.join().unwrap();
    assert!(!acked.is_empty(), "shutdown beat the first write; reseed");

    // Reborn leader on the same ports; the follower's retry loop finds it.
    let leader_handle = start(leader_config(&dir, &repl_addr)).unwrap();
    let mut leader = ElephantClient::connect(leader_handle.local_addr()).unwrap();
    assert_eq!(values_on(&mut leader), acked, "leader lost an acked write");

    // Post-restart writes prove the stream is live again end to end.
    let tail_writes = 2 + rng.below(4) as i64;
    for v in 0..tail_writes {
        leader
            .query_raw(&format!("INSERT INTO acked VALUES ({})", 1000 + v))
            .unwrap();
    }
    let mut want = acked;
    want.extend((0..tail_writes).map(|v| 1000 + v));
    wait_caught_up(&mut leader, &mut f);
    assert_eq!(values_on(&mut f), want, "follower missing an acked write");
    let stats = f.stats().unwrap();
    assert!(
        ElephantClient::parse_watermark(&stats, "repl_reconnects").unwrap() >= 1,
        "follower never noticed the leader died?\n{stats}"
    );

    f.shutdown().unwrap();
    drop(f);
    f_handle.join();
    leader.shutdown().unwrap();
    drop(leader);
    leader_handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}
