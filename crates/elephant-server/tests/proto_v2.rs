//! End-to-end tests for the pipelined v2 wire protocol: handshake
//! negotiation, positional pipelining, BATCH over v2, chunked streaming of
//! large results, the result-buffer cap, and sequence-id discipline —
//! always cross-checked against a v1 connection on the same server, whose
//! bytes must be unaffected by v2 existing.

use elephant_server::{
    start, ClientError, ElephantClient, PipelineClient, ServerConfig, ServerError,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

fn stat(stats: &str, key: &str) -> u64 {
    stats
        .lines()
        .find_map(|line| {
            let (k, v) = line.split_once(' ')?;
            (k == key).then(|| v.trim().parse().ok())?
        })
        .unwrap_or_else(|| panic!("no stat '{key}' in:\n{stats}"))
}

/// A result wide enough to stream: three length-prefixed INSERTs build a
/// table whose full scan is several 64 KiB chunks.
fn build_big_table(c: &mut ElephantClient) {
    c.query_raw("CREATE TABLE big (a int)").unwrap();
    for block in 0..3 {
        let values: Vec<String> = (0..8000)
            .map(|i| format!("({})", 100_000 + block * 8000 + i))
            .collect();
        c.query_raw(&format!("INSERT INTO big VALUES {}", values.join(",")))
            .unwrap();
    }
}

#[test]
fn handshake_negotiates_v2_and_refuses_unknown_versions() {
    let handle = start(ServerConfig::default()).unwrap();
    let addr = handle.local_addr();

    // Unknown version: typed refusal, connection stays v1 and usable.
    let mut v1 = ElephantClient::connect(addr).unwrap();
    match v1.send("HELLO v9") {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.code, "ERR_PARSE");
            assert!(e.message.contains("unsupported protocol"), "{e}");
        }
        other => panic!("HELLO v9 should be refused, got {other:?}"),
    }
    v1.query_raw("CREATE TABLE t (a int)").unwrap();
    v1.query_raw("INSERT INTO t VALUES (1), (2), (3)").unwrap();

    // v2 and v1 connections answer the same query byte-identically.
    let mut v2 = PipelineClient::connect(addr).unwrap();
    let sql = "QUERY SELECT a FROM t ORDER BY a";
    assert_eq!(v2.send(sql).unwrap(), v1.send(sql).unwrap());

    v1.shutdown().unwrap();
    drop((v1, v2));
    handle.join();
}

#[test]
fn pipelined_commands_answer_positionally_with_per_command_errors() {
    let handle = start(ServerConfig::default()).unwrap();
    let addr = handle.local_addr();
    let mut v2 = PipelineClient::connect(addr).unwrap();

    let commands = [
        "QUERY CREATE TABLE p (a int)",
        "QUERY INSERT INTO p VALUES (1), (2)",
        "QUERY SELECT a FROM nowhere", // fails; later commands still answer
        "QUERY SELECT sum(a) AS s FROM p",
    ];
    let results = v2.pipeline(&commands).unwrap();
    assert_eq!(results.len(), 4);
    assert_eq!(results[0].as_ref().unwrap(), "ok 0");
    assert_eq!(results[1].as_ref().unwrap(), "ok 2");
    let err = results[2].as_ref().unwrap_err();
    assert_eq!(err.code, "ERR_EXEC", "{err}");
    assert_eq!(results[3].as_ref().unwrap(), "s\n3\n");

    // The server observed the burst as pipelined work.
    let stats = v2.send("STATS").unwrap();
    assert!(
        stat(&stats, "pipelined_frames") >= 1,
        "burst never counted as pipelined:\n{stats}"
    );

    v2.send("SHUTDOWN").unwrap();
    drop(v2);
    handle.join();
}

#[test]
fn batch_over_v2_amortizes_framing_and_reports_mid_batch_errors() {
    let handle = start(ServerConfig::default()).unwrap();
    let addr = handle.local_addr();
    let mut v2 = PipelineClient::connect(addr).unwrap();

    let bodies = v2
        .batch(&[
            "CREATE TABLE b (a int)",
            "INSERT INTO b VALUES (1), (2)",
            "SELECT sum(a) AS s FROM b",
        ])
        .unwrap();
    assert_eq!(bodies, vec!["ok 0", "ok 2", "s\n3\n"]);

    // A mid-batch failure names the failing statement; earlier ones stand.
    match v2.batch(&["INSERT INTO b VALUES (3)", "SELECT a FROM nowhere"]) {
        Err(ClientError::Server(ServerError { code, message })) => {
            assert_eq!(code, "ERR_EXEC");
            assert!(message.starts_with("batch statement 2/2:"), "{message}");
        }
        other => panic!("mid-batch failure should surface, got {other:?}"),
    }
    assert_eq!(
        v2.send("QUERY SELECT count(*) AS n FROM b").unwrap(),
        "n\n3\n",
        "statements before the failing one stay applied"
    );

    v2.send("SHUTDOWN").unwrap();
    drop(v2);
    handle.join();
}

#[test]
fn large_results_stream_in_chunks_and_reassemble_byte_identically() {
    let handle = start(ServerConfig::default()).unwrap();
    let addr = handle.local_addr();
    let mut v1 = ElephantClient::connect(addr).unwrap();
    build_big_table(&mut v1);

    let sql = "QUERY SELECT a FROM big ORDER BY a";
    let reference = v1.send(sql).unwrap();
    assert!(
        reference.len() > 2 * 64 * 1024,
        "test table too small to stream ({} bytes)",
        reference.len()
    );

    let mut v2 = PipelineClient::connect(addr).unwrap();
    assert_eq!(
        v2.send(sql).unwrap(),
        reference,
        "reassembled stream differs"
    );

    let stats = v2.send("STATS").unwrap();
    assert!(
        stat(&stats, "chunks_streamed") >= 2,
        "large body never chunked:\n{stats}"
    );
    assert_eq!(
        stat(&stats, "result_buffer_bytes"),
        0,
        "buffered bytes must drain back to zero:\n{stats}"
    );
    assert!(
        stat(&stats, "result_buffer_peak_bytes") >= reference.len() as u64,
        "peak gauge missed the streamed body:\n{stats}"
    );

    v1.shutdown().unwrap();
    drop((v1, v2));
    handle.join();
}

#[test]
fn result_buffer_cap_refuses_oversized_bodies_on_v2_only() {
    let config = ServerConfig {
        max_result_buffer_bytes: 4096,
        ..ServerConfig::default()
    };
    let handle = start(config).unwrap();
    let addr = handle.local_addr();
    let mut v1 = ElephantClient::connect(addr).unwrap();
    build_big_table(&mut v1);

    let sql = "QUERY SELECT a FROM big ORDER BY a";
    let mut v2 = PipelineClient::connect(addr).unwrap();
    match v2.send(sql) {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.code, "ERR_OVERSIZED", "{e}");
            assert!(e.message.contains("--max-result-buffer-bytes"), "{e}");
        }
        other => panic!("capped v2 result should be refused, got {other:?}"),
    }
    // The refusal is per-response: the connection keeps working.
    assert_eq!(
        v2.send("QUERY SELECT count(*) AS n FROM big").unwrap(),
        "n\n24000\n"
    );
    // v1 is byte-frozen: the cap does not apply there.
    assert!(v1.send(sql).unwrap().len() > 4096);

    v1.shutdown().unwrap();
    drop((v1, v2));
    handle.join();
}

#[test]
fn sequence_ids_must_strictly_increase() {
    let handle = start(ServerConfig::default()).unwrap();
    let addr = handle.local_addr();

    // Raw socket: hand-roll the handshake and frames to control seqs.
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writer.write_all(b"HELLO v2\n").unwrap();
    let read_frame = |reader: &mut BufReader<TcpStream>| -> (String, String) {
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let status = status.trim_end().to_string();
        let len: usize = status
            .rsplit(' ')
            .next()
            .unwrap()
            .trim_start_matches('+')
            .parse()
            .unwrap();
        let mut body = vec![0u8; len + 1];
        reader.read_exact(&mut body).unwrap();
        body.pop();
        (status, String::from_utf8(body).unwrap())
    };
    assert_eq!(read_frame(&mut reader), ("+2".into(), "v2".into()));

    writer.write_all(b"@5 5\nSTATS\n").unwrap();
    let (status, _) = read_frame(&mut reader);
    assert_eq!(status, format!("+5 {}", status.split(' ').nth(1).unwrap()));

    // Replaying the same seq is a protocol error on that seq...
    writer.write_all(b"@5 5\nSTATS\n").unwrap();
    let (status, body) = read_frame(&mut reader);
    assert!(status.starts_with("-5 "), "{status}");
    assert!(body.starts_with("ERR_PARSE"), "{body}");
    assert!(body.contains("not greater than"), "{body}");

    // ...and the connection stays usable for the next valid seq.
    writer.write_all(b"@6 5\nSTATS\n").unwrap();
    let (status, _) = read_frame(&mut reader);
    assert!(status.starts_with("+6 "), "{status}");

    writer.write_all(b"@7 8\nSHUTDOWN\n").unwrap();
    let (status, _) = read_frame(&mut reader);
    assert!(status.starts_with("+7 "), "{status}");
    drop((writer, reader));
    handle.join();
}

#[test]
fn prepared_statements_bind_parameters_over_v2() {
    let handle = start(ServerConfig::default()).unwrap();
    let addr = handle.local_addr();
    let mut v2 = PipelineClient::connect(addr).unwrap();

    v2.send("QUERY CREATE TABLE q (a int, b text)").unwrap();
    v2.send("QUERY INSERT INTO q VALUES (1, 'one'), (2, 'two'), (3, 'three')")
        .unwrap();
    v2.send("PREPARE byid AS SELECT b FROM q WHERE a = $1")
        .unwrap();

    // One prepared plan, many bindings, pipelined in one round trip.
    let results = v2
        .pipeline(&["EXECUTE byid (1)", "EXECUTE byid (3)", "EXECUTE byid (2)"])
        .unwrap();
    let bodies: Vec<&str> = results
        .iter()
        .map(|r| r.as_ref().unwrap().as_str())
        .collect();
    assert_eq!(bodies, vec!["b\none\n", "b\nthree\n", "b\ntwo\n"]);

    let stats = v2.send("STATS").unwrap();
    assert_eq!(stat(&stats, "params_bound"), 3, "{stats}");

    v2.send("SHUTDOWN").unwrap();
    drop(v2);
    handle.join();
}
