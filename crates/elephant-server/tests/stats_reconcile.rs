//! STATS accounting reconciliation: drive one of every protocol verb over
//! the wire and prove `commands_served` equals the sum of the rendered
//! per-verb counters — no verb is double-counted, none falls through the
//! floor. The verb → counter map is an exhaustive `match` on [`Command`],
//! so adding a protocol verb refuses to compile until it is wired into a
//! counter and into this test.

use elephant_server::{
    shard_of, start, ClientError, Command, ElephantClient, ServerConfig, TraceRequest,
};
use std::path::PathBuf;

/// The `STATS` key that must account for each verb. Exhaustive on purpose
/// — no wildcard arm, so a new [`Command`] variant breaks this build.
fn counter_key(cmd: &Command) -> &'static str {
    match cmd {
        Command::Query(_) => "queries",
        Command::Batch(_) => "batches",
        Command::Prepare { .. } => "prepares",
        Command::Execute { .. } => "executes",
        Command::Deallocate(_) => "other_commands",
        Command::Explain { .. } => "explains",
        Command::Trace(_) => "traces",
        Command::Inspect { .. } => "inspects",
        Command::Set { .. } => "set_calls",
        Command::Stats => "stats_calls",
        Command::Checkpoint => "checkpoints_served",
        Command::Replica => "replica_calls",
        Command::Lag => "lag_calls",
        Command::Shutdown => "other_commands",
    }
}

/// Every per-verb key `commands_served` is defined as the sum of.
const PER_VERB_KEYS: [&str; 13] = [
    "queries",
    "batches",
    "prepares",
    "executes",
    "explains",
    "inspects",
    "set_calls",
    "stats_calls",
    "checkpoints_served",
    "traces",
    "replica_calls",
    "lag_calls",
    "other_commands",
];

fn stat(stats: &str, key: &str) -> u64 {
    stats
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{key} ")))
        .unwrap_or_else(|| panic!("missing '{key}' in stats:\n{stats}"))
        .parse()
        .unwrap()
}

#[test]
fn commands_served_reconciles_with_every_per_verb_counter() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("elephant-reconcile-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = start(
        ServerConfig {
            data_dir: Some(dir.clone()),
            ..ServerConfig::default()
        }
        .with_standard_pipeline_data(60, 7),
    )
    .unwrap();
    let mut c = ElephantClient::connect(handle.local_addr()).unwrap();

    // One of every verb (SHUTDOWN rides at teardown — its count lands
    // after the last STATS render, so it is exercised but not asserted).
    c.query_raw("CREATE TABLE t (a int)").unwrap();
    c.query_raw("INSERT INTO t VALUES (1), (2)").unwrap();
    assert_eq!(
        c.send("SET exec_mode columnar").unwrap(),
        "set exec_mode columnar"
    );
    c.query_raw("SELECT a FROM t ORDER BY a").unwrap();
    c.prepare("q", "SELECT sum(a) AS s FROM t").unwrap();
    c.execute("q").unwrap();
    // Parameterized prepared statement: `$1` binds at EXECUTE time.
    c.prepare("p1", "SELECT a FROM t WHERE a = $1").unwrap();
    assert_eq!(c.send("EXECUTE p1 (2)").unwrap(), "a\n2\n");
    // One BATCH frame carrying two statements: one batch command served,
    // two batch statements executed, bodies joined by the separator.
    assert_eq!(
        c.send("BATCH INSERT INTO t VALUES (3)\u{1e}SELECT count(*) AS n FROM t")
            .unwrap(),
        "ok 1\u{1e}n\n3\n"
    );
    c.send("DEALLOCATE q").unwrap();
    c.send("EXPLAIN SELECT a FROM t WHERE a > 1").unwrap();
    c.send("TRACE 5").unwrap();
    c.inspect(&["age_group"], 0.3, "@healthcare").unwrap();
    c.checkpoint().unwrap();
    c.replica().unwrap();
    c.lag().unwrap();
    c.stats().unwrap();

    let body = c.stats().unwrap();
    // The render is one atomic-ish read of all counters; the in-flight
    // STATS counts itself only after rendering, so the body is stable.
    let served = stat(&body, "commands_served");
    let sum: u64 = PER_VERB_KEYS.iter().map(|k| stat(&body, k)).sum();
    assert_eq!(
        served, sum,
        "commands_served does not reconcile with the per-verb counters:\n{body}"
    );

    // Exact per-verb expectations: catches double counting and verbs
    // landing in the wrong bucket.
    for (key, want) in [
        ("queries", 3),
        ("batches", 1),
        ("prepares", 2),
        ("executes", 2),
        ("explains", 1),
        ("traces", 1),
        ("inspects", 1),
        ("checkpoints_served", 1),
        ("replica_calls", 1),
        ("lag_calls", 1),
        ("set_calls", 1),
        ("stats_calls", 1),    // the first STATS; the rendering one is in flight
        ("other_commands", 1), // DEALLOCATE
    ] {
        assert_eq!(stat(&body, key), want, "counter '{key}' off:\n{body}");
    }
    assert_eq!(served, 17);

    // Protocol-v2 satellite counters. This session is a v1 text client, so
    // nothing was pipelined or streamed; the BATCH frame carried two
    // statements and `EXECUTE p1 (2)` bound one parameter.
    assert_eq!(stat(&body, "pipelined_frames"), 0, "{body}");
    assert_eq!(stat(&body, "batch_statements"), 2, "{body}");
    assert_eq!(stat(&body, "params_bound"), 1, "{body}");
    assert_eq!(stat(&body, "chunks_streamed"), 0, "{body}");
    assert_eq!(stat(&body, "result_buffer_bytes"), 0, "{body}");
    let _ = stat(&body, "result_buffer_peak_bytes");

    // The session switched itself to columnar above, so STATS reports the
    // session's mode and the engine counted vectorized batches. The
    // fallback counter must render too (INSPECT pipelines may bridge).
    assert!(body.contains("exec_mode columnar"), "{body}");
    assert!(stat(&body, "batches_executed") > 0, "{body}");
    let _ = stat(&body, "colexec_fallbacks");

    // Sharding counters render even on a default single-shard server, so
    // dashboards need no conditional parsing. This server is durable, so
    // the group-commit counters are live (one fsync may cover several
    // acknowledged writes); a single shard can never fall back, scatter,
    // or reject.
    assert_eq!(stat(&body, "shards"), 1);
    assert_eq!(stat(&body, "shard_fallbacks"), 0);
    assert_eq!(stat(&body, "shard_scatter_gather"), 0);
    assert_eq!(stat(&body, "cross_shard_rejects"), 0);
    let _ = stat(&body, "shard0.queue_depth");
    assert!(stat(&body, "shard0.commands") > 0, "{body}");
    assert!(body.contains("\nshard0.health "), "{body}");
    let _ = stat(&body, "shard0.wal_group_commits");
    let _ = stat(&body, "wal_group_commits");
    let _ = stat(&body, "wal_group_committed_records");
    assert!(body.contains("\nwal_commits_per_fsync "), "{body}");

    // Compile-time completeness: route a sample of every variant through
    // the exhaustive map and pin the bucket each one must land in.
    let samples = [
        (Command::Query("SELECT 1".into()), "queries"),
        (
            Command::Prepare {
                name: "q".into(),
                sql: "SELECT 1".into(),
            },
            "prepares",
        ),
        (
            Command::Execute {
                name: "q".into(),
                args: None,
            },
            "executes",
        ),
        (
            Command::Execute {
                name: "q".into(),
                args: Some("1, 'x'".into()),
            },
            "executes",
        ),
        (
            Command::Batch(vec!["SELECT 1".into(), "SELECT 2".into()]),
            "batches",
        ),
        (Command::Deallocate("q".into()), "other_commands"),
        (
            Command::Explain {
                sql: "SELECT 1".into(),
                analyze: false,
            },
            "explains",
        ),
        (Command::Trace(TraceRequest::Recent(5)), "traces"),
        (Command::Trace(TraceRequest::Tree(3)), "traces"),
        (
            Command::Inspect {
                columns: vec!["age_group".into()],
                threshold: 0.3,
                source: "@healthcare".into(),
            },
            "inspects",
        ),
        (
            Command::Set {
                name: "exec_mode".into(),
                value: "auto".into(),
            },
            "set_calls",
        ),
        (Command::Stats, "stats_calls"),
        (Command::Checkpoint, "checkpoints_served"),
        (Command::Replica, "replica_calls"),
        (Command::Lag, "lag_calls"),
        (Command::Shutdown, "other_commands"),
    ];
    for (cmd, want) in &samples {
        assert_eq!(counter_key(cmd), *want, "verb {} mis-bucketed", cmd.verb());
    }

    c.shutdown().unwrap();
    drop(c);
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// On a multi-shard server, STATS grows one line group per shard plus the
/// router counters; a cross-shard write script commits via two-phase
/// commit (counting one QUERY and one `txn_commits`); a single statement
/// spanning shards is still refused with the typed `ERR_CROSS_SHARD`; and
/// broadcast verbs (`SET`, `CHECKPOINT`) count **once**, not once per
/// shard, so `commands_served` reconciles on a 4-shard server exactly as
/// it does on one shard.
#[test]
fn sharded_stats_reconcile_count_txns_and_rejects() {
    const SHARDS: usize = 4;
    let dir: PathBuf =
        std::env::temp_dir().join(format!("elephant-reconcile-shard-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = start(ServerConfig {
        shards: SHARDS,
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = ElephantClient::connect(handle.local_addr()).unwrap();

    // Two tables the router provably places on different shards.
    let names: Vec<String> = (0..32).map(|i| format!("t{i}")).collect();
    let a = names[0].clone();
    let b = names
        .iter()
        .find(|n| shard_of(n, SHARDS) != shard_of(&a, SHARDS))
        .expect("32 names must hit at least two of four shards")
        .clone();

    c.query_raw(&format!("CREATE TABLE {a} (x int)")).unwrap();
    c.query_raw(&format!("CREATE TABLE {b} (x int)")).unwrap();
    c.query_raw(&format!("INSERT INTO {a} VALUES (1), (2)"))
        .unwrap();
    c.query_raw(&format!("INSERT INTO {b} VALUES (2), (10)"))
        .unwrap();

    // Cross-shard read-only query: served via scatter-gather.
    let body = c
        .query_raw(&format!(
            "SELECT count(*) AS n FROM {a} INNER JOIN {b} ON {a}.x = {b}.x"
        ))
        .unwrap();
    assert_eq!(body, "n\n1\n");

    // Cross-shard write script: splits per statement and commits via 2PC.
    // The ack reports total rows affected across the script.
    assert_eq!(
        c.query_raw(&format!(
            "INSERT INTO {a} VALUES (7); INSERT INTO {b} VALUES (7)"
        ))
        .unwrap(),
        "ok 2"
    );
    assert_eq!(
        c.query_raw(&format!("SELECT count(*) AS n FROM {a}"))
            .unwrap(),
        "n\n3\n",
        "committed transaction must be visible on {a}'s shard"
    );
    assert_eq!(
        c.query_raw(&format!("SELECT count(*) AS n FROM {b}"))
            .unwrap(),
        "n\n3\n",
        "committed transaction must be visible on {b}'s shard"
    );
    assert!(
        dir.join("txn.log").exists(),
        "the coordinator must have written its decision log"
    );

    // A single statement whose dependencies span shards cannot be split:
    // typed refusal naming the owners, nothing executed.
    let err = c
        .query_raw(&format!(
            "CREATE VIEW vab AS SELECT {a}.x FROM {a} INNER JOIN {b} ON {a}.x = {b}.x"
        ))
        .unwrap_err();
    match err {
        ClientError::Server(e) => {
            assert_eq!(e.code, "ERR_CROSS_SHARD", "{e}");
            assert!(e.message.contains("per statement"), "{e}");
            assert!(e.message.contains("shard"), "{e}");
        }
        other => panic!("expected a server error, got {other}"),
    }
    assert_eq!(
        c.query_raw(&format!("SELECT count(*) AS n FROM {a}"))
            .unwrap(),
        "n\n3\n",
        "refused write must not have executed"
    );

    // A BATCH whose statements all resolve to one shard travels as one
    // job: one `batches` tick, two `batch_statements`.
    assert_eq!(
        c.send(&format!(
            "BATCH INSERT INTO {a} VALUES (20)\u{1e}SELECT count(*) AS n FROM {a}"
        ))
        .unwrap(),
        "ok 1\u{1e}n\n4\n"
    );
    // A BATCH spanning shards decomposes into per-statement QUERY routing:
    // two `queries` ticks, two more `batch_statements`, no `batches` tick.
    assert_eq!(
        c.send(&format!(
            "BATCH INSERT INTO {a} VALUES (21)\u{1e}INSERT INTO {b} VALUES (21)"
        ))
        .unwrap(),
        "ok 1\u{1e}ok 1"
    );

    // Broadcast verbs fan out to every shard but count once.
    assert_eq!(
        c.send("SET exec_mode columnar").unwrap(),
        "set exec_mode columnar"
    );
    c.checkpoint().unwrap();

    let stats = c.stats().unwrap();
    assert_eq!(stat(&stats, "shards"), SHARDS as u64);
    assert_eq!(stat(&stats, "cross_shard_rejects"), 1, "{stats}");
    assert_eq!(stat(&stats, "txn_commits"), 1, "{stats}");
    assert_eq!(stat(&stats, "txn_aborts"), 0, "{stats}");
    assert!(stat(&stats, "shard_scatter_gather") >= 1, "{stats}");
    let _ = stat(&stats, "shard_fallbacks");
    for k in 0..SHARDS {
        let _ = stat(&stats, &format!("shard{k}.queue_depth"));
        let _ = stat(&stats, &format!("shard{k}.commands"));
        let _ = stat(&stats, &format!("shard{k}.wal_group_commits"));
        assert!(stats.contains(&format!("\nshard{k}.health ")), "{stats}");
    }

    // The satellite accounting identity, on four shards: 9 queries (the
    // 2PC transaction is ONE query; the reject counts nothing) plus the 2
    // legs of the cross-shard batch, one single-shard BATCH, one SET, one
    // CHECKPOINT — broadcasts count once despite running on every shard.
    // The rendering STATS counts itself only after rendering.
    assert_eq!(stat(&stats, "queries"), 11, "{stats}");
    assert_eq!(stat(&stats, "batches"), 1, "{stats}");
    assert_eq!(stat(&stats, "batch_statements"), 4, "{stats}");
    assert_eq!(stat(&stats, "set_calls"), 1, "{stats}");
    assert_eq!(stat(&stats, "checkpoints_served"), 1, "{stats}");
    assert_eq!(stat(&stats, "stats_calls"), 0, "{stats}");
    let served = stat(&stats, "commands_served");
    let sum: u64 = PER_VERB_KEYS.iter().map(|k| stat(&stats, k)).sum();
    assert_eq!(served, sum, "4-shard reconciliation broke:\n{stats}");
    assert_eq!(served, 14, "{stats}");

    c.shutdown().unwrap();
    drop(c);
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}
