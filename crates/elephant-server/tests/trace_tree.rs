//! End-to-end distributed tracing acceptance: a cross-shard scatter-gather
//! query on a 4-shard durable server must leave behind ONE correlated span
//! tree — router decision, per-shard export, coordinator install/execute,
//! group-commit fsync — retrievable over the wire with `TRACE q<id>`, with
//! per-shard time attribution that reconciles with the root total.

use elephant_server::{shard_of, start, ElephantClient, ServerConfig};
use std::collections::BTreeSet;
use std::path::PathBuf;

/// Extract `<key>=<value>` from a rendered span line.
fn field<'a>(line: &'a str, key: &str) -> &'a str {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("missing '{key}=' in span line: {line}"))
}

/// The newest root span line whose detail mentions `needle`; returns the
/// parsed query id.
fn find_query_id(listing: &str, needle: &str) -> u64 {
    let line = listing
        .lines()
        .find(|l| l.contains("kind=command") && l.contains(needle))
        .unwrap_or_else(|| panic!("no root span mentioning '{needle}' in:\n{listing}"));
    field(line, "qid")
        .strip_prefix('q')
        .expect("qid renders as q<id>")
        .parse()
        .expect("query id is numeric")
}

#[test]
fn scatter_gather_query_yields_one_correlated_span_tree() {
    const SHARDS: usize = 4;
    let dir: PathBuf =
        std::env::temp_dir().join(format!("elephant-trace-tree-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = start(ServerConfig {
        shards: SHARDS,
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = ElephantClient::connect(handle.local_addr()).unwrap();

    // Two tables the router provably places on different shards, so the
    // join below must scatter-gather.
    let names: Vec<String> = (0..32).map(|i| format!("t{i}")).collect();
    let a = names[0].clone();
    let b = names
        .iter()
        .find(|n| shard_of(n, SHARDS) != shard_of(&a, SHARDS))
        .expect("32 names must hit at least two of four shards")
        .clone();
    c.query_raw(&format!("CREATE TABLE {a} (x int)")).unwrap();
    c.query_raw(&format!("CREATE TABLE {b} (x int)")).unwrap();
    c.query_raw(&format!("INSERT INTO {a} VALUES (1), (2)"))
        .unwrap();
    c.query_raw(&format!("INSERT INTO {b} VALUES (2), (10)"))
        .unwrap();

    let rows = c
        .query_raw(&format!(
            "SELECT count(*) AS n FROM {a} INNER JOIN {b} ON {a}.x = {b}.x"
        ))
        .unwrap();
    assert_eq!(rows, "n\n1\n");

    // The TRACE listing spans all shard rings; the join's root is on the
    // coordinator's ring, the inserts' roots on their home shards.
    let listing = c.trace(Some(16)).unwrap();
    let join_qid = find_query_id(&listing, "INNER JOIN");
    let insert_qid = find_query_id(&listing, &format!("INSERT INTO {a}"));

    // --- The scatter-gather tree -----------------------------------------
    let tree = c.trace_tree(join_qid).unwrap();
    assert!(
        tree.starts_with(&format!("trace q{join_qid} spans=")),
        "{tree}"
    );

    // Every span in the tree belongs to this one query: correlation held
    // across the router, the exporting shards, and the coordinator.
    let span_lines: Vec<&str> = tree.lines().filter(|l| l.contains("span seq=")).collect();
    assert!(span_lines.len() >= 5, "thin tree:\n{tree}");
    for line in &span_lines {
        assert_eq!(field(line, "qid"), format!("q{join_qid}"), "{line}");
    }

    // The phases the issue demands, all under one root.
    for kind in ["command", "router", "sg-export", "sg-install", "sg-gather"] {
        assert!(
            span_lines.iter().any(|l| field(l, "kind") == kind),
            "missing kind={kind} in tree:\n{tree}"
        );
    }
    // The gather exec waited in the coordinator's queue like any command.
    assert!(
        span_lines.iter().any(|l| field(l, "kind") == "queue-wait"),
        "missing queue-wait span:\n{tree}"
    );

    // Exports must come from a different shard than the coordinator runs
    // the gathered plan on — that is what makes the trace *distributed*.
    let export_shards: BTreeSet<&str> = span_lines
        .iter()
        .filter(|l| field(l, "kind") == "sg-export")
        .map(|l| field(l, "shard"))
        .collect();
    let gather_shard = span_lines
        .iter()
        .find(|l| field(l, "kind") == "sg-gather")
        .map(|l| field(l, "shard"))
        .unwrap();
    assert!(
        export_shards.iter().any(|s| *s != gather_shard),
        "exports all landed on the coordinator:\n{tree}"
    );

    // Hierarchy: the root is the only top-level line; children indent.
    assert!(
        span_lines[0].starts_with("span seq=") && span_lines[0].contains("kind=command"),
        "{tree}"
    );
    assert!(
        span_lines[1..].iter().all(|l| !l.starts_with("span seq=")),
        "children must be indented under the root:\n{tree}"
    );

    // Per-shard attribution reconciles with the root total: executor-side
    // work on any one shard cannot exceed the root's wall clock (±1µs per
    // span for truncation).
    let total_line = tree
        .lines()
        .find(|l| l.starts_with("total_us "))
        .unwrap_or_else(|| panic!("missing total_us line:\n{tree}"));
    let total_us: u64 = total_line
        .strip_prefix("total_us ")
        .unwrap()
        .parse()
        .unwrap();
    let shard_line = tree
        .lines()
        .find(|l| l.starts_with("shard_us "))
        .unwrap_or_else(|| panic!("missing shard_us line:\n{tree}"));
    let attributions: Vec<(u16, u64)> = shard_line
        .split_whitespace()
        .skip(1)
        .map(|tok| {
            let (shard, us) = tok
                .strip_prefix("shard")
                .and_then(|t| t.split_once('='))
                .unwrap_or_else(|| panic!("bad shard_us token '{tok}'"));
            (shard.parse().unwrap(), us.parse().unwrap())
        })
        .collect();
    assert!(
        attributions.len() >= 2,
        "cross-shard query must attribute time to at least two shards:\n{tree}"
    );
    let slack = span_lines.len() as u64;
    for (shard, us) in &attributions {
        assert!(
            *us <= total_us + slack,
            "shard{shard} attribution {us}µs exceeds root total {total_us}µs:\n{tree}"
        );
    }

    // --- The durable write's tree ----------------------------------------
    // An acknowledged INSERT under `--fsync always` carries the group-
    // commit fsync as a span of its own.
    let insert_tree = c.trace_tree(insert_qid).unwrap();
    let insert_lines: Vec<&str> = insert_tree
        .lines()
        .filter(|l| l.contains("span seq="))
        .collect();
    for kind in [
        "command",
        "router",
        "queue-wait",
        "shard-exec",
        "wal-group-fsync",
    ] {
        assert!(
            insert_lines.iter().any(|l| field(l, "kind") == kind),
            "missing kind={kind} in durable write tree:\n{insert_tree}"
        );
    }

    // Unknown query ids answer gracefully rather than erroring.
    let missing = c.trace_tree(9_999_999).unwrap();
    assert_eq!(missing, "no spans recorded for q9999999");

    c.shutdown().unwrap();
    drop(c);
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The slow-query log carries the query id so an operator can jump from a
/// log line straight to `TRACE q<id>`. With the threshold at zero every
/// statement logs; we only assert the plumbing (stderr is captured by the
/// test harness), i.e. the trace listing and STATS agree on ids/counters.
#[test]
fn trace_listing_is_cross_shard_and_newest_first() {
    const SHARDS: usize = 4;
    let handle = start(ServerConfig {
        shards: SHARDS,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = ElephantClient::connect(handle.local_addr()).unwrap();

    // Fresh server: no spans yet (TRACE itself is answered at the router
    // and never creates spans).
    assert_eq!(c.trace(None).unwrap(), "no spans recorded");

    // Commands landing on different shards must interleave into one
    // globally-ordered listing.
    let names: Vec<String> = (0..32).map(|i| format!("t{i}")).collect();
    let a = names[0].clone();
    let b = names
        .iter()
        .find(|n| shard_of(n, SHARDS) != shard_of(&a, SHARDS))
        .unwrap()
        .clone();
    c.query_raw(&format!("CREATE TABLE {a} (x int)")).unwrap();
    c.query_raw(&format!("CREATE TABLE {b} (x int)")).unwrap();
    c.query_raw(&format!("INSERT INTO {a} VALUES (1)")).unwrap();
    c.query_raw(&format!("INSERT INTO {b} VALUES (2)")).unwrap();

    let listing = c.trace(Some(10)).unwrap();
    let roots: Vec<&str> = listing.lines().collect();
    assert_eq!(roots.len(), 4, "{listing}");
    assert!(
        roots.iter().all(|l| l.contains("kind=command")),
        "{listing}"
    );
    // Newest first: the INSERT into b precedes the CREATEs.
    assert!(roots[0].contains(&format!("INSERT INTO {b}")), "{listing}");
    assert!(roots[3].contains(&format!("CREATE TABLE {a}")), "{listing}");
    // Both shards' rings contributed.
    let shards_seen: BTreeSet<&str> = roots.iter().map(|l| field(l, "shard")).collect();
    assert!(shards_seen.len() >= 2, "{listing}");
    // Query ids are unique across shards (allocated at the router).
    let qids: BTreeSet<&str> = roots.iter().map(|l| field(l, "qid")).collect();
    assert_eq!(qids.len(), roots.len(), "{listing}");

    // `TRACE 2` truncates to the newest two.
    let clipped = c.trace(Some(2)).unwrap();
    assert_eq!(clipped.lines().count(), 2, "{clipped}");
    assert_eq!(clipped.lines().next(), roots.first().copied());

    c.shutdown().unwrap();
    drop(c);
    handle.join();
}
