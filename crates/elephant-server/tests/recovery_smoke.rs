//! Crash-recovery smoke test against the real `elephant-serve` binary:
//! load data, checkpoint, write past the checkpoint, `kill -9`, restart on
//! the same directory, and require every acknowledged write back — ctids,
//! serial counters, and the pipeline inspection report byte-identical.

use elephant_server::ElephantClient;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

/// Start the server binary durably on `dir`; returns after it prints its
/// bound address. Pipeline data is seeded deterministically so inspection
/// reports are comparable across incarnations.
fn serve(dir: &Path) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_elephant-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--rows",
            "60",
            "--seed",
            "7",
            "--fsync",
            "always",
            "--data-dir",
        ])
        .arg(dir)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn elephant-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read startup line");
    // "elephant-serve listening on <addr> (... profile, durable storage); ..."
    assert!(line.contains("durable storage"), "{line}");
    let addr = line
        .split_whitespace()
        .nth(3)
        .unwrap_or_else(|| panic!("no address in startup line: {line}"))
        .parse()
        .expect("parse bound address");
    (child, addr)
}

fn stat(stats: &str, key: &str) -> u64 {
    stats
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{key} ")))
        .unwrap_or_else(|| panic!("missing '{key}' in stats:\n{stats}"))
        .parse()
        .unwrap()
}

/// Blank out `time_us=<digits>` values — inspection reports now carry
/// per-line wall-clock timings, which never reproduce across incarnations.
/// Everything else (rows, verdicts, ctids) must still match byte-for-byte.
fn strip_times(report: &str) -> String {
    let mut out = String::with_capacity(report.len());
    let mut rest = report;
    while let Some(i) = rest.find("time_us=") {
        let after = i + "time_us=".len();
        out.push_str(&rest[..after]);
        out.push('_');
        rest = rest[after..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "elephant-recovery-smoke-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn kill_nine_loses_no_acknowledged_writes() {
    let dir = fresh_dir("kill9");

    // First incarnation: checkpointed rows AND a WAL tail past the
    // checkpoint, both acknowledged under fsync=always.
    let (mut child, addr) = serve(&dir);
    let mut c = ElephantClient::connect(addr).unwrap();
    c.query_raw("CREATE TABLE t (id serial, a int)").unwrap();
    c.query_raw("INSERT INTO t (a) VALUES (10), (20), (30)")
        .unwrap();
    let ck = c.checkpoint().unwrap();
    assert!(ck.starts_with("checkpoint tables=1 rows=3"), "{ck}");
    c.query_raw("INSERT INTO t (a) VALUES (40), (50)").unwrap();
    let rows_before = c
        .query_raw("SELECT ctid, id, a FROM t ORDER BY id")
        .unwrap();
    let report_before = c.inspect(&["age_group"], 0.3, "@healthcare").unwrap();
    assert!(
        report_before.contains("inspection verdict="),
        "{report_before}"
    );
    child.kill().unwrap();
    child.wait().unwrap();

    // Second incarnation on the same directory: snapshot + WAL replay.
    let (mut child, addr) = serve(&dir);
    let mut c = ElephantClient::connect(addr).unwrap();
    let rows_after = c
        .query_raw("SELECT ctid, id, a FROM t ORDER BY id")
        .unwrap();
    assert_eq!(rows_after, rows_before, "recovered rows (and ctids) differ");
    // The serial counter recovered too: numbering continues, not restarts.
    c.query_raw("INSERT INTO t (a) VALUES (60)").unwrap();
    assert_eq!(c.query_raw("SELECT max(id) AS m FROM t").unwrap(), "m\n6\n");
    // Inspection over recovered state is byte-identical.
    let report_after = c.inspect(&["age_group"], 0.3, "@healthcare").unwrap();
    assert_eq!(
        strip_times(&report_after),
        strip_times(&report_before),
        "inspection report changed"
    );
    // STATS reports what recovery found.
    let stats = c.stats().unwrap();
    assert_eq!(stat(&stats, "storage_durable"), 1, "{stats}");
    assert!(stat(&stats, "recovered_snapshot_tables") >= 1, "{stats}");
    assert!(stat(&stats, "recovered_wal_records") >= 1, "{stats}");
    child.kill().unwrap();
    child.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn volatile_server_refuses_checkpoint_but_durable_flag_is_reported() {
    // No --data-dir: run in-process via the library for speed.
    let handle = elephant_server::start(elephant_server::ServerConfig::default()).unwrap();
    let mut c = ElephantClient::connect(handle.local_addr()).unwrap();
    match c.checkpoint() {
        Err(elephant_server::ClientError::Server(e)) => {
            assert_eq!(e.code, "ERR_EXEC");
            assert!(e.message.contains("--data-dir"), "{}", e.message);
        }
        other => panic!("expected checkpoint refusal, got {other:?}"),
    }
    let stats = c.stats().unwrap();
    assert_eq!(stat(&stats, "storage_durable"), 0, "{stats}");
    c.shutdown().unwrap();
    drop(c);
    handle.join();
}

#[test]
fn inspect_unknown_pipeline_is_a_structured_error() {
    let handle = elephant_server::start(elephant_server::ServerConfig::default()).unwrap();
    let mut c = ElephantClient::connect(handle.local_addr()).unwrap();
    match c.inspect(&["age_group"], 0.3, "@definitely_not_a_pipeline") {
        Err(elephant_server::ClientError::Server(e)) => {
            assert_eq!(e.code, "ERR_INSPECT");
            assert!(
                e.message
                    .starts_with("inspect unknown-pipeline: 'definitely_not_a_pipeline'"),
                "{}",
                e.message
            );
            assert!(e.message.contains("healthcare"), "{}", e.message);
        }
        other => panic!("expected structured inspect error, got {other:?}"),
    }
    // The session survives the error.
    assert_eq!(c.query_raw("SELECT 1 AS one").unwrap(), "one\n1\n");
    c.shutdown().unwrap();
    drop(c);
    handle.join();
}
