//! Seeded fuzz for the v2 frame parser: truncated, bit-flipped,
//! oversized, and interleaved frames must always produce clean typed
//! errors — never a panic, never a hang, never an out-of-sync frame
//! silently accepted. Mirrors the WAL corruption fuzz
//! (`elephant-store/tests/wal_fuzz.rs`): the schedule is seeded through
//! `ELEPHANT_FAULT_SEED` so a failure reproduces exactly.

use elephant_server::proto2::{parse_v2_header, V2Error, V2FrameReader};
use elephant_server::{start, ElephantClient, PipelineClient, ServerConfig};
use etypes::Prng;
use std::io::{Cursor, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn seed() -> u64 {
    std::env::var("ELEPHANT_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xE1EFA)
}

/// A well-formed stream of `n` v2 request frames with increasing seqs and
/// seeded printable payloads. Returns the bytes and the expected frames.
fn valid_stream(rng: &mut Prng, n: usize) -> (Vec<u8>, Vec<(u64, String)>) {
    let mut bytes = Vec::new();
    let mut frames = Vec::new();
    let mut seq = 0u64;
    for _ in 0..n {
        seq += 1 + rng.below(3) as u64;
        let len = rng.below(40);
        let payload: String = (0..len)
            .map(|_| (b'a' + rng.below(26) as u8) as char)
            .collect();
        bytes.extend_from_slice(format!("@{seq} {}\n{payload}\n", payload.len()).as_bytes());
        frames.push((seq, payload));
    }
    (bytes, frames)
}

/// Drive a `V2FrameReader` over `bytes` until EOF or a hard error,
/// collecting what it yields. The parser contract under any input:
/// terminate (no hang on finite input), never panic, and classify every
/// failure as a typed `V2Error`.
fn drain(bytes: &[u8]) -> (Vec<(u64, String)>, Option<V2Error>) {
    let mut cursor = Cursor::new(bytes);
    let mut reader = V2FrameReader::new();
    let mut got = Vec::new();
    // An upper bound far above any frame count the input could hold: the
    // loop finishing is itself an assertion against livelock.
    for _ in 0..10_000 {
        match reader.read_frame(&mut cursor) {
            Ok(Some(frame)) => got.push(frame),
            Ok(None) => return (got, None),
            // Recoverable protocol errors: the reader stays in sync and
            // the stream continues.
            Err(V2Error::Oversized { .. } | V2Error::BadPayload { .. }) => {
                got.clear(); // sync point changed; only later frames matter
            }
            Err(e) => return (got, Some(e)),
        }
    }
    panic!("frame reader failed to terminate on {} bytes", bytes.len());
}

#[test]
fn clean_streams_round_trip() {
    let mut rng = Prng::from_stream(seed(), 21);
    for iter in 0..50 {
        let n = 1 + rng.below(8);
        let (bytes, want) = valid_stream(&mut rng, n);
        let (got, err) = drain(&bytes);
        assert!(err.is_none(), "iter {iter}: clean stream errored: {err:?}");
        assert_eq!(got, want, "iter {iter}: clean stream mangled");
    }
}

#[test]
fn truncated_streams_yield_a_prefix_then_a_typed_error() {
    let mut rng = Prng::from_stream(seed(), 22);
    for iter in 0..80 {
        let n = 1 + rng.below(8);
        let (bytes, want) = valid_stream(&mut rng, n);
        let cut = rng.below(bytes.len());
        let (got, err) = drain(&bytes[..cut]);
        assert!(
            got.len() <= want.len() && got == want[..got.len()],
            "iter {iter}: truncation fabricated frames: {got:?}"
        );
        // A cut can land exactly on a frame boundary (clean EOF) or
        // mid-frame (UnexpectedEof) — both are typed, neither panics.
        if let Some(e) = err {
            match e {
                V2Error::Io(io) => {
                    assert_eq!(
                        io.kind(),
                        std::io::ErrorKind::UnexpectedEof,
                        "iter {iter}: wrong error kind"
                    );
                }
                V2Error::BadHeader(_) => {} // cut produced a short header line
                other => panic!("iter {iter}: unexpected error {other:?}"),
            }
        }
    }
}

#[test]
fn bit_flipped_streams_never_panic_and_errors_stay_typed() {
    let mut rng = Prng::from_stream(seed(), 23);
    for _ in 0..150 {
        let n = 1 + rng.below(8);
        let (mut bytes, _) = valid_stream(&mut rng, n);
        for _ in 0..1 + rng.below(4) {
            let i = rng.below(bytes.len());
            bytes[i] ^= 1 << rng.below(8);
        }
        // Whatever the flips hit — header sigil, seq digits, declared
        // length, payload, framing newlines — drain() must terminate with
        // frames and/or one typed error. The assertions live inside
        // drain(); a panic or hang here is the failure.
        let _ = drain(&bytes);
    }
}

#[test]
fn oversized_declared_lengths_are_drained_and_the_stream_resyncs() {
    let mut rng = Prng::from_stream(seed(), 24);
    for iter in 0..30 {
        // An oversized frame (declared just over MAX_FRAME, body present)
        // interleaved between two valid frames: the reader must refuse it
        // as Oversized, swallow its body, and then hand back the trailing
        // valid frame.
        let huge = 1024 * 1024 + 1 + rng.below(512);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"@1 2\nok\n");
        bytes.extend_from_slice(format!("@2 {huge}\n").as_bytes());
        bytes.extend(std::iter::repeat_n(b'x', huge));
        bytes.push(b'\n');
        bytes.extend_from_slice(b"@3 4\ntail\n");

        let mut cursor = Cursor::new(bytes);
        let mut reader = V2FrameReader::new();
        assert_eq!(
            reader.read_frame(&mut cursor).unwrap(),
            Some((1, "ok".into()))
        );
        match reader.read_frame(&mut cursor) {
            Err(V2Error::Oversized { seq: 2, declared }) => assert_eq!(declared, huge),
            other => panic!("iter {iter}: expected Oversized, got {other:?}"),
        }
        assert_eq!(
            reader.read_frame(&mut cursor).unwrap(),
            Some((3, "tail".into())),
            "iter {iter}: reader lost sync after draining the oversized body"
        );
        assert_eq!(reader.read_frame(&mut cursor).unwrap(), None);
    }
}

#[test]
fn header_parser_rejects_garbage_without_panicking() {
    let mut rng = Prng::from_stream(seed(), 25);
    // Valid headers parse; every seeded mutation either still parses (the
    // flip hit a digit and made another digit) or fails with a message —
    // never a panic.
    assert_eq!(parse_v2_header("@7 12"), Ok((7, 12)));
    assert_eq!(parse_v2_header("@0 0"), Ok((0, 0)));
    for kind in [
        "", "@", "@ ", "@x 3", "@3", "@3 x", "#3 4", "@3 4 5", "@-1 4",
    ] {
        assert!(parse_v2_header(kind).is_err(), "{kind:?} should not parse");
    }
    for _ in 0..500 {
        let mut header = b"@12 345".to_vec();
        for _ in 0..1 + rng.below(3) {
            let i = rng.below(header.len());
            header[i] ^= 1 << rng.below(8);
        }
        let _ = parse_v2_header(&String::from_utf8_lossy(&header));
    }
}

#[test]
fn live_server_survives_a_seeded_frame_storm() {
    let handle = start(ServerConfig::default()).unwrap();
    let addr = handle.local_addr();
    let mut rng = Prng::from_stream(seed(), 26);

    for iter in 0..25 {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(b"HELLO v2\n").unwrap();
        let mut ack = [0u8; 6]; // "+2\nv2\n"
        stream.read_exact(&mut ack).unwrap();
        assert_eq!(&ack, b"+2\nv2\n", "iter {iter}: handshake broke");

        // A burst of valid frames with seeded mutations sprinkled in.
        let n = 2 + rng.below(5);
        let (mut bytes, _) = valid_stream(&mut rng, n);
        match rng.below(3) {
            0 => {
                let cut = rng.below(bytes.len());
                bytes.truncate(cut);
            }
            1 => {
                for _ in 0..1 + rng.below(5) {
                    let i = rng.below(bytes.len());
                    bytes[i] ^= 1 << rng.below(8);
                }
            }
            _ => {
                let at = rng.below(bytes.len());
                bytes.splice(at..at, b"@999999 999999999999\n".iter().copied());
            }
        }
        let _ = stream.write_all(&bytes);
        let _ = stream.flush();
        // Drain whatever the server answers (typed errors and/or results)
        // until it closes or goes quiet; a read timeout here would mean
        // the session hung, which fails the test via the 5 s deadline
        // never being hit on a healthy server.
        drop(stream);
    }

    // The storm left the server healthy: fresh v1 and v2 connections work.
    let mut v1 = ElephantClient::connect(addr).unwrap();
    v1.query_raw("CREATE TABLE alive (a int)").unwrap();
    v1.query_raw("INSERT INTO alive VALUES (1)").unwrap();
    let mut v2 = PipelineClient::connect(addr).unwrap();
    assert_eq!(
        v2.send("QUERY SELECT count(*) AS n FROM alive").unwrap(),
        "n\n1\n"
    );
    v1.shutdown().unwrap();
    drop((v1, v2));
    handle.join();
}
