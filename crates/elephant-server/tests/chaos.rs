//! Seeded chaos harness: drive the full server through fault storms,
//! saturation, and statement timeouts, and hold it to four invariants:
//!
//! 1. no acknowledged write is ever lost (now or across restart),
//! 2. no unacknowledged write survives recovery,
//! 3. inspection reports are byte-identical across restart (modulo
//!    wall-clock timings),
//! 4. the process neither deadlocks nor panics — every test drains
//!    cleanly through `SHUTDOWN`.
//!
//! The schedule is seeded through `ELEPHANT_FAULT_SEED` (CI runs several
//! fixed seeds), so a failure reproduces exactly. Fault-arming tests live
//! in this dedicated binary because the registry is process-global; within
//! the binary they serialize on `TEST_LOCK`.

use elephant_server::{
    start, ClientError, ElephantClient, PipelineClient, RetryPolicy, ServerConfig,
};
use etypes::fault::{self, FaultPolicy};
use etypes::Prng;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::clear_all();
    guard
}

/// The chaos seed: `ELEPHANT_FAULT_SEED` when set (the CI matrix), a fixed
/// default otherwise. Seeds both the fault registry's PRNG and the
/// workload schedule.
fn seed() -> u64 {
    std::env::var("ELEPHANT_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xE1EFA)
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "elephant-chaos-{}-{name}-{}",
        std::process::id(),
        seed()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &std::path::Path) -> ServerConfig {
    ServerConfig {
        data_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    }
    .with_standard_pipeline_data(60, 7)
}

fn stat(stats: &str, key: &str) -> u64 {
    stats
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{key} ")))
        .unwrap_or_else(|| panic!("missing '{key}' in stats:\n{stats}"))
        .parse()
        .unwrap()
}

fn health_line(stats: &str) -> &str {
    stats
        .lines()
        .find_map(|l| l.strip_prefix("health "))
        .unwrap_or_else(|| panic!("missing 'health' in stats:\n{stats}"))
}

/// Blank out `time_us=<digits>` values — wall-clock timings never
/// reproduce across incarnations; everything else must match exactly.
fn strip_times(report: &str) -> String {
    let mut out = String::with_capacity(report.len());
    let mut rest = report;
    while let Some(i) = rest.find("time_us=") {
        let after = i + "time_us=".len();
        out.push_str(&rest[..after]);
        out.push('_');
        rest = rest[after..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

#[test]
fn fault_storm_loses_no_acknowledged_write_and_resurrects_none() {
    let _g = locked();
    let seed = seed();
    fault::set_seed(seed);
    let dir = tmp_dir("storm");

    let handle = start(durable_config(&dir)).unwrap();
    let mut c = ElephantClient::connect(handle.local_addr()).unwrap();
    c.query_raw("CREATE TABLE chaos (v int)").unwrap();

    // Storm: every WAL append may fail; one failure is guaranteed at a
    // fixed point so the degradation path is exercised for every seed.
    let mut schedule = Prng::new(seed ^ 0xC0FFEE);
    fault::set("wal.append", FaultPolicy::Prob(0.25));
    let mut acked: Vec<i64> = Vec::new();
    let mut refused = 0u64;
    for v in 0..40i64 {
        if v == 20 {
            // Guaranteed mid-storm failure regardless of the dice.
            fault::set("wal.append", FaultPolicy::Error);
        }
        match c.query_raw(&format!("INSERT INTO chaos VALUES ({v})")) {
            Ok(_) => acked.push(v),
            Err(ClientError::Server(e)) => {
                // Either the injected fault itself or the read-only gate;
                // neither is an acknowledgement, neither is retryable.
                assert!(
                    e.code == "ERR_EXEC" || e.code == "ERR_READ_ONLY",
                    "unexpected error during storm: {e}"
                );
                assert!(!e.is_retryable(), "write failures must not be retryable");
                refused += 1;
                if v == 20 {
                    fault::set("wal.append", FaultPolicy::Prob(0.25));
                }
                // Re-arm the engine; checkpoint snapshots consistent memory
                // (the failed row was rolled back) and truncates the WAL.
                // The dice occasionally leave the engine degraded a little
                // longer to exercise the read-only path repeatedly.
                if schedule.unit() < 0.8 {
                    c.checkpoint().unwrap();
                }
            }
            Err(e) => panic!("transport error during storm: {e}"),
        }
    }
    assert!(
        refused >= 1,
        "the guaranteed fault at v=20 must have refused"
    );
    fault::clear_all();
    // Leave the engine healthy (the last refusal may have skipped the
    // checkpoint) and verify the counters saw the storm.
    c.checkpoint().unwrap();
    let stats = c.stats().unwrap();
    assert!(stat(&stats, "faults_injected") >= 1, "{stats}");
    assert_eq!(health_line(&stats), "healthy", "{stats}");

    let expect_csv = {
        let mut s = String::from("v\n");
        for v in &acked {
            s.push_str(&format!("{v}\n"));
        }
        s
    };
    let rows_before = c.query_raw("SELECT v FROM chaos ORDER BY v").unwrap();
    assert_eq!(
        rows_before, expect_csv,
        "acked writes visible, refused ones not"
    );
    let report_before = c.inspect(&["age_group"], 0.3, "@healthcare").unwrap();

    c.shutdown().unwrap();
    drop(c);
    handle.join();

    // Restart over the same directory: exactly the acknowledged rows come
    // back — none lost, none resurrected — and inspection reproduces.
    let handle = start(durable_config(&dir)).unwrap();
    let mut c = ElephantClient::connect(handle.local_addr()).unwrap();
    let rows_after = c.query_raw("SELECT v FROM chaos ORDER BY v").unwrap();
    assert_eq!(rows_after, expect_csv, "recovery changed the acked row set");
    let report_after = c.inspect(&["age_group"], 0.3, "@healthcare").unwrap();
    assert_eq!(
        strip_times(&report_after),
        strip_times(&report_before),
        "inspection report not byte-identical across restart"
    );
    c.shutdown().unwrap();
    drop(c);
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The storm again, on a **two-shard** server with one stormed table per
/// shard. The fault registry is process-global, so both shards' WALs
/// misbehave at once; the invariants must hold per shard: acked writes on
/// either shard survive restart, refused ones on either shard stay dead,
/// and a broadcast CHECKPOINT re-arms every shard.
#[test]
fn fault_storm_with_two_shards_holds_per_shard_invariants() {
    let _g = locked();
    let seed = seed();
    fault::set_seed(seed);
    let dir = tmp_dir("storm2");
    let config = || ServerConfig {
        data_dir: Some(dir.clone()),
        shards: 2,
        ..ServerConfig::default()
    };

    // One table per shard (candidate scan; FNV placement is stable).
    let ta = (0..64)
        .map(|i| format!("ca{i}"))
        .find(|n| elephant_server::shard_of(n, 2) == 0)
        .unwrap();
    let tb = (0..64)
        .map(|i| format!("ca{i}"))
        .find(|n| elephant_server::shard_of(n, 2) == 1)
        .unwrap();

    let handle = start(config()).unwrap();
    let mut c = ElephantClient::connect(handle.local_addr()).unwrap();
    c.query_raw(&format!("CREATE TABLE {ta} (v int)")).unwrap();
    c.query_raw(&format!("CREATE TABLE {tb} (v int)")).unwrap();

    fault::set("wal.append", FaultPolicy::Prob(0.25));
    let mut acked: [Vec<i64>; 2] = [Vec::new(), Vec::new()];
    let mut refused = 0u64;
    for v in 0..40i64 {
        if v == 20 {
            fault::set("wal.append", FaultPolicy::Error);
        }
        let (idx, table) = if v % 2 == 0 { (0, &ta) } else { (1, &tb) };
        match c.query_raw(&format!("INSERT INTO {table} VALUES ({v})")) {
            Ok(_) => acked[idx].push(v),
            Err(ClientError::Server(e)) => {
                assert!(
                    e.code == "ERR_EXEC" || e.code == "ERR_READ_ONLY",
                    "unexpected error during storm: {e}"
                );
                assert!(!e.is_retryable());
                refused += 1;
                if v == 20 {
                    fault::set("wal.append", FaultPolicy::Prob(0.25));
                }
                // Broadcast checkpoint: re-arms whichever shard degraded.
                c.checkpoint().unwrap();
            }
            Err(e) => panic!("transport error during storm: {e}"),
        }
    }
    assert!(
        refused >= 1,
        "the guaranteed fault at v=20 must have refused"
    );
    fault::clear_all();
    c.checkpoint().unwrap();
    let stats = c.stats().unwrap();
    assert!(stat(&stats, "faults_injected") >= 1, "{stats}");
    for k in 0..2 {
        let health = stats
            .lines()
            .find_map(|l| l.strip_prefix(&format!("shard{k}.health ")))
            .unwrap_or_else(|| panic!("missing shard{k}.health:\n{stats}"));
        assert_eq!(health, "healthy", "shard {k} still degraded:\n{stats}");
    }

    let expect = |rows: &[i64]| {
        let mut s = String::from("v\n");
        for v in rows {
            s.push_str(&format!("{v}\n"));
        }
        s
    };
    for (table, rows) in [(&ta, &acked[0]), (&tb, &acked[1])] {
        assert_eq!(
            c.query_raw(&format!("SELECT v FROM {table} ORDER BY v"))
                .unwrap(),
            expect(rows),
            "{table}: acked writes visible, refused ones not"
        );
    }
    c.shutdown().unwrap();
    drop(c);
    handle.join();

    // Restart: per-shard recovery returns exactly the acked rows.
    let handle = start(config()).unwrap();
    let mut c = ElephantClient::connect(handle.local_addr()).unwrap();
    for (table, rows) in [(&ta, &acked[0]), (&tb, &acked[1])] {
        assert_eq!(
            c.query_raw(&format!("SELECT v FROM {table} ORDER BY v"))
                .unwrap(),
            expect(rows),
            "{table}: recovery changed the acked row set"
        );
    }
    c.shutdown().unwrap();
    drop(c);
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn degraded_server_serves_reads_and_inspection_until_rearmed() {
    let _g = locked();
    let dir = tmp_dir("degraded");
    let handle = start(durable_config(&dir)).unwrap();
    let mut c = ElephantClient::connect(handle.local_addr()).unwrap();
    c.query_raw("CREATE TABLE t (a int)").unwrap();
    c.query_raw("INSERT INTO t VALUES (1), (2)").unwrap();

    fault::set("wal.append", FaultPolicy::ErrorOnce);
    match c.query_raw("INSERT INTO t VALUES (3)") {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "ERR_EXEC", "{e}"),
        other => panic!("expected injected failure, got {other:?}"),
    }

    // Degraded: health says so, writes are refused with the dedicated
    // code, but reads AND inspection keep serving.
    let stats = c.stats().unwrap();
    assert!(health_line(&stats).starts_with("read_only"), "{stats}");
    match c.query_raw("INSERT INTO t VALUES (4)") {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.code, "ERR_READ_ONLY", "{e}");
            assert!(!e.is_retryable());
        }
        other => panic!("expected read-only refusal, got {other:?}"),
    }
    assert_eq!(
        c.query_raw("SELECT count(*) AS n FROM t").unwrap(),
        "n\n2\n"
    );
    let report = c.inspect(&["age_group"], 0.3, "@healthcare").unwrap();
    assert!(report.contains("inspection verdict="), "{report}");

    // CHECKPOINT re-arms; writes flow again and survive restart.
    c.checkpoint().unwrap();
    let stats = c.stats().unwrap();
    assert_eq!(health_line(&stats), "healthy", "{stats}");
    c.query_raw("INSERT INTO t VALUES (5)").unwrap();
    c.shutdown().unwrap();
    drop(c);
    handle.join();

    let handle = start(durable_config(&dir)).unwrap();
    let mut c = ElephantClient::connect(handle.local_addr()).unwrap();
    assert_eq!(
        c.query_raw("SELECT a FROM t ORDER BY a").unwrap(),
        "a\n1\n2\n5\n"
    );
    c.shutdown().unwrap();
    drop(c);
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn saturated_queue_rejects_busy_and_backoff_drains_it() {
    let _g = locked();
    let dir = tmp_dir("busy");
    // Tiny queue + injected WAL latency: each INSERT parks the executor
    // for 400 ms, so with one running and one queued, further commands
    // exhaust the 250 ms admission wait and bounce with ERR_BUSY.
    let config = ServerConfig {
        data_dir: Some(dir.clone()),
        queue_capacity: 1,
        ..ServerConfig::default()
    };
    let handle = start(config).unwrap();
    let addr = handle.local_addr();
    let mut c = ElephantClient::connect(addr).unwrap();
    c.query_raw("CREATE TABLE t (a int)").unwrap();
    fault::set("wal.append", FaultPolicy::DelayUs(400_000));

    let workers: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = ElephantClient::connect(addr).unwrap();
                // Generous attempts: under full jitter every client gets
                // through once the burst drains; the seed fixes the
                // schedule per ELEPHANT_FAULT_SEED.
                let mut policy = RetryPolicy::new(50, Duration::from_millis(40), seed() ^ i as u64);
                c.send_with_retry(&format!("QUERY INSERT INTO t VALUES ({i})"), &mut policy)
                    .unwrap()
            })
        })
        .collect();
    for w in workers {
        assert_eq!(w.join().unwrap(), "ok 1", "every client eventually lands");
    }
    fault::clear_all();

    assert_eq!(
        c.query_raw("SELECT count(*) AS n FROM t").unwrap(),
        "n\n4\n",
        "each retried INSERT applied exactly once"
    );
    let stats = c.stats().unwrap();
    assert!(
        stat(&stats, "busy_rejections") >= 1,
        "saturation never tripped admission control:\n{stats}"
    );
    c.shutdown().unwrap();
    drop(c);
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pipelined_busy_retries_only_unacked_commands() {
    let _g = locked();
    let dir = tmp_dir("pipebusy");
    // Same saturation recipe as above, but the clients are v2 pipelines:
    // each queues several INSERTs of distinct values before reading any
    // response, so ERR_BUSY lands mid-pipeline. pipeline_with_retry must
    // re-send only the refused commands — if it replayed anything the
    // server already acknowledged, a value would apply twice and the
    // final count/sum would betray it.
    let config = ServerConfig {
        data_dir: Some(dir.clone()),
        queue_capacity: 1,
        ..ServerConfig::default()
    };
    let handle = start(config).unwrap();
    let addr = handle.local_addr();
    let mut c = ElephantClient::connect(addr).unwrap();
    c.query_raw("CREATE TABLE t (a int)").unwrap();
    fault::set("wal.append", FaultPolicy::DelayUs(400_000));

    let workers: Vec<_> = (0..3)
        .map(|i| {
            std::thread::spawn(move || {
                let mut p = PipelineClient::connect(addr).unwrap();
                let commands: Vec<String> = (0..3)
                    .map(|j| format!("QUERY INSERT INTO t VALUES ({})", i * 10 + j))
                    .collect();
                let mut policy = RetryPolicy::new(50, Duration::from_millis(40), seed() ^ i as u64);
                let results = p.pipeline_with_retry(&commands, &mut policy).unwrap();
                for r in results {
                    assert_eq!(
                        r.unwrap(),
                        "ok 1",
                        "every pipelined INSERT eventually lands"
                    );
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    fault::clear_all();

    // Values 0,1,2, 10,11,12, 20,21,22: count 9, sum 99 — any replay of an
    // acknowledged INSERT breaks both.
    assert_eq!(
        c.query_raw("SELECT count(*) AS n FROM t").unwrap(),
        "n\n9\n"
    );
    assert_eq!(c.query_raw("SELECT sum(a) AS s FROM t").unwrap(), "s\n99\n");
    let stats = c.stats().unwrap();
    assert!(
        stat(&stats, "busy_rejections") >= 1,
        "saturation never tripped admission control:\n{stats}"
    );
    c.shutdown().unwrap();
    drop(c);
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn statement_timeout_is_typed_retryable_and_counted() {
    let _g = locked();
    // Volatile server with a zero statement budget: any statement that
    // produces rows trips the cooperative cancellation.
    let config = ServerConfig {
        statement_timeout_ms: Some(0),
        ..ServerConfig::default()
    };
    let handle = start(config).unwrap();
    let mut c = ElephantClient::connect(handle.local_addr()).unwrap();
    c.query_raw("CREATE TABLE t (a int)").unwrap();
    let values: Vec<String> = (0..200).map(|i| format!("({i})")).collect();
    c.query_raw(&format!("INSERT INTO t VALUES {}", values.join(",")))
        .unwrap();

    match c.query_raw("SELECT count(*) AS n FROM t CROSS JOIN t AS b CROSS JOIN t AS c") {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.code, "ERR_TIMEOUT", "{e}");
            assert!(e.is_retryable(), "timeouts are retryable by contract");
            assert!(e.message.contains("statement timeout"), "{e}");
        }
        other => panic!("expected statement timeout, got {other:?}"),
    }
    let stats = c.stats().unwrap();
    assert!(stat(&stats, "statements_timed_out") >= 1, "{stats}");
    // The session and engine survive the cancellation.
    assert_eq!(
        c.query_raw("SELECT count(*) AS n FROM t").unwrap(),
        "n\n200\n"
    );
    c.shutdown().unwrap();
    drop(c);
    handle.join();
}
