//! Exposition parity: the `/metrics` listener and the `STATS` verb are two
//! renderings of the SAME registry, so every key STATS prints must appear
//! on `/metrics` with the identical value (modulo the documented naming
//! map). The scrape runs FIRST and the STATS render counts itself only
//! after rendering, so the two snapshots are directly comparable on a
//! quiesced server.
//!
//! Also covers exposition well-formedness (families contiguous under one
//! `# TYPE` each), per-shard labels on a 4-shard server, and the tiny HTTP
//! surface (404 / 405 / scrape counter).

use elephant_server::{shard_of, start, ElephantClient, PipelineClient, ServerConfig};
use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

/// Plain HTTP/1.1 GET; returns (status line, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: test\r\nAccept: */*\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("response has a head");
    let status = head.lines().next().unwrap().to_string();
    let content_type = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Type: "))
        .unwrap_or("")
        .to_string();
    (status, content_type, body.to_string())
}

/// One parsed exposition sample: (family-qualified name, raw labels, value).
struct Sample {
    name: String,
    labels: String,
    value: String,
}

fn parse_exposition(body: &str) -> Vec<Sample> {
    body.lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .map(|l| {
            let (ident, value) = l
                .rsplit_once(' ')
                .unwrap_or_else(|| panic!("bad line: {l}"));
            let (name, labels) = match ident.split_once('{') {
                Some((n, rest)) => (n.to_string(), format!("{{{rest}")),
                None => (ident.to_string(), String::new()),
            };
            Sample {
                name,
                labels,
                value: value.to_string(),
            }
        })
        .collect()
}

/// Map a STATS key to its candidate Prometheus family names (without the
/// `elephant_` prefix). See docs/OBSERVABILITY.md for the naming map.
fn prom_candidates(key: &str) -> Vec<String> {
    let mapped = if key == "build_version" {
        "build".to_string()
    } else if let Some(rest) = key.strip_prefix("shard").and_then(|r| {
        // `shard<k>.<field>` only; `shards`/`shard_fallbacks` pass through.
        r.split_once('.')
            .filter(|(k, _)| k.chars().all(|c| c.is_ascii_digit()))
            .map(|(_, field)| field)
    }) {
        format!("shard_{rest}")
    } else if key.starts_with("plan_cache_invalidations.") {
        "plan_cache_table_invalidations".to_string()
    } else {
        key.to_string()
    };
    let mut cands = vec![mapped.clone()];
    // Histogram totals export under the conventional `_sum` suffix.
    if let Some(stem) = mapped.strip_suffix("_total_us") {
        cands.push(format!("{stem}_sum"));
    }
    cands
}

#[test]
fn every_stats_key_is_on_the_metrics_endpoint_with_the_same_value() {
    const SHARDS: usize = 4;
    let dir: PathBuf =
        std::env::temp_dir().join(format!("elephant-metrics-parity-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = start(ServerConfig {
        shards: SHARDS,
        data_dir: Some(dir.clone()),
        metrics_addr: Some("127.0.0.1:0".into()),
        ..ServerConfig::default()
    })
    .unwrap();
    let metrics_addr = handle.metrics_addr().expect("metrics listener bound");
    let mut c = ElephantClient::connect(handle.local_addr()).unwrap();

    // A workload that lights up most families: DDL/DML on two shards, a
    // scatter-gather join, plan cache traffic with an invalidation, a mode
    // switch, an error, and a TRACE.
    let names: Vec<String> = (0..32).map(|i| format!("t{i}")).collect();
    let a = names[0].clone();
    let b = names
        .iter()
        .find(|n| shard_of(n, SHARDS) != shard_of(&a, SHARDS))
        .unwrap()
        .clone();
    c.query_raw(&format!("CREATE TABLE {a} (x int)")).unwrap();
    c.query_raw(&format!("CREATE TABLE {b} (x int)")).unwrap();
    c.query_raw(&format!("INSERT INTO {a} VALUES (1), (2)"))
        .unwrap();
    c.query_raw(&format!("INSERT INTO {b} VALUES (2), (3)"))
        .unwrap();
    c.query_raw(&format!(
        "SELECT count(*) AS n FROM {a} INNER JOIN {b} ON {a}.x = {b}.x"
    ))
    .unwrap();
    c.prepare("p", &format!("SELECT sum(x) AS s FROM {a}"))
        .unwrap();
    c.execute("p").unwrap();
    // A scratch table pinned to shard 0 (the shard STATS reads engine
    // counters from): DROP after PREPARE drives the targeted per-table
    // plan-cache invalidation counter.
    let scratch = names
        .iter()
        .find(|n| shard_of(n, SHARDS) == 0 && **n != a && **n != b)
        .unwrap()
        .clone();
    c.query_raw(&format!("CREATE TABLE {scratch} (y int)"))
        .unwrap();
    c.prepare("stale", &format!("SELECT count(*) AS n FROM {scratch}"))
        .unwrap();
    c.query_raw(&format!("DROP TABLE {scratch}")).unwrap();
    assert_eq!(
        c.send("SET exec_mode columnar").unwrap(),
        "set exec_mode columnar"
    );
    c.query_raw(&format!("SELECT x FROM {a} ORDER BY x"))
        .unwrap();
    let _ = c.query_raw("SELECT nope FROM missing_table").unwrap_err();
    c.trace(Some(5)).unwrap();

    // v2 traffic on the same 4-shard server: a pipelined burst, a BATCH,
    // and a parameterized EXECUTE, so the protocol-v2 counter families
    // export live values, not just zeros.
    let mut p = PipelineClient::connect(handle.local_addr()).unwrap();
    for r in p
        .pipeline(&[
            format!("QUERY SELECT x FROM {a} ORDER BY x"),
            format!("QUERY SELECT count(*) AS n FROM {b}"),
            format!("BATCH INSERT INTO {a} VALUES (7)\u{1e}SELECT count(*) AS n FROM {a}"),
        ])
        .unwrap()
    {
        r.unwrap();
    }
    p.send(&format!("PREPARE byx AS SELECT x FROM {b} WHERE x = $1"))
        .unwrap();
    p.send("EXECUTE byx (2)").unwrap();
    drop(p);

    // Scrape FIRST (the scrape counter increments before collection, the
    // STATS render counts itself after rendering: both snapshots agree).
    let (status, content_type, prom) = http_get(metrics_addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(content_type.contains("version=0.0.4"), "{content_type}");
    let stats = c.stats().unwrap();

    let samples = parse_exposition(&prom);
    let mut missing: Vec<String> = Vec::new();
    for line in stats.lines() {
        let (key, value) = line
            .split_once(' ')
            .unwrap_or_else(|| panic!("bad STATS line: {line}"));
        // Wall-clock seconds tick between the two renders; open spans are
        // a race against the in-flight STATS command itself.
        if key == "uptime_s" || key.ends_with("trace_spans_open") {
            continue;
        }
        let matched = prom_candidates(key).iter().any(|cand| {
            let numeric = format!("elephant_{cand}");
            let info = format!("elephant_{cand}_info");
            let value_label = format!("value=\"{value}\"");
            samples.iter().any(|s| {
                (s.name == numeric && s.value == value)
                    || (s.name == info && s.labels.contains(&value_label))
            })
        });
        if !matched {
            missing.push(format!("{key} {value}"));
        }
    }
    assert!(
        missing.is_empty(),
        "STATS keys absent (or with different values) on /metrics:\n{}\n\n--- STATS ---\n{stats}\n--- /metrics ---\n{prom}",
        missing.join("\n")
    );

    // The workload's counters really are live on the exposition (guards
    // against a parity pass on an all-zero registry).
    let sample = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing {name} in:\n{prom}"))
    };
    assert!(
        sample("elephant_commands_served")
            .value
            .parse::<u64>()
            .unwrap()
            >= 12
    );
    assert_eq!(sample("elephant_shard_scatter_gather").value, "1");
    assert!(sample("elephant_exec_errors").value.parse::<u64>().unwrap() >= 1);
    assert!(prom.contains("elephant_latency_bucket{le=\""), "{prom}");
    assert!(
        prom.contains("elephant_plan_cache_table_invalidations{"),
        "{prom}"
    );
    // The v2 wire counters export, and the ones the workload drove are
    // non-zero; the result-buffer gauge is back to zero on a quiesced
    // server (its peak stays whatever streaming reached, here 0).
    assert!(
        sample("elephant_pipelined_frames")
            .value
            .parse::<u64>()
            .unwrap()
            >= 1,
        "{prom}"
    );
    assert_eq!(sample("elephant_batch_statements").value, "2");
    assert_eq!(sample("elephant_params_bound").value, "1");
    sample("elephant_chunks_streamed");
    assert_eq!(sample("elephant_result_buffer_bytes").value, "0");
    sample("elephant_result_buffer_peak_bytes");

    // 4-shard labels: every shard reports its gauges.
    for k in 0..SHARDS {
        let want = format!("{{shard=\"{k}\"}}");
        assert!(
            samples
                .iter()
                .any(|s| s.name == "elephant_shard_commands" && s.labels == want),
            "missing shard_commands for shard {k}:\n{prom}"
        );
    }

    // Well-formedness: one `# TYPE` per family, all family samples
    // contiguous directly under it, every sample prefixed `elephant_`.
    let mut seen_types: HashSet<&str> = HashSet::new();
    let mut current: Option<(&str, &str)> = None; // (family, kind)
    for line in prom.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (family, kind) = rest.split_once(' ').unwrap();
            assert!(seen_types.insert(family), "duplicate # TYPE for {family}");
            current = Some((family, kind));
        } else if !line.is_empty() {
            let (family, kind) = current.expect("sample before any # TYPE");
            assert!(line.starts_with("elephant_"), "unprefixed sample: {line}");
            let ident = line.split([' ', '{']).next().unwrap();
            let member = match kind {
                "histogram" => {
                    ident == format!("{family}_bucket")
                        || ident == format!("{family}_sum")
                        || ident == format!("{family}_count")
                }
                _ => ident == family,
            };
            assert!(member, "sample {ident} not in family {family} ({kind})");
        }
    }
    // Histogram buckets are cumulative and capped by their _count.
    let mut last_cumulative: HashMap<String, u64> = HashMap::new();
    for s in &samples {
        if s.name == "elephant_latency_bucket" {
            let v: u64 = s.value.parse().unwrap();
            let prev = last_cumulative.entry(s.name.clone()).or_insert(0);
            assert!(v >= *prev, "bucket series not cumulative:\n{prom}");
            *prev = v;
        }
    }
    assert_eq!(
        last_cumulative["elephant_latency_bucket"],
        sample("elephant_latency_count")
            .value
            .parse::<u64>()
            .unwrap(),
        "+Inf bucket must equal _count"
    );

    // The tiny HTTP surface.
    let (status, _, body) = http_get(metrics_addr, "/nope");
    assert!(status.contains("404"), "{status}");
    assert!(body.contains("/metrics"), "{body}");

    // Scrapes count themselves: the next exposition reports both scrapes
    // that came before it (parity scrape + 404 probe hits /nope, so just
    // the one) plus itself.
    let (_, _, prom2) = http_get(metrics_addr, "/metrics");
    let scrapes: u64 = parse_exposition(&prom2)
        .iter()
        .find(|s| s.name == "elephant_metrics_scrapes")
        .unwrap()
        .value
        .parse()
        .unwrap();
    assert_eq!(scrapes, 2, "{prom2}");

    c.shutdown().unwrap();
    drop(c);
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Non-GET requests are refused without crashing the listener.
#[test]
fn metrics_listener_rejects_non_get_and_survives() {
    let handle = start(ServerConfig {
        metrics_addr: Some("127.0.0.1:0".into()),
        ..ServerConfig::default()
    })
    .unwrap();
    let metrics_addr = handle.metrics_addr().unwrap();

    let mut s = TcpStream::connect(metrics_addr).unwrap();
    write!(s, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");

    // The listener still serves after the bad request.
    let (status, _, body) = http_get(metrics_addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains("elephant_uptime_s"), "{body}");

    let mut c = ElephantClient::connect(handle.local_addr()).unwrap();
    c.shutdown().unwrap();
    drop(c);
    handle.join();
}
