//! End-to-end replication: a durable leader streaming to live follower
//! servers, checked for byte-identical reads (ctids included), read
//! routing, and bounded staleness.

use elephant_server::{start, ClientError, ElephantClient, ReplicatedClient, ServerConfig};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("elephant-repl-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn leader_config(dir: &Path) -> ServerConfig {
    ServerConfig {
        data_dir: Some(dir.to_path_buf()),
        repl_addr: Some("127.0.0.1:0".into()),
        ..ServerConfig::default()
    }
    .with_standard_pipeline_data(60, 7)
}

fn follower_config(leader_repl: &str) -> ServerConfig {
    ServerConfig {
        replicate_from: Some(leader_repl.to_string()),
        ..ServerConfig::default()
    }
    .with_standard_pipeline_data(60, 7)
}

fn wait_until(what: &str, mut ok: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(15);
    while !ok() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Wait until `follower` has applied everything the leader committed.
fn wait_caught_up(leader: &mut ElephantClient, follower: &mut ElephantClient) {
    let committed = ElephantClient::parse_watermark(&leader.lag().unwrap(), "committed_lsn")
        .expect("leader LAG carries committed_lsn");
    wait_until("follower catch-up", || {
        ElephantClient::parse_watermark(&follower.lag().unwrap(), "applied_lsn")
            .is_some_and(|applied| applied >= committed)
    });
}

/// Blank out `time_us=<digits>` values — wall-clock timings never
/// reproduce across servers; everything else must match exactly.
fn strip_times(report: &str) -> String {
    let mut out = String::with_capacity(report.len());
    let mut rest = report;
    while let Some(i) = rest.find("time_us=") {
        let after = i + "time_us=".len();
        out.push_str(&rest[..after]);
        out.push('_');
        rest = rest[after..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

#[test]
fn followers_serve_byte_identical_queries_and_inspections() {
    let dir = tmp_dir("identical");
    let leader_handle = start(leader_config(&dir)).unwrap();
    let repl_addr = leader_handle.repl_addr().unwrap().to_string();
    let f1_handle = start(follower_config(&repl_addr)).unwrap();
    let f2_handle = start(follower_config(&repl_addr)).unwrap();

    let mut leader = ElephantClient::connect(leader_handle.local_addr()).unwrap();
    let mut f1 = ElephantClient::connect(f1_handle.local_addr()).unwrap();
    let mut f2 = ElephantClient::connect(f2_handle.local_addr()).unwrap();

    leader
        .query_raw("CREATE TABLE orders (id serial, item text, qty int)")
        .unwrap();
    leader
        .query_raw("INSERT INTO orders (item, qty) VALUES ('tusk', 2), ('trunk', 5)")
        .unwrap();
    leader
        .query_raw("INSERT INTO orders (item, qty) VALUES ('ear', 7)")
        .unwrap();
    wait_caught_up(&mut leader, &mut f1);
    wait_caught_up(&mut leader, &mut f2);

    // Rows — including the ctid virtual column, which pins physical row
    // identity — must be byte-identical on every replica.
    let probes = [
        "SELECT ctid, id, item, qty FROM orders ORDER BY id",
        "SELECT item, sum(qty) AS total FROM orders GROUP BY item ORDER BY item",
        "SELECT count(*) AS n FROM orders",
    ];
    for sql in probes {
        let want = leader.query_raw(sql).unwrap();
        assert_eq!(f1.query_raw(sql).unwrap(), want, "follower 1: {sql}");
        assert_eq!(f2.query_raw(sql).unwrap(), want, "follower 2: {sql}");
    }
    // Plans replicate too: the follower sees the same catalog.
    let explain = "EXPLAIN SELECT item FROM orders WHERE qty > 3";
    assert_eq!(
        f1.send(explain).unwrap(),
        leader.send(explain).unwrap(),
        "plans diverged"
    );
    // Inspection runs unlogged, so it works on the read-only follower and
    // reproduces the leader's report byte-for-byte (modulo wall-clock).
    let leader_report = leader.inspect(&["age_group"], 0.3, "@healthcare").unwrap();
    let follower_report = f1.inspect(&["age_group"], 0.3, "@healthcare").unwrap();
    assert_eq!(strip_times(&follower_report), strip_times(&leader_report));

    // Topology is observable from both ends.
    let replica = leader.replica().unwrap();
    assert!(replica.starts_with("role leader"), "{replica}");
    assert!(replica.contains("followers_connected 2"), "{replica}");
    let replica = f1.replica().unwrap();
    assert!(replica.starts_with("role follower"), "{replica}");
    assert!(
        replica.contains(&format!("leader {repl_addr}")),
        "{replica}"
    );
    let stats = f1.stats().unwrap();
    assert!(stats.contains("repl_role follower"), "{stats}");
    assert!(stats.contains("repl_connected 1"), "{stats}");
    let stats = leader.stats().unwrap();
    assert!(stats.contains("repl_role leader"), "{stats}");
    assert!(stats.contains("repl_followers_connected 2"), "{stats}");

    for (mut c, h) in [(f1, f1_handle), (f2, f2_handle)] {
        c.shutdown().unwrap();
        drop(c);
        h.join();
    }
    leader.shutdown().unwrap();
    drop(leader);
    leader_handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn follower_refuses_writes_with_read_only_for_its_whole_life() {
    let dir = tmp_dir("readonly");
    let leader_handle = start(leader_config(&dir)).unwrap();
    let repl_addr = leader_handle.repl_addr().unwrap().to_string();
    let f_handle = start(follower_config(&repl_addr)).unwrap();
    let mut leader = ElephantClient::connect(leader_handle.local_addr()).unwrap();
    let mut f = ElephantClient::connect(f_handle.local_addr()).unwrap();

    leader.query_raw("CREATE TABLE t (a int)").unwrap();
    leader.query_raw("INSERT INTO t VALUES (1)").unwrap();
    wait_caught_up(&mut leader, &mut f);

    match f.query_raw("INSERT INTO t VALUES (99)") {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.code, "ERR_READ_ONLY", "{e}");
            assert!(e.message.contains("leader"), "{e}");
            assert!(!e.is_retryable());
        }
        other => panic!("follower accepted a write: {other:?}"),
    }
    // CHECKPOINT never re-arms a replica (there is no durable store to
    // re-arm into); the pin is for the process's whole life.
    assert!(f.checkpoint().is_err());
    match f.query_raw("CREATE TABLE sneaky (a int)") {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "ERR_READ_ONLY", "{e}"),
        other => panic!("follower accepted DDL: {other:?}"),
    }
    // Reads and session-scoped prepared statements still serve.
    assert_eq!(f.query_raw("SELECT a FROM t").unwrap(), "a\n1\n");
    f.prepare("q", "SELECT a FROM t").unwrap();
    assert_eq!(f.execute("q").unwrap(), "a\n1\n");
    // The refused write never reached the leader.
    assert_eq!(
        leader.query_raw("SELECT count(*) AS n FROM t").unwrap(),
        "n\n1\n"
    );

    f.shutdown().unwrap();
    drop(f);
    f_handle.join();
    leader.shutdown().unwrap();
    drop(leader);
    leader_handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replicated_client_routes_reads_writes_and_bounds_staleness() {
    let dir = tmp_dir("routing");
    let leader_handle = start(leader_config(&dir)).unwrap();
    let repl_addr = leader_handle.repl_addr().unwrap().to_string();
    let f1_handle = start(follower_config(&repl_addr)).unwrap();
    let f2_handle = start(follower_config(&repl_addr)).unwrap();

    let followers = vec![
        f1_handle.local_addr().to_string(),
        f2_handle.local_addr().to_string(),
    ];
    let mut rc = ReplicatedClient::connect(
        &leader_handle.local_addr().to_string(),
        &followers,
        Duration::from_secs(3),
    )
    .unwrap();
    assert_eq!(rc.follower_count(), 2);

    rc.write("CREATE TABLE kv (k int, v text)").unwrap();
    rc.write("INSERT INTO kv VALUES (1, 'one'), (2, 'two')")
        .unwrap();

    // Bounded staleness: read-your-write through a follower by waiting on
    // the leader's committed LSN.
    let target = rc.leader_committed_lsn().unwrap();
    let rows = rc
        .read_at_lsn(
            "SELECT k, v FROM kv ORDER BY k",
            target,
            Duration::from_secs(10),
        )
        .unwrap();
    assert_eq!(rows, "k,v\n1,one\n2,two\n");

    // Plain reads round-robin across followers and never touch the leader:
    // the leader's QUERY counter must not move.
    let leader_queries_before = {
        let stats = rc.leader().stats().unwrap();
        ElephantClient::parse_watermark(&stats, "queries").unwrap()
    };
    for _ in 0..4 {
        assert_eq!(rc.read("SELECT count(*) AS n FROM kv").unwrap(), "n\n2\n");
    }
    let stats = rc.leader().stats().unwrap();
    assert_eq!(
        ElephantClient::parse_watermark(&stats, "queries").unwrap(),
        leader_queries_before,
        "round-robin reads leaked to the leader:\n{stats}"
    );
    // Both followers saw traffic.
    for h in [&f1_handle, &f2_handle] {
        let mut c = ElephantClient::connect(h.local_addr()).unwrap();
        let stats = c.stats().unwrap();
        assert!(
            ElephantClient::parse_watermark(&stats, "queries").unwrap() >= 2,
            "follower idle despite round-robin:\n{stats}"
        );
    }

    // A write sent down the read path bounces off the follower with
    // ERR_READ_ONLY and lands on the leader transparently.
    assert_eq!(
        rc.read("INSERT INTO kv VALUES (3, 'three')").unwrap(),
        "ok 1"
    );
    let target = rc.leader_committed_lsn().unwrap();
    let rows = rc
        .read_at_lsn(
            "SELECT count(*) AS n FROM kv",
            target,
            Duration::from_secs(10),
        )
        .unwrap();
    assert_eq!(rows, "n\n3\n", "redirected write not visible");

    for h in [f1_handle, f2_handle] {
        let mut c = ElephantClient::connect(h.local_addr()).unwrap();
        c.shutdown().unwrap();
        drop(c);
        h.join();
    }
    rc.leader().shutdown().unwrap();
    drop(rc);
    leader_handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn connect_with_timeout_connects_and_fails_fast() {
    let handle = start(ServerConfig::default()).unwrap();
    let mut c =
        ElephantClient::connect_with_timeout(handle.local_addr(), Duration::from_secs(3)).unwrap();
    assert_eq!(c.query_raw("SELECT 1 AS one").unwrap(), "one\n1\n");

    // A dead port errors instead of hanging; bound the whole attempt.
    let started = Instant::now();
    let dead = ElephantClient::connect_with_timeout("127.0.0.1:9", Duration::from_millis(500));
    assert!(dead.is_err(), "nothing listens on the discard port");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "connect_with_timeout did not bound the attempt"
    );

    c.shutdown().unwrap();
    drop(c);
    handle.join();
}

#[test]
fn leader_without_data_dir_is_refused_and_so_are_hybrids() {
    fn start_err(config: ServerConfig) -> String {
        match start(config) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("invalid replication config was accepted"),
        }
    }
    let err = start_err(ServerConfig {
        repl_addr: Some("127.0.0.1:0".into()),
        ..ServerConfig::default()
    });
    assert!(err.contains("--data-dir"), "{err}");

    let dir = tmp_dir("hybrid");
    let err = start_err(ServerConfig {
        data_dir: Some(dir.clone()),
        replicate_from: Some("127.0.0.1:1".into()),
        ..ServerConfig::default()
    });
    assert!(err.contains("volatile"), "{err}");

    let err = start_err(ServerConfig {
        repl_addr: Some("127.0.0.1:0".into()),
        replicate_from: Some("127.0.0.1:1".into()),
        ..ServerConfig::default()
    });
    assert!(err.contains("not both"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
