//! Distributed-transaction acceptance: a cross-shard write script on a
//! 4-shard durable server commits atomically via two-phase commit, leaves
//! ONE correlated span tree (`prepare` → `decision` → `commit`), survives a
//! restart, aborts without a trace when any statement fails, and is never
//! observed half-applied by a concurrent scatter-gather read (the
//! consistent cut).

use elephant_server::{shard_of, start, ElephantClient, ServerConfig};
use std::collections::BTreeSet;
use std::path::PathBuf;

const SHARDS: usize = 4;

/// Extract `<key>=<value>` from a rendered span line.
fn field<'a>(line: &'a str, key: &str) -> &'a str {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("missing '{key}=' in span line: {line}"))
}

/// Two table names the router provably places on different shards.
fn split_pair() -> (String, String) {
    let names: Vec<String> = (0..32).map(|i| format!("t{i}")).collect();
    let a = names[0].clone();
    let b = names
        .iter()
        .find(|n| shard_of(n, SHARDS) != shard_of(&a, SHARDS))
        .expect("32 names must hit at least two of four shards")
        .clone();
    (a, b)
}

fn count(c: &mut ElephantClient, table: &str) -> u64 {
    c.query_raw(&format!("SELECT count(*) AS n FROM {table}"))
        .unwrap()
        .lines()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap()
}

/// A committed cross-shard transaction is atomic, traced as one tree with
/// txn-prepare/txn-decision/txn-commit spans, and durable across a restart.
#[test]
fn cross_shard_txn_commits_atomically_traced_and_durable() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("elephant-txn-2pc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = start(ServerConfig {
        shards: SHARDS,
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = ElephantClient::connect(handle.local_addr()).unwrap();
    let (a, b) = split_pair();

    c.query_raw(&format!("CREATE TABLE {a} (x int)")).unwrap();
    c.query_raw(&format!("CREATE TABLE {b} (x int)")).unwrap();
    assert_eq!(
        c.query_raw(&format!(
            "INSERT INTO {a} VALUES (1); INSERT INTO {b} VALUES (1)"
        ))
        .unwrap(),
        "ok 2"
    );
    assert_eq!(count(&mut c, &a), 1);
    assert_eq!(count(&mut c, &b), 1);

    // --- The transaction's span tree --------------------------------------
    // The script root is the only root whose summary contains a ';'.
    let listing = c.trace(Some(16)).unwrap();
    let root = listing
        .lines()
        .find(|l| l.contains("kind=command") && l.contains(";"))
        .unwrap_or_else(|| panic!("no 2PC root in listing:\n{listing}"));
    let qid: u64 = field(root, "qid")
        .strip_prefix('q')
        .unwrap()
        .parse()
        .unwrap();
    let tree = c.trace_tree(qid).unwrap();
    let lines: Vec<&str> = tree.lines().filter(|l| l.contains("span seq=")).collect();
    for kind in [
        "command",
        "router",
        "txn-prepare",
        "txn-decision",
        "txn-commit",
    ] {
        assert!(
            lines.iter().any(|l| field(l, "kind") == kind),
            "missing kind={kind} in 2PC tree:\n{tree}"
        );
    }
    // Every span correlates to this one query id.
    for line in &lines {
        assert_eq!(field(line, "qid"), format!("q{qid}"), "{tree}");
    }
    // The route span carries the transaction id and the consistent-cut
    // vector; prepares ran on two distinct shards (that is what makes the
    // trace distributed).
    let route = lines.iter().find(|l| field(l, "kind") == "router").unwrap();
    assert!(route.contains("2pc txn="), "{tree}");
    assert!(route.contains("cut=["), "{tree}");
    let prepare_shards: BTreeSet<&str> = lines
        .iter()
        .filter(|l| field(l, "kind") == "txn-prepare")
        .map(|l| field(l, "shard"))
        .collect();
    assert_eq!(prepare_shards.len(), 2, "{tree}");
    let commit_shards: BTreeSet<&str> = lines
        .iter()
        .filter(|l| field(l, "kind") == "txn-commit")
        .map(|l| field(l, "shard"))
        .collect();
    assert_eq!(commit_shards, prepare_shards, "{tree}");

    // --- Durability across restart ----------------------------------------
    c.shutdown().unwrap();
    drop(c);
    handle.join();
    let handle = start(ServerConfig {
        shards: SHARDS,
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = ElephantClient::connect(handle.local_addr()).unwrap();
    assert_eq!(count(&mut c, &a), 1, "committed txn lost on {a}'s shard");
    assert_eq!(count(&mut c, &b), 1, "committed txn lost on {b}'s shard");
    // A second transaction after recovery: the txn-id allocator must have
    // reseeded past the recovered decision log.
    assert_eq!(
        c.query_raw(&format!(
            "INSERT INTO {a} VALUES (2); INSERT INTO {b} VALUES (2)"
        ))
        .unwrap(),
        "ok 2"
    );
    assert_eq!(count(&mut c, &a), 2);
    assert_eq!(count(&mut c, &b), 2);
    c.shutdown().unwrap();
    drop(c);
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// When any statement of the script fails to prepare, the whole transaction
/// aborts: no shard keeps any of its effects, and the abort is counted.
#[test]
fn failed_prepare_aborts_on_every_shard() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("elephant-txn-abort-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = start(ServerConfig {
        shards: SHARDS,
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = ElephantClient::connect(handle.local_addr()).unwrap();
    let (a, b) = split_pair();
    c.query_raw(&format!("CREATE TABLE {a} (x int)")).unwrap();
    c.query_raw(&format!("CREATE TABLE {b} (x int)")).unwrap();
    c.query_raw(&format!("INSERT INTO {a} VALUES (1)")).unwrap();

    // A name hashed to b's shard that does not exist: the DROP parses and
    // routes, then fails at execution — after {a}'s shard already prepared
    // its INSERT. The prepared leg must unwind.
    let missing = (0..64)
        .map(|i| format!("missing{i}"))
        .find(|n| shard_of(n, SHARDS) == shard_of(&b, SHARDS))
        .unwrap();
    let err = c
        .query_raw(&format!(
            "INSERT INTO {a} VALUES (99); DROP TABLE {missing}"
        ))
        .unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains(&missing), "{msg}");
    assert_eq!(count(&mut c, &a), 1, "aborted txn leaked rows into {a}");

    let stats = c.stats().unwrap();
    assert!(stats.contains("\ntxn_aborts 1"), "{stats}");
    assert!(stats.contains("\ntxn_commits 0"), "{stats}");

    // The unwind is durable too: nothing resurfaces after a restart.
    c.shutdown().unwrap();
    drop(c);
    handle.join();
    let handle = start(ServerConfig {
        shards: SHARDS,
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = ElephantClient::connect(handle.local_addr()).unwrap();
    assert_eq!(count(&mut c, &a), 1, "aborted txn resurfaced on {a}");
    c.shutdown().unwrap();
    drop(c);
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The consistent read cut: while one session streams cross-shard
/// transactions that insert one row into each of two tables, concurrent
/// scatter-gather reads must always observe the SAME number of rows in
/// both — a cross join's cardinality `n_a * n_b` is a perfect square iff
/// `n_a == n_b`.
#[test]
fn scatter_gather_reads_observe_transactions_all_or_none() {
    let handle = start(ServerConfig {
        shards: SHARDS,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.local_addr();
    let mut c = ElephantClient::connect(addr).unwrap();
    let (a, b) = split_pair();
    c.query_raw(&format!("CREATE TABLE {a} (x int)")).unwrap();
    c.query_raw(&format!("CREATE TABLE {b} (x int)")).unwrap();

    const TXNS: u64 = 40;
    let writer = {
        let (a, b) = (a.clone(), b.clone());
        std::thread::spawn(move || {
            let mut w = ElephantClient::connect(addr).unwrap();
            for k in 1..=TXNS {
                let reply = w
                    .query_raw(&format!(
                        "INSERT INTO {a} VALUES ({k}); INSERT INTO {b} VALUES ({k})"
                    ))
                    .unwrap();
                assert_eq!(reply, "ok 2");
            }
        })
    };

    // Race the writer with cross-shard reads; every observation must be a
    // perfect square. Without the transaction gate this fails within a few
    // iterations (the read exports {a} before a txn and {b} after it).
    let mut nonzero = 0u64;
    loop {
        let n: u64 = c
            .query_raw(&format!("SELECT count(*) AS n FROM {a} CROSS JOIN {b}"))
            .unwrap()
            .lines()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        let root = (n as f64).sqrt().round() as u64;
        assert_eq!(
            root * root,
            n,
            "scatter-gather observed a half-applied transaction: |{a}|*|{b}| = {n}"
        );
        if n > 0 {
            nonzero += 1;
        }
        if n == TXNS * TXNS {
            break;
        }
    }
    writer.join().unwrap();
    assert!(nonzero > 0, "reader never overlapped the writer");
    assert_eq!(count(&mut c, &a), TXNS);
    assert_eq!(count(&mut c, &b), TXNS);

    c.shutdown().unwrap();
    drop(c);
    handle.join();
}
