//! Differential routing test: a seeded workload must behave **byte-for-
//! byte** identically on a single-shard server and on a four-shard server —
//! same CSV bodies, same error codes, same error text. Sharding is a
//! performance topology, not a semantics change; any divergence here is a
//! router bug (mis-routed statement, scatter-gather merge error, or an
//! error message that leaks the topology).
//!
//! The corpus is `sqlengine::fuzz` (the same generator the row-vs-columnar
//! differential uses) with the tables renamed so that at four shards they
//! provably land on *different* shards — every join in the corpus then
//! exercises scatter-gather on the sharded server.

use elephant_server::{shard_of, start, ClientError, ElephantClient, ServerConfig};
use etypes::Prng;
use sqlengine::fuzz;

const SHARDS: usize = 4;
const QUERIES: usize = 120;

/// Collapse a client result into comparable text: Ok body, or
/// `code`/`message` for server errors. Transport errors fail the test.
fn outcome(result: Result<String, ClientError>) -> Result<String, (String, String)> {
    match result {
        Ok(body) => Ok(body),
        Err(ClientError::Server(e)) => Err((e.code, e.message)),
        Err(ClientError::Io(e)) => panic!("transport error mid-differential: {e}"),
    }
}

#[test]
fn sharded_and_single_shard_servers_agree_byte_for_byte() {
    // Rename the corpus tables to names the router places on different
    // shards at four shards, so joins must scatter-gather.
    let names: Vec<String> = (0..32).map(|i| format!("dt{i}")).collect();
    let ta = names[0].clone();
    let tb = names
        .iter()
        .find(|n| shard_of(n, SHARDS) != shard_of(&ta, SHARDS))
        .expect("32 names must hit at least two of four shards")
        .clone();
    assert_ne!(shard_of(&ta, SHARDS), shard_of(&tb, SHARDS));
    let rename = |sql: &str| sql.replace("t1", &ta).replace("t2", &tb);

    // One statement list, generated once, sent verbatim to both servers.
    let mut rng = Prng::new(0xD1FF);
    let mut statements: Vec<String> = fuzz::seed_statements(&mut rng)
        .iter()
        .map(|s| rename(s))
        .collect();
    for _ in 0..QUERIES {
        statements.push(rename(&fuzz::gen_query(&mut rng)));
    }
    // Deliberate failures: error text must match too, including the
    // binder's unknown-table message and parse errors.
    statements.push("SELECT x FROM no_such_table".to_string());
    statements.push(format!("SELECT nope FROM {ta}"));
    statements.push("SELEC 1".to_string());
    statements.push(rename(
        "SELECT t1.a FROM t1 INNER JOIN t2 ON t1.a = t2.k WHERE t2.no_col = 1",
    ));

    let single = start(ServerConfig {
        shards: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let sharded = start(ServerConfig {
        shards: SHARDS,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c1 = ElephantClient::connect(single.local_addr()).unwrap();
    let mut cn = ElephantClient::connect(sharded.local_addr()).unwrap();

    for (i, sql) in statements.iter().enumerate() {
        let a = outcome(c1.query_raw(sql));
        let b = outcome(cn.query_raw(sql));
        assert_eq!(
            a, b,
            "divergence at statement {i}:\n  {sql}\n  1 shard:  {a:?}\n  {SHARDS} shards: {b:?}"
        );
    }

    // The corpus joins span two shards, so the sharded server must have
    // actually exercised the scatter-gather path (not fallen back).
    let stats = cn.stats().unwrap();
    let scatter: u64 = stats
        .lines()
        .find_map(|l| l.strip_prefix("shard_scatter_gather "))
        .expect("shard_scatter_gather missing from STATS")
        .parse()
        .unwrap();
    assert!(scatter > 0, "no scatter-gather reads happened:\n{stats}");

    c1.shutdown().unwrap();
    cn.shutdown().unwrap();
    drop((c1, cn));
    single.join();
    sharded.join();
}
