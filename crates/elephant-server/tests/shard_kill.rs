//! Sharded crash-recovery: four writers hammer four disjoint tables on a
//! four-shard `--fsync always` server, the server is `kill -9`ed mid-storm,
//! and after restart every acknowledged insert must be back — on every
//! shard. This is the sharded analogue of `recovery_smoke`: per-shard WALs
//! and group commit must not weaken the durability contract (an fsync that
//! covers a whole batch still happens *before* any ack in the batch).

use elephant_server::{shard_of, ElephantClient};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARDS: usize = 4;
const WRITERS: usize = 4;
/// Each writer must have at least this many acknowledged inserts before
/// the kill lands, so recovery has real per-shard WAL tails to replay.
const MIN_ACKS: u64 = 20;

fn serve(dir: &Path) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_elephant-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--no-data",
            "--shards",
            "4",
            "--fsync",
            "always",
            "--data-dir",
        ])
        .arg(dir)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn elephant-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read startup line");
    assert!(line.contains("durable storage"), "{line}");
    assert!(line.contains("4 shards"), "{line}");
    let addr = line
        .split_whitespace()
        .nth(3)
        .unwrap_or_else(|| panic!("no address in startup line: {line}"))
        .parse()
        .expect("parse bound address");
    (child, addr)
}

#[test]
fn concurrent_writers_survive_kill_nine_on_every_shard() {
    let dir = std::env::temp_dir().join(format!("elephant-shard-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (mut child, addr) = serve(&dir);

    // Disjoint tables, greedily spread over distinct shards so the storm
    // (and the recovery) exercises more than one WAL.
    let mut tables: Vec<String> = Vec::new();
    let mut shards_hit: Vec<usize> = Vec::new();
    for i in 0..64 {
        let name = format!("wt{i}");
        let s = shard_of(&name, SHARDS);
        if tables.len() < WRITERS && (!shards_hit.contains(&s) || tables.len() + 1 == WRITERS) {
            shards_hit.push(s);
            tables.push(name);
        }
    }
    assert_eq!(tables.len(), WRITERS);
    shards_hit.sort_unstable();
    shards_hit.dedup();
    assert!(
        shards_hit.len() >= 2,
        "tables landed on one shard: {tables:?}"
    );

    let mut admin = ElephantClient::connect(addr).unwrap();
    for t in &tables {
        admin
            .query_raw(&format!("CREATE TABLE {t} (x int)"))
            .unwrap();
    }

    // Writer i inserts 1, 2, 3, ... into its own table and bumps its ack
    // counter only after the server acknowledged — so the acked set is
    // always the contiguous prefix 1..=count.
    let acks: Vec<Arc<AtomicU64>> = (0..WRITERS).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let mut writers = Vec::new();
    for (i, table) in tables.iter().enumerate() {
        let table = table.clone();
        let acked = Arc::clone(&acks[i]);
        writers.push(std::thread::spawn(move || {
            let mut c = match ElephantClient::connect(addr) {
                Ok(c) => c,
                Err(_) => return,
            };
            for seq in 1u64..=100_000 {
                match c.query_raw(&format!("INSERT INTO {table} VALUES ({seq})")) {
                    Ok(_) => acked.store(seq, Ordering::SeqCst),
                    Err(_) => return, // the kill landed
                }
            }
        }));
    }

    // Let the storm build, then kill -9 while all writers are in flight.
    let deadline = Instant::now() + Duration::from_secs(30);
    while acks.iter().any(|a| a.load(Ordering::SeqCst) < MIN_ACKS) {
        assert!(
            Instant::now() < deadline,
            "writers too slow to reach MIN_ACKS"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().unwrap();
    child.wait().unwrap();
    for w in writers {
        w.join().unwrap();
    }
    let acked: Vec<u64> = acks.iter().map(|a| a.load(Ordering::SeqCst)).collect();

    // Restart on the same directory: every shard recovers its snapshot +
    // WAL; every acknowledged row must be present.
    let (mut child, addr) = serve(&dir);
    let mut c = ElephantClient::connect(addr).unwrap();
    for (i, table) in tables.iter().enumerate() {
        let want = acked[i];
        assert!(want >= MIN_ACKS);
        let got: u64 = c
            .query_raw(&format!(
                "SELECT count(*) AS n FROM {table} WHERE x <= {want}"
            ))
            .unwrap()
            .lines()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(
            got,
            want,
            "table {table} (shard {}) lost acknowledged writes: {got} of {want} recovered",
            shard_of(table, SHARDS)
        );
        // At most one in-flight (unacknowledged) insert can additionally
        // have reached the WAL per writer — never fewer rows than acks.
        let total: u64 = c
            .query_raw(&format!("SELECT count(*) AS n FROM {table}"))
            .unwrap()
            .lines()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            (want..=want + 1).contains(&total),
            "table {table}: {total} rows for {want} acks"
        );
    }
    let stats = c.stats().unwrap();
    assert!(stats.contains("\nshards 4"), "{stats}");

    child.kill().unwrap();
    child.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
