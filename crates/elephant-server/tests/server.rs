//! End-to-end tests: a real server on a loopback socket, real clients on
//! real threads, results compared byte-for-byte against the embedded engine.

use elephant_server::{start, ClientError, ElephantClient, ServerConfig};
use mlinspect::SqlMode;
use sqlengine::{Engine, EngineProfile};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

/// The pipeline rows/seed every test (and its embedded reference) uses.
const ROWS: usize = 120;
const SEED: u64 = 7;

fn pipeline_files() -> Vec<(String, String)> {
    vec![
        ("patients.csv".into(), datagen::patients_csv(ROWS, SEED)),
        ("histories.csv".into(), datagen::histories_csv(ROWS, SEED)),
    ]
}

const HEALTHCARE_PIPELINE: &str = r#"
patients = pd.read_csv("patients.csv", na_values='?')
histories = pd.read_csv("histories.csv", na_values='?')
data = patients.merge(histories, on=['ssn'])
complications = data.groupby('age_group').agg(mean_complications=('complications', 'mean'))
data = data.merge(complications, on=['age_group'])
data['label'] = data['complications'] > 1.2 * data['mean_complications']
data = data[['smoker', 'last_name', 'county', 'num_children', 'race', 'income', 'label']]
data = data[data['county'].isin(['county2', 'county3'])]
"#;

const SETUP: &[&str] = &[
    "CREATE TABLE nums (a int, b int)",
    "INSERT INTO nums VALUES (1, 10), (2, 20), (3, 30), (4, 40), (5, 50)",
];

const QUERIES: &[&str] = &[
    "SELECT a, b FROM nums ORDER BY a",
    "SELECT count(*) AS n, sum(b) AS s FROM nums",
    "SELECT a, b FROM nums WHERE b >= 30 ORDER BY a DESC",
    "SELECT avg(b) AS m FROM nums WHERE a <> 3",
];

/// What the embedded engine says each query should return, as CSV.
fn embedded_expectations() -> Vec<String> {
    let mut engine = Engine::new(EngineProfile::in_memory());
    for ddl in SETUP {
        engine.execute(ddl).unwrap();
    }
    QUERIES
        .iter()
        .map(|q| {
            let rel = engine.query(q).unwrap();
            etypes::csv::write_csv(&rel.columns, &rel.rows, ',')
        })
        .collect()
}

fn embedded_inspection() -> String {
    let mut engine = Engine::new(EngineProfile::in_memory());
    mlinspect::inspect_pipeline_in_sql(
        HEALTHCARE_PIPELINE,
        &pipeline_files(),
        &["age_group"],
        0.3,
        &mut engine,
        SqlMode::Cte,
        false,
    )
    .unwrap()
    .render()
}

/// Blank out `time_us=<digits>` values: inspection reports carry per-line
/// wall-clock timings, which never reproduce across runs. Row counts and
/// verdicts stay untouched, so comparisons remain strict about results.
fn strip_times(report: &str) -> String {
    let mut out = String::with_capacity(report.len());
    let mut rest = report;
    while let Some(i) = rest.find("time_us=") {
        let after = i + "time_us=".len();
        out.push_str(&rest[..after]);
        out.push('_');
        rest = rest[after..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

fn stat(stats: &str, key: &str) -> f64 {
    stats
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{key} ")))
        .unwrap_or_else(|| panic!("missing '{key}' in stats:\n{stats}"))
        .parse()
        .unwrap()
}

#[test]
fn concurrent_clients_match_embedded_engine() {
    let expected = embedded_expectations();
    let expected_report = embedded_inspection();
    let handle = start(ServerConfig {
        files: pipeline_files(),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.local_addr();

    let mut admin = ElephantClient::connect(addr).unwrap();
    for ddl in SETUP {
        admin.query_raw(ddl).unwrap();
    }

    // Four concurrent clients with distinct workloads.
    let mut workers = Vec::new();
    // 1) plain queries, every result byte-identical to the embedded engine
    {
        let expected = expected.clone();
        workers.push(thread::spawn(move || {
            let mut c = ElephantClient::connect(addr).unwrap();
            for round in 0..5 {
                for (q, want) in QUERIES.iter().zip(&expected) {
                    let got = c.query_raw(q).unwrap();
                    assert_eq!(&got, want, "round {round} query '{q}'");
                }
            }
        }));
    }
    // 2) prepared statements through the plan cache
    {
        let expected = expected.clone();
        workers.push(thread::spawn(move || {
            let mut c = ElephantClient::connect(addr).unwrap();
            c.prepare("q0", QUERIES[0]).unwrap();
            c.prepare("q1", QUERIES[1]).unwrap();
            for _ in 0..10 {
                assert_eq!(c.execute("q0").unwrap(), expected[0]);
                assert_eq!(c.execute("q1").unwrap(), expected[1]);
            }
        }));
    }
    // 3) EXPLAIN + queries interleaved
    {
        let expected = expected.clone();
        workers.push(thread::spawn(move || {
            let mut c = ElephantClient::connect(addr).unwrap();
            for _ in 0..5 {
                let plan = c.explain(QUERIES[0]).unwrap();
                assert!(!plan.trim().is_empty());
                assert_eq!(c.query_raw(QUERIES[2]).unwrap(), expected[2]);
            }
        }));
    }
    // 4) full pipeline inspection via the SQL backend
    {
        let expected_report = expected_report.clone();
        workers.push(thread::spawn(move || {
            let mut c = ElephantClient::connect(addr).unwrap();
            let report = c.inspect(&["age_group"], 0.3, HEALTHCARE_PIPELINE).unwrap();
            assert_eq!(strip_times(&report), strip_times(&expected_report));
            assert!(report.contains("inspection verdict="), "{report}");
            assert!(report.contains("line no="), "{report}");
        }));
    }
    for w in workers {
        w.join().unwrap();
    }

    let stats = admin.stats().unwrap();
    assert!(stat(&stats, "queries") >= (SETUP.len() + 25) as f64);
    assert!(stat(&stats, "executes") >= 20.0);
    assert!(stat(&stats, "inspects") >= 1.0);
    assert!(stat(&stats, "latency_count") > 0.0);
    assert!(stat(&stats, "sessions_opened") >= 5.0);

    assert_eq!(admin.shutdown().unwrap(), "draining");
    drop(admin);
    handle.join();
}

#[test]
fn trace_and_explain_analyze_over_the_wire() {
    let handle = start(ServerConfig::default()).unwrap();
    let mut c = ElephantClient::connect(handle.local_addr()).unwrap();

    // An empty ring answers gracefully... well, almost empty: the TRACE
    // itself is recorded *after* it renders, so the first call sees nothing.
    assert_eq!(c.trace(None).unwrap(), "no spans recorded");

    c.query_raw("CREATE TABLE t (a int, b int)").unwrap();
    c.query_raw("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
        .unwrap();

    // EXPLAIN ANALYZE executes and annotates every operator with its real
    // cardinality — 2 rows survive the filter, 1 comes out of the agg.
    let analyzed = c
        .explain_analyze("SELECT count(*) AS n FROM t WHERE b >= 20")
        .unwrap();
    assert!(analyzed.contains("Aggregate"), "{analyzed}");
    assert!(analyzed.contains("(rows=1 time="), "{analyzed}");
    assert!(analyzed.contains("Filter"), "{analyzed}");
    assert!(analyzed.contains("(rows=2 time="), "{analyzed}");
    assert!(analyzed.contains("Execution: rows=1 time="), "{analyzed}");
    // Plain EXPLAIN still renders the unannotated plan.
    let plain = c
        .explain("SELECT count(*) AS n FROM t WHERE b >= 20")
        .unwrap();
    assert!(!plain.contains("rows="), "{plain}");

    // A failing statement is traced too, as ok=0.
    let _ = c.query_raw("SELECT nope FROM t");

    // TRACE returns recent spans newest-first with the wire span format.
    let spans = c.trace(Some(10)).unwrap();
    let lines: Vec<&str> = spans.lines().collect();
    assert!(lines.len() >= 5, "{spans}");
    assert!(lines.iter().all(|l| l.starts_with("span seq=")), "{spans}");
    assert!(
        lines
            .iter()
            .any(|l| l.contains("name=EXPLAIN") && l.contains("detail=ANALYZE")),
        "{spans}"
    );
    assert!(
        lines
            .iter()
            .any(|l| l.contains("ok=0") && l.contains("nope")),
        "{spans}"
    );
    // Newest first: the failing query comes before the CREATE TABLE.
    let seqs: Vec<u64> = lines
        .iter()
        .map(|l| {
            l.strip_prefix("span seq=")
                .and_then(|r| r.split(' ').next())
                .unwrap()
                .parse()
                .unwrap()
        })
        .collect();
    assert!(seqs.windows(2).all(|w| w[0] > w[1]), "{spans}");
    // TRACE 1 returns exactly one span.
    assert_eq!(c.trace(Some(1)).unwrap().lines().count(), 1);

    // STATS carries the new counters: per-phase engine histograms,
    // per-verb latency, the error split, and the span-ring gauges.
    let stats = c.stats().unwrap();
    assert!(stat(&stats, "phase_execute_count") >= 1.0, "{stats}");
    assert!(stat(&stats, "phase_parse_count") >= 3.0, "{stats}");
    assert!(stat(&stats, "latency_query_count") >= 3.0, "{stats}");
    assert!(stat(&stats, "latency_explain_count") >= 2.0, "{stats}");
    assert!(stat(&stats, "traces") >= 2.0, "{stats}");
    assert!(stat(&stats, "exec_errors") >= 1.0, "{stats}");
    assert_eq!(stat(&stats, "protocol_errors"), 0.0, "{stats}");
    assert!(stat(&stats, "trace_spans_recorded") >= 5.0, "{stats}");
    assert!(stat(&stats, "trace_spans_retained") >= 5.0, "{stats}");

    // `QUERY EXPLAIN ANALYZE ...` also works as plain SQL, returning the
    // annotated plan as a one-column relation.
    let via_query = c
        .query_raw("EXPLAIN ANALYZE SELECT count(*) AS n FROM t WHERE b >= 20")
        .unwrap();
    assert!(via_query.starts_with("QUERY PLAN\n"), "{via_query}");
    assert!(via_query.contains("(rows=2 time="), "{via_query}");

    c.shutdown().unwrap();
    drop(c);
    handle.join();
}

#[test]
fn repeated_execute_hits_plan_cache() {
    let handle = start(ServerConfig::default()).unwrap();
    let mut c = ElephantClient::connect(handle.local_addr()).unwrap();
    c.query_raw("CREATE TABLE t (a int)").unwrap();
    c.query_raw("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    c.prepare("q", "SELECT sum(a) AS s FROM t").unwrap();
    for _ in 0..6 {
        assert_eq!(c.execute("q").unwrap(), "s\n6\n");
    }
    let stats = c.stats().unwrap();
    assert!(
        stat(&stats, "plan_cache_hits") >= 5.0,
        "expected cache hits:\n{stats}"
    );
    assert!(stat(&stats, "plan_cache_hit_rate") > 0.0);
    assert!(stat(&stats, "prepared_statements") >= 1.0);
    c.shutdown().unwrap();
    drop(c);
    handle.join();
}

#[test]
fn shutdown_drains_in_flight_work() {
    let handle = start(ServerConfig::default()).unwrap();
    let addr = handle.local_addr();
    let mut a = ElephantClient::connect(addr).unwrap();
    let mut b = ElephantClient::connect(addr).unwrap();
    a.query_raw("CREATE TABLE t (a int)").unwrap();
    a.query_raw("INSERT INTO t VALUES (1), (2)").unwrap();

    // Work enqueued around the SHUTDOWN still gets answered: client `a`
    // races queries against client `b`'s shutdown.
    let racer = thread::spawn(move || {
        let mut last = String::new();
        for _ in 0..20 {
            match a.query_raw("SELECT count(*) AS n FROM t") {
                Ok(body) => last = body,
                // Once draining, new work is refused with a structured code.
                Err(ClientError::Server(e)) => {
                    assert_eq!(e.code, "ERR_DRAINING");
                    break;
                }
                Err(other) => panic!("transport error: {other}"),
            }
        }
        last
    });
    thread::sleep(Duration::from_millis(20));
    assert_eq!(b.shutdown().unwrap(), "draining");
    let last = racer.join().unwrap();
    // Every answered query was answered correctly — nothing half-dropped.
    assert_eq!(last, "n\n2\n");

    // STATS is still answered while draining.
    let stats = b.stats().unwrap();
    assert!(stat(&stats, "queries") >= 2.0);
    drop(b);
    handle.join();
}

#[test]
fn protocol_errors_keep_the_session_and_server_alive() {
    let handle = start(ServerConfig::default()).unwrap();
    let addr = handle.local_addr();
    let mut c = ElephantClient::connect(addr).unwrap();

    // Unknown verb → structured error, connection still usable.
    match c.send("FROBNICATE now") {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "ERR_UNKNOWN_VERB"),
        other => panic!("expected server error, got {other:?}"),
    }
    // Malformed command → structured error.
    match c.send("PREPARE onlyaname") {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "ERR_PARSE"),
        other => panic!("expected server error, got {other:?}"),
    }
    // SQL error → structured error.
    match c.query_raw("SELECT FROM WHERE") {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "ERR_EXEC"),
        other => panic!("expected server error, got {other:?}"),
    }
    // Same connection still serves work.
    assert_eq!(c.query_raw("SELECT 1 AS one").unwrap(), "one\n1\n");

    // Oversized frame → refused, drained, connection survives.
    let mut raw = TcpStream::connect(addr).unwrap();
    let n = elephant_server::MAX_FRAME + 1;
    writeln!(raw, "!{n}").unwrap();
    let junk = vec![b'x'; n];
    raw.write_all(&junk).unwrap();
    raw.write_all(b"\n").unwrap();
    raw.write_all(b"STATS\n").unwrap();
    raw.flush().unwrap();
    let mut response = String::new();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // Read both responses: the oversized error and the STATS answer.
    let mut buf = [0u8; 4096];
    while !response.contains("commands_served") {
        let k = raw.read(&mut buf).unwrap();
        assert!(k > 0, "server hung up early: {response}");
        response.push_str(&String::from_utf8_lossy(&buf[..k]));
    }
    assert!(response.starts_with('-'), "{response}");
    assert!(response.contains("ERR_OVERSIZED"), "{response}");

    // Mid-frame disconnect: declare 10 bytes, send 3, hang up.
    let mut dead = TcpStream::connect(addr).unwrap();
    dead.write_all(b"!10\nabc").unwrap();
    drop(dead);
    // Disconnect right after a full command, without reading the reply.
    let mut ghost = TcpStream::connect(addr).unwrap();
    ghost.write_all(b"QUERY SELECT 1 AS one\n").unwrap();
    ghost.flush().unwrap();
    drop(ghost);
    thread::sleep(Duration::from_millis(50));

    // The server is still healthy after all of that.
    assert_eq!(c.query_raw("SELECT 2 AS two").unwrap(), "two\n2\n");
    c.shutdown().unwrap();
    drop(c);
    drop(raw);
    handle.join();
}
