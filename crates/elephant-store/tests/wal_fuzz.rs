//! Seeded WAL corruption fuzz: truncate and bit-flip committed WAL files
//! at random offsets, then drive both consumers — crash recovery
//! (`Store::open`) and the replication tailer (`WalTailer::poll` +
//! `decode_frame`) — and hold them to the corruption contract:
//!
//! 1. neither path ever panics, whatever the bytes,
//! 2. neither path ever surfaces a corrupt frame: everything recovered or
//!    tailed is a *prefix* of what was logged (stop at the torn tail, no
//!    holes, no mutated rows),
//! 3. flipping any single bit of a frame makes `decode_frame` reject it
//!    (the CRC is re-verified end to end, not trusted from the wire).
//!
//! The schedule is seeded through `ELEPHANT_FAULT_SEED` (CI runs a fixed
//! seed matrix), so a failure reproduces exactly.

use elephant_store::{
    decode_frame, encode_frame, FsyncPolicy, Store, StoreConfig, TailPoll, WalRecord, WalTailer,
    WAL_FILE,
};
use etypes::{DataType, Prng, Value};
use std::path::PathBuf;

fn seed() -> u64 {
    std::env::var("ELEPHANT_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xE1EFA)
}

fn tmp(name: &str, iter: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "elstore-fuzz-{}-{name}-{}-{iter}",
        std::process::id(),
        seed()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn create_t() -> WalRecord {
    WalRecord::CreateTable {
        name: "t".into(),
        columns: vec!["id".into(), "v".into()],
        types: vec![DataType::Int, DataType::Text],
    }
}

fn insert_row(id: i64) -> WalRecord {
    WalRecord::Insert {
        table: "t".into(),
        rows: vec![vec![Value::Int(id), Value::text(format!("row-{id}"))]],
    }
}

/// Log `create_t` plus `n` inserts and return the WAL path.
fn build_wal(dir: &PathBuf, n: usize) -> PathBuf {
    let (mut store, tables, _) =
        Store::open(StoreConfig::new(dir).with_fsync(FsyncPolicy::Always)).unwrap();
    assert!(tables.is_empty());
    store.log(&create_t()).unwrap();
    for id in 0..n as i64 {
        store.log(&insert_row(id)).unwrap();
    }
    dir.join(WAL_FILE)
}

/// Assert the recovered/tailed rows of `t` are exactly the first `k`
/// logged rows for some `k` — a prefix, with no holes and no mutations.
fn assert_prefix(rows: &[Vec<Value>], context: &str) {
    for (i, row) in rows.iter().enumerate() {
        let id = i as i64;
        assert_eq!(
            row,
            &vec![Value::Int(id), Value::text(format!("row-{id}"))],
            "{context}: row {i} is not the logged row {i} — a corrupt or \
             out-of-order frame was applied"
        );
    }
}

#[test]
fn recovery_of_mutilated_wal_never_panics_and_never_applies_garbage() {
    let mut rng = Prng::from_stream(seed(), 11);
    for iter in 0..60 {
        let dir = tmp("recover", iter);
        let n = 2 + rng.below(9);
        let wal = build_wal(&dir, n);
        let mut bytes = std::fs::read(&wal).unwrap();

        // Half the runs truncate (a torn tail), half flip 1-4 random bits
        // anywhere in the file (header, lengths, CRCs, payloads).
        if rng.below(2) == 0 {
            bytes.truncate(rng.below(bytes.len() + 1));
        } else {
            for _ in 0..1 + rng.below(4) {
                let i = rng.below(bytes.len());
                bytes[i] ^= 1 << rng.below(8);
            }
        }
        std::fs::write(&wal, &bytes).unwrap();

        // Recovery either reports a clean prefix or refuses the file
        // outright (e.g. a flipped magic byte); it never panics and never
        // fabricates rows.
        // An Err is a clean refusal (e.g. a flipped magic byte) — also
        // within contract.
        if let Ok((_store, tables, report)) =
            Store::open(StoreConfig::new(&dir).with_fsync(FsyncPolicy::Always))
        {
            assert!(tables.len() <= 1, "iter {iter}: phantom table recovered");
            if let Some(t) = tables.first() {
                assert_eq!(t.name, "t");
                assert!(t.rows.len() <= n, "iter {iter}: more rows than were logged");
                assert_prefix(&t.rows, &format!("iter {iter} recovery"));
            }
            assert_eq!(
                report.wal_records_applied as usize,
                tables.first().map_or(0, |t| t.rows.len() + 1),
                "iter {iter}: applied-record count disagrees with state"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn tailer_over_mutilated_wal_ships_only_a_verified_prefix() {
    let mut rng = Prng::from_stream(seed(), 12);
    for iter in 0..60 {
        let dir = tmp("tail", iter);
        let n = 2 + rng.below(9);
        let wal = build_wal(&dir, n);
        let mut bytes = std::fs::read(&wal).unwrap();
        if rng.below(2) == 0 {
            bytes.truncate(rng.below(bytes.len() + 1));
        } else {
            for _ in 0..1 + rng.below(4) {
                let i = rng.below(bytes.len());
                bytes[i] ^= 1 << rng.below(8);
            }
        }
        std::fs::write(&wal, &bytes).unwrap();

        let mut tailer = WalTailer::open(&wal);
        match tailer.poll(u64::MAX) {
            Ok(TailPoll::Frames(frames)) => {
                // Whatever survives must decode CRC-clean into a gapless
                // LSN prefix — exactly what a follower would apply.
                let mut rows = Vec::new();
                for (want_lsn, frame) in (1u64..).zip(&frames) {
                    assert_eq!(frame.lsn, want_lsn, "iter {iter}: LSN hole shipped");
                    let (lsn, rec) = decode_frame(&frame.bytes)
                        .unwrap_or_else(|e| panic!("iter {iter}: shipped corrupt frame: {e}"));
                    assert_eq!(lsn, want_lsn);
                    match (want_lsn, rec) {
                        (1, rec) => assert_eq!(rec, create_t(), "iter {iter}"),
                        (_, WalRecord::Insert { table, rows: r }) => {
                            assert_eq!(table, "t");
                            rows.extend(r);
                        }
                        (_, rec) => panic!("iter {iter}: fabricated record {rec:?}"),
                    }
                }
                assert_prefix(&rows, &format!("iter {iter} tail"));
            }
            Ok(TailPoll::Truncated) => {} // offset reset; fine
            Err(_) => {}                  // bad magic etc.; refused cleanly
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Log `create_t`, `base` plain inserts, then three transaction groups:
/// a committed pair (ids `base`, `base+1`), an aborted singleton (id 900),
/// and an undecided singleton (id `base+2`) left in-doubt. Returns the WAL
/// path.
fn build_txn_wal(dir: &PathBuf, base: usize) -> PathBuf {
    let (mut store, tables, _) =
        Store::open(StoreConfig::new(dir).with_fsync(FsyncPolicy::Always)).unwrap();
    assert!(tables.is_empty());
    store.log(&create_t()).unwrap();
    for id in 0..base as i64 {
        store.log(&insert_row(id)).unwrap();
    }
    let b = base as i64;
    store
        .log_txn_prepare(10, vec![insert_row(b), insert_row(b + 1)])
        .unwrap();
    store.log_txn_commit(10).unwrap();
    store.log_txn_prepare(11, vec![insert_row(900)]).unwrap();
    store.log_txn_abort(11).unwrap();
    store.log_txn_prepare(12, vec![insert_row(b + 2)]).unwrap();
    dir.join(WAL_FILE)
}

/// Seeded corruption over the 2PC record kinds (`PREPARE`/`COMMIT`/`ABORT`
/// frames): recovery must still produce a clean logical prefix — committed
/// groups apply whole or not at all, the aborted group's row never
/// surfaces, and the in-doubt group follows the injected decision map.
#[test]
fn mutilated_txn_groups_recover_whole_or_not_at_all() {
    let mut rng = Prng::from_stream(seed(), 14);
    for iter in 0..60 {
        let dir = tmp("txn", iter);
        let base = 2 + rng.below(6);
        let wal = build_txn_wal(&dir, base);
        let mut bytes = std::fs::read(&wal).unwrap();
        if rng.below(2) == 0 {
            bytes.truncate(rng.below(bytes.len() + 1));
        } else {
            for _ in 0..1 + rng.below(4) {
                let i = rng.below(bytes.len());
                bytes[i] ^= 1 << rng.below(8);
            }
        }
        std::fs::write(&wal, &bytes).unwrap();

        // Half the runs hand recovery a commit decision for the in-doubt
        // group, half leave it to presumed abort.
        let commit_indoubt = rng.below(2) == 0;
        let mut decisions = std::collections::HashMap::new();
        if commit_indoubt {
            decisions.insert(12u64, true);
        }
        let config = StoreConfig::new(&dir)
            .with_fsync(FsyncPolicy::Always)
            .with_txn_decisions(decisions);
        let Ok((_store, tables, report)) = Store::open(config) else {
            let _ = std::fs::remove_dir_all(&dir);
            continue; // clean refusal (e.g. flipped magic) is within contract
        };
        assert!(tables.len() <= 1, "iter {iter}: phantom table recovered");
        let rows = tables.first().map(|t| t.rows.as_slice()).unwrap_or(&[]);
        let ids: Vec<i64> = rows
            .iter()
            .map(|r| match &r[0] {
                Value::Int(id) => *id,
                other => panic!("iter {iter}: corrupt cell {other:?} applied"),
            })
            .collect();
        // The logical sequence a clean prefix can expose: the base inserts,
        // then the committed pair as one unit, then (decision permitting)
        // the in-doubt singleton. Id 900 (the aborted group) must never
        // appear, and the pair must never split.
        let b = base as i64;
        let mut valid: Vec<Vec<i64>> = (0..=base).map(|k| (0..k as i64).collect()).collect();
        let mut with_pair: Vec<i64> = (0..b).collect();
        with_pair.extend([b, b + 1]);
        valid.push(with_pair.clone());
        if commit_indoubt {
            let mut with_indoubt = with_pair;
            with_indoubt.push(b + 2);
            valid.push(with_indoubt);
        }
        assert!(
            valid.contains(&ids),
            "iter {iter}: recovered ids {ids:?} are not a group-atomic prefix \
             (base={base}, commit_indoubt={commit_indoubt})"
        );
        assert_prefix(
            &rows[..ids.len().min(base)],
            &format!("iter {iter} txn base"),
        );
        // The report's group accounting matches what surfaced.
        if ids.len() > base {
            assert!(report.txn_committed >= 1, "iter {iter}: {report:?}");
        }
        if ids.len() == base + 3 {
            assert_eq!(report.txn_indoubt_committed, 1, "iter {iter}: {report:?}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn any_single_bit_flip_is_rejected_by_decode_frame() {
    let mut rng = Prng::from_stream(seed(), 13);
    let frame = encode_frame(&insert_row(7), 42);
    let (lsn, rec) = decode_frame(&frame).unwrap();
    assert_eq!((lsn, rec), (42, insert_row(7)));
    // Exhaustive over byte positions, seeded over bit choice.
    for i in 0..frame.len() {
        let mut bad = frame.clone();
        bad[i] ^= 1 << rng.below(8);
        assert!(
            decode_frame(&bad).is_err(),
            "flip at byte {i} went undetected"
        );
    }
    // Truncations of a lone frame are rejected too (short header or
    // declared-length mismatch).
    for len in 0..frame.len() {
        assert!(
            decode_frame(&frame[..len]).is_err(),
            "truncation to {len} bytes went undetected"
        );
    }
}
