//! Kill-point recovery tests: simulate crashes at nasty moments by
//! mutilating the on-disk state directly, then assert `Store::open`
//! recovers to the last consistent state and reports what it dropped.

use elephant_store::{
    FsyncPolicy, Store, StoreConfig, TableImage, WalRecord, SNAPSHOT_FILE, WAL_FILE,
};
use etypes::{DataType, Value};
use std::fs::{self, OpenOptions};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("elstore-recov-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn cfg(dir: &PathBuf) -> StoreConfig {
    StoreConfig::new(dir).with_fsync(FsyncPolicy::Always)
}

fn create_t() -> WalRecord {
    WalRecord::CreateTable {
        name: "t".into(),
        columns: vec!["id".into(), "v".into()],
        types: vec![DataType::Int, DataType::Text],
    }
}

fn insert_row(id: i64) -> WalRecord {
    WalRecord::Insert {
        table: "t".into(),
        rows: vec![vec![Value::Int(id), Value::text(format!("row-{id}"))]],
    }
}

fn image(rows: Vec<Vec<Value>>) -> TableImage {
    TableImage {
        name: "t".into(),
        columns: vec!["id".into(), "v".into()],
        types: vec![DataType::Int, DataType::Text],
        serial_next: vec![],
        rows,
    }
}

/// Populate a store with a checkpointed row plus two WAL-only rows, then
/// drop it (simulating kill -9: the WAL under fsync=always is durable at
/// every acknowledged append, so dropping without further syncs is
/// equivalent for file-level state).
fn seed(dir: &PathBuf) {
    let (mut store, tables, _) = Store::open(cfg(dir)).unwrap();
    assert!(tables.is_empty());
    store.log(&create_t()).unwrap();
    store.log(&insert_row(1)).unwrap();
    store
        .checkpoint(&[&image(vec![vec![Value::Int(1), Value::text("row-1")]])])
        .unwrap();
    store.log(&insert_row(2)).unwrap();
    store.log(&insert_row(3)).unwrap();
}

#[test]
fn clean_kill_recovers_everything() {
    let dir = tmp("clean");
    seed(&dir);
    let (_s, tables, report) = Store::open(cfg(&dir)).unwrap();
    assert!(report.snapshot_loaded);
    assert_eq!(report.wal_records_applied, 2);
    assert_eq!(report.wal_torn_bytes, 0);
    assert_eq!(tables.len(), 1);
    assert_eq!(tables[0].rows.len(), 3);
    // ctid order must be insertion order.
    let ids: Vec<i64> = tables[0]
        .rows
        .iter()
        .map(|r| match r[0] {
            Value::Int(i) => i,
            _ => panic!("int"),
        })
        .collect();
    assert_eq!(ids, vec![1, 2, 3]);
}

#[test]
fn torn_wal_tail_loses_only_the_torn_record() {
    let dir = tmp("torn");
    seed(&dir);
    // Tear the last append mid-record: drop the final 5 bytes.
    let wal = dir.join(WAL_FILE);
    let len = fs::metadata(&wal).unwrap().len();
    let f = OpenOptions::new().write(true).open(&wal).unwrap();
    f.set_len(len - 5).unwrap();
    drop(f);

    let (_s, tables, report) = Store::open(cfg(&dir)).unwrap();
    assert!(report.snapshot_loaded);
    assert_eq!(report.wal_records_applied, 1, "row 3 torn away");
    assert!(report.wal_torn_bytes > 0);
    assert!(!report.wal_crc_mismatch);
    assert_eq!(tables[0].rows.len(), 2, "rows 1 and 2 survive");
}

#[test]
fn corrupt_crc_cuts_replay_at_the_bad_record() {
    let dir = tmp("crc");
    seed(&dir);
    // Flip a byte inside the *first* post-checkpoint record's payload.
    let wal = dir.join(WAL_FILE);
    let mut data = fs::read(&wal).unwrap();
    // magic(8) + header(8) puts us inside record 1's payload.
    data[8 + 8 + 2] ^= 0x55;
    fs::write(&wal, &data).unwrap();

    let (_s, tables, report) = Store::open(cfg(&dir)).unwrap();
    assert!(report.snapshot_loaded);
    assert_eq!(
        report.wal_records_applied, 0,
        "both WAL rows after the bad record are dropped"
    );
    assert!(report.wal_crc_mismatch);
    assert!(report.wal_torn_bytes > 0);
    assert_eq!(
        tables[0].rows.len(),
        1,
        "snapshot state is the consistent floor"
    );
}

#[test]
fn deleted_snapshot_still_recovers_wal_tail() {
    let dir = tmp("nosnap");
    seed(&dir);
    fs::remove_file(dir.join(SNAPSHOT_FILE)).unwrap();

    let (_s, tables, report) = Store::open(cfg(&dir)).unwrap();
    assert!(!report.snapshot_loaded);
    // Only the post-checkpoint records survive: rows 2 and 3 exist but the
    // CREATE + row 1 were truncated away at checkpoint, so the inserts have
    // no table to land in and are reported, not silently dropped.
    assert!(tables.is_empty());
    assert_eq!(report.notes.len(), 2);
    assert!(report.notes[0].contains("not applied"));
}

#[test]
fn corrupt_snapshot_is_set_aside_not_fatal() {
    let dir = tmp("badsnap");
    seed(&dir);
    let snap = dir.join(SNAPSHOT_FILE);
    let mut data = fs::read(&snap).unwrap();
    let mid = data.len() / 2;
    data[mid] ^= 0xFF;
    fs::write(&snap, &data).unwrap();

    let (_s, _tables, report) = Store::open(cfg(&dir)).unwrap();
    assert!(!report.snapshot_loaded);
    assert!(report.notes.iter().any(|n| n.contains("snapshot invalid")));
    // The bad file is preserved for forensics under a .corrupt name.
    assert!(dir.join("snapshot.corrupt").exists());
    assert!(!snap.exists());

    // The store is writable again after the dropped snapshot.
    let (mut store, _, _) = Store::open(cfg(&dir)).unwrap();
    store.log(&create_t()).unwrap();
    store.log(&insert_row(9)).unwrap();
    drop(store);
    let (_s, tables, _) = Store::open(cfg(&dir)).unwrap();
    assert_eq!(tables.len(), 1);
    assert_eq!(tables[0].rows.len(), 1);
}

#[test]
fn acknowledged_writes_survive_under_fsync_always() {
    // The acceptance-criteria shape: checkpoint, more inserts, "crash",
    // reopen — every acknowledged write is present.
    let dir = tmp("ack");
    {
        let (mut store, _, _) = Store::open(cfg(&dir)).unwrap();
        store.log(&create_t()).unwrap();
        for i in 1..=50 {
            store.log(&insert_row(i)).unwrap();
        }
        let rows: Vec<Vec<Value>> = (1..=50)
            .map(|i| vec![Value::Int(i), Value::text(format!("row-{i}"))])
            .collect();
        store.checkpoint(&[&image(rows)]).unwrap();
        for i in 51..=75 {
            store.log(&insert_row(i)).unwrap();
        }
        // No clean drop-side sync needed: fsync=always already persisted
        // every append. Leak the store so Drop's best-effort sync cannot
        // paper over a missing per-append fsync.
        std::mem::forget(store);
    }
    let (_s, tables, report) = Store::open(cfg(&dir)).unwrap();
    assert_eq!(tables[0].rows.len(), 75);
    assert_eq!(report.snapshot_rows, 50);
    assert_eq!(report.wal_records_applied, 25);
}
