//! Failpoint-driven fault injection tests for the storage layer.
//!
//! These live in their own integration binary (not the crate's unit tests)
//! because the fault registry is process-global: arming `wal.append` here
//! must not be visible to the regular WAL round-trip tests running in the
//! lib test binary. Within this binary, every test serializes on
//! `TEST_LOCK`.

use elephant_store::snapshot::{load_snapshot, write_snapshot};
use elephant_store::wal::{read_wal, WalRecord, WalWriter};
use elephant_store::{FsyncPolicy, Store, StoreConfig, StoreError, TableImage};
use etypes::fault::{self, FaultPolicy};
use etypes::{DataType, Value};
use std::path::PathBuf;
use std::sync::Mutex;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::clear_all();
    guard
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("elfault-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn create_t() -> WalRecord {
    WalRecord::CreateTable {
        name: "t".into(),
        columns: vec!["a".into()],
        types: vec![DataType::Int],
    }
}

fn insert(v: i64) -> WalRecord {
    WalRecord::Insert {
        table: "t".into(),
        rows: vec![vec![Value::Int(v)]],
    }
}

fn image(rows: Vec<Vec<Value>>) -> TableImage {
    TableImage {
        name: "t".into(),
        columns: vec!["a".into()],
        types: vec![DataType::Int],
        serial_next: vec![],
        rows,
    }
}

#[test]
fn wal_append_failpoint_fails_cleanly() {
    let _g = locked();
    let path = tmp_dir("append").join("wal.log");
    let mut w = WalWriter::open(&path, FsyncPolicy::Off, 0, 1).unwrap();
    w.append(&create_t()).unwrap();
    let stats_before = w.stats();

    fault::set("wal.append", FaultPolicy::Error);
    let err = w.append(&insert(1)).unwrap_err();
    assert!(matches!(err, StoreError::Injected(ref f) if f.site == "wal.append"));
    assert_eq!(
        w.stats(),
        stats_before,
        "clean failure: no bytes, no counters"
    );
    fault::clear("wal.append");

    let lsn = w.append(&insert(2)).unwrap();
    assert_eq!(lsn, 2, "LSN not consumed by the failed append");
    drop(w);
    let out = read_wal(&path).unwrap();
    assert_eq!(out.records.len(), 2);
    assert_eq!(out.torn_bytes, 0);
    fault::clear_all();
}

#[test]
fn short_write_leaves_torn_tail_and_poisons_until_truncate() {
    let _g = locked();
    let path = tmp_dir("torn").join("wal.log");
    let mut w = WalWriter::open(&path, FsyncPolicy::Off, 0, 1).unwrap();
    w.append(&create_t()).unwrap();

    fault::set("wal.short_write", FaultPolicy::ErrorOnce);
    let err = w.append(&insert(1)).unwrap_err();
    assert!(matches!(err, StoreError::Injected(ref f) if f.site == "wal.short_write"));
    assert_eq!(fault::hits("wal.short_write"), 1);

    // The torn prefix is really on disk and replay drops it at the boundary.
    let out = read_wal(&path).unwrap();
    assert_eq!(out.records.len(), 1, "torn frame not replayed");
    assert!(out.torn_bytes > 0, "torn bytes visible to recovery");

    // Further appends are refused: they would land after garbage and be
    // silently dropped by replay despite being acknowledged.
    let err = w.append(&insert(2)).unwrap_err();
    assert!(
        err.to_string().contains("poisoned"),
        "poisoned writer refuses appends: {err}"
    );

    // Truncate restores a clean boundary and un-poisons.
    w.truncate().unwrap();
    let lsn = w.append(&insert(3)).unwrap();
    assert_eq!(lsn, 2, "torn append never consumed its LSN");
    drop(w);
    let out = read_wal(&path).unwrap();
    assert_eq!(out.records.len(), 1);
    assert_eq!(out.records[0].0, 2);
    assert_eq!(out.torn_bytes, 0);
    fault::clear_all();
}

#[test]
fn fsync_failure_rolls_the_frame_back_out() {
    let _g = locked();
    let path = tmp_dir("fsync").join("wal.log");
    let mut w = WalWriter::open(&path, FsyncPolicy::Always, 0, 1).unwrap();
    w.append(&create_t()).unwrap();
    let stats_before = w.stats();

    fault::set("wal.fsync", FaultPolicy::ErrorOnce);
    let err = w.append(&insert(1)).unwrap_err();
    assert!(matches!(err, StoreError::Injected(ref f) if f.site == "wal.fsync"));

    // The maybe-durable frame was cut back out: an unacknowledged record
    // must not resurrect on replay.
    let stats = w.stats();
    assert_eq!(stats.records_appended, stats_before.records_appended);
    assert_eq!(stats.bytes, stats_before.bytes);
    let out = read_wal(&path).unwrap();
    assert_eq!(out.records.len(), 1);
    assert_eq!(out.torn_bytes, 0, "rollback leaves a clean boundary");

    // The writer is not poisoned — the next append reuses the LSN.
    let lsn = w.append(&insert(1)).unwrap();
    assert_eq!(lsn, 2);
    fault::clear_all();
}

#[test]
fn snapshot_write_and_rename_failpoints_preserve_old_snapshot() {
    let _g = locked();
    let dir = tmp_dir("snapfail");
    let path = dir.join("snapshot.es");
    let v1 = image(vec![vec![Value::Int(1)]]);
    write_snapshot(&path, 1, &[&v1]).unwrap();

    let v2 = image(vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    for site in ["snapshot.write", "snapshot.rename"] {
        fault::set(site, FaultPolicy::Error);
        let err = write_snapshot(&path, 2, &[&v2]).unwrap_err();
        assert!(matches!(err, StoreError::Injected(ref f) if f.site == site));
        fault::clear(site);
        assert!(
            !path.with_extension("tmp").exists(),
            "{site} left a tmp file"
        );
        let (lsn, tables) = load_snapshot(&path).unwrap().unwrap();
        assert_eq!(lsn, 1, "{site} clobbered the old snapshot");
        assert_eq!(tables[0].rows.len(), 1);
    }

    // dir_fsync failure happens after the rename: the new snapshot is in
    // place, but its durability is unknown so the caller still sees an error.
    fault::set("snapshot.dir_fsync", FaultPolicy::ErrorOnce);
    assert!(write_snapshot(&path, 2, &[&v2]).is_err());
    let (lsn, _) = load_snapshot(&path).unwrap().unwrap();
    assert_eq!(lsn, 2, "rename already happened before dir_fsync");
    fault::clear_all();
}

#[test]
fn failed_checkpoint_keeps_wal_so_recovery_still_works() {
    let _g = locked();
    let cfg = StoreConfig::new(tmp_dir("ckptfail")).with_fsync(FsyncPolicy::Off);
    {
        let (mut store, _, _) = Store::open(cfg.clone()).unwrap();
        store.log(&create_t()).unwrap();
        store.log(&insert(7)).unwrap();
        fault::set("snapshot.rename", FaultPolicy::ErrorOnce);
        let img = image(vec![vec![Value::Int(7)]]);
        assert!(store.checkpoint(&[&img]).is_err());
        fault::clear_all();
        // The WAL must not have been truncated by the failed checkpoint.
        assert!(
            store.stats().wal.bytes > 8,
            "WAL survived failed checkpoint"
        );
        assert_eq!(store.stats().checkpoints, 0);
    }
    let (_s, tables, report) = Store::open(cfg).unwrap();
    assert!(!report.snapshot_loaded);
    assert_eq!(report.wal_records_applied, 2);
    assert_eq!(tables[0].rows, vec![vec![Value::Int(7)]]);
}

#[test]
fn snapshot_load_failpoint_drives_corrupt_set_aside() {
    let _g = locked();
    let cfg = StoreConfig::new(tmp_dir("setaside")).with_fsync(FsyncPolicy::Off);
    {
        let (mut store, _, _) = Store::open(cfg.clone()).unwrap();
        store.log(&create_t()).unwrap();
        store.log(&insert(1)).unwrap();
        let img = image(vec![vec![Value::Int(1)]]);
        store.checkpoint(&[&img]).unwrap();
    }
    fault::set("snapshot.load", FaultPolicy::ErrorOnce);
    let (_s, tables, report) = Store::open(cfg.clone()).unwrap();
    assert!(!report.snapshot_loaded);
    assert!(tables.is_empty(), "WAL was truncated at checkpoint");
    assert_eq!(report.notes.len(), 1);
    assert!(
        report.notes[0].contains("set aside"),
        "note explains the set-aside: {}",
        report.notes[0]
    );
    let corrupt = cfg.dir.join("snapshot.corrupt");
    assert!(corrupt.exists(), "evidence file preserved");
    assert!(!cfg.dir.join("snapshot.es").exists());
    fault::clear_all();
}

#[test]
fn midfile_corruption_recovers_prefix_and_resumes() {
    let _g = locked();
    let cfg = StoreConfig::new(tmp_dir("midfile")).with_fsync(FsyncPolicy::Off);
    {
        let (mut store, _, _) = Store::open(cfg.clone()).unwrap();
        store.log(&create_t()).unwrap();
        for v in 0..3 {
            store.log(&insert(v)).unwrap();
        }
    }
    // Flip a byte inside the *second* record's payload: corruption in the
    // middle of the file, not a torn tail.
    let wal_path = cfg.dir.join("wal.log");
    let mut data = std::fs::read(&wal_path).unwrap();
    let mut pos = 8; // magic
    let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
    pos += 8 + len; // now at record 2's header
    data[pos + 8] ^= 0xFF;
    std::fs::write(&wal_path, &data).unwrap();

    let (mut store, tables, report) = Store::open(cfg.clone()).unwrap();
    assert!(report.wal_crc_mismatch);
    assert!(report.wal_torn_bytes > 0);
    assert_eq!(report.wal_records_applied, 1, "only the prefix replays");
    assert!(
        tables[0].rows.is_empty(),
        "inserts after the corruption are gone"
    );

    // The writer resumed at the valid boundary: new appends are replayable.
    store.log(&insert(9)).unwrap();
    drop(store);
    let (_s, tables, report) = Store::open(cfg).unwrap();
    assert_eq!(report.wal_records_applied, 2);
    assert_eq!(tables[0].rows, vec![vec![Value::Int(9)]]);
}
