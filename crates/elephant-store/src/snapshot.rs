//! Columnar snapshots.
//!
//! A snapshot is a compact, checksummed image of every base table at a
//! checkpoint. Layout:
//!
//! ```text
//! file   := magic "ELSNP001"  last_lsn:u64 LE  table_count:u32 LE  table*
//! table  := len:u32 LE  crc:u32 LE  blob[len]          (crc over blob)
//! blob   := name:str  ncols:u32  (colname:str dtype)*  nserial:u32
//!           (colidx:u32 next:i64)*  nrows:u64  page*   (one page per column)
//! page   := tag:u8  nullbitmap[ceil(nrows/8)]  non-null cells
//! ```
//!
//! Pages are **typed**: the writer picks the densest representation every
//! non-null cell of the column fits (`int` = raw i64, `float` = raw f64
//! bits, `bool` = one byte, `text` = length-prefixed). Columns holding
//! arrays or mixed-typed cells (the engine coerces only "where cheap") fall
//! back to the generic tagged [`Value`] encoding. Null positions are stored
//! once in the bitmap (bit i of byte i/8, LSB first) and contribute no page
//! bytes.
//!
//! Rows are written in table order, so the implicit ctid — row position,
//! which the paper's inspection joins rely on — survives restart exactly.
//!
//! Writes go to a temp file which is fsynced and atomically renamed over
//! the previous snapshot; a crash mid-checkpoint therefore leaves the old
//! snapshot intact.

use crate::crc32::crc32;
use crate::error::{Result, StoreError};
use crate::TableImage;
use etypes::binary::{put_i64, put_str, put_u32, put_u64};
use etypes::chunk::Column;
use etypes::{ByteReader, Value};
use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::Path;

/// File magic for snapshot files (8 bytes, versioned).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"ELSNP001";

fn encode_column(buf: &mut Vec<u8>, rows: &[Vec<Value>], col: usize) {
    Column::from_rows(rows, col).encode_page(buf);
}

fn decode_column(
    r: &mut ByteReader<'_>,
    nrows: usize,
    rows: &mut [Vec<Value>],
    col: usize,
) -> Result<()> {
    let page = Column::decode_page(r, nrows)?;
    for (i, row) in rows.iter_mut().enumerate().take(nrows) {
        row[col] = page.get(i);
    }
    Ok(())
}

fn encode_table(image: &TableImage) -> Vec<u8> {
    let mut buf = Vec::with_capacity(256 + image.rows.len() * 16);
    put_str(&mut buf, &image.name);
    put_u32(&mut buf, image.columns.len() as u32);
    for (c, t) in image.columns.iter().zip(&image.types) {
        put_str(&mut buf, c);
        etypes::binary::put_datatype(&mut buf, t);
    }
    put_u32(&mut buf, image.serial_next.len() as u32);
    for (idx, next) in &image.serial_next {
        put_u32(&mut buf, *idx as u32);
        put_i64(&mut buf, *next);
    }
    put_u64(&mut buf, image.rows.len() as u64);
    for col in 0..image.columns.len() {
        encode_column(&mut buf, &image.rows, col);
    }
    buf
}

fn decode_table(blob: &[u8]) -> Result<TableImage> {
    let mut r = ByteReader::new(blob);
    let name = r.str()?;
    let ncols = r.u32()? as usize;
    let mut columns = Vec::with_capacity(ncols);
    let mut types = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        columns.push(r.str()?);
        types.push(r.datatype()?);
    }
    let nserial = r.u32()? as usize;
    let mut serial_next = Vec::with_capacity(nserial);
    for _ in 0..nserial {
        let idx = r.u32()? as usize;
        let next = r.i64()?;
        serial_next.push((idx, next));
    }
    let nrows = r.u64()? as usize;
    if nrows > blob.len() && ncols > 0 {
        // Every stored row costs at least one bitmap bit; a row count larger
        // than the blob itself is corruption the CRC failed to catch.
        return Err(StoreError::corrupt(format!(
            "snapshot row count {nrows} exceeds table blob"
        )));
    }
    let mut rows = vec![vec![Value::Null; ncols]; nrows];
    for col in 0..ncols {
        decode_column(&mut r, nrows, &mut rows, col)?;
    }
    if !r.is_empty() {
        return Err(StoreError::corrupt(format!(
            "{} trailing bytes after snapshot table '{name}'",
            r.remaining()
        )));
    }
    Ok(TableImage {
        name,
        columns,
        types,
        serial_next,
        rows,
    })
}

/// Write a snapshot of `tables` at WAL position `last_lsn` to `path`
/// (atomically, via a `.tmp` sibling). Returns the byte size written.
///
/// ## Failpoints
///
/// Three `etypes::fault` sites cover the checkpoint's I/O edges; each
/// failure leaves the previous snapshot intact:
///
/// * `snapshot.write` — fails the tmp-file write/fsync (tmp removed).
/// * `snapshot.rename` — fails the atomic rename (tmp removed).
/// * `snapshot.dir_fsync` — fails persisting the directory entry; the
///   rename already happened, so the new snapshot is in place but its
///   durability across power loss is unknown — reported as an error.
pub fn write_snapshot(path: &Path, last_lsn: u64, tables: &[&TableImage]) -> Result<u64> {
    let tmp = path.with_extension("tmp");
    let mut buf = Vec::with_capacity(4096);
    buf.extend_from_slice(SNAPSHOT_MAGIC);
    put_u64(&mut buf, last_lsn);
    put_u32(&mut buf, tables.len() as u32);
    for image in tables {
        let blob = encode_table(image);
        put_u32(&mut buf, blob.len() as u32);
        put_u32(&mut buf, crc32(&blob));
        buf.extend_from_slice(&blob);
    }
    let bytes = buf.len() as u64;
    if let Err(fault) = etypes::fault::fire("snapshot.write") {
        let _ = fs::remove_file(&tmp);
        return Err(fault.into());
    }
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&buf)?;
        f.sync_all()?;
    }
    if let Err(fault) = etypes::fault::fire("snapshot.rename") {
        let _ = fs::remove_file(&tmp);
        return Err(fault.into());
    }
    fs::rename(&tmp, path)?;
    etypes::fault::fire("snapshot.dir_fsync")?;
    // Persist the rename itself (directory entry) where the platform allows.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(bytes)
}

/// Load the snapshot at `path`. `Ok(None)` when the file does not exist;
/// an error when it exists but is unreadable or corrupt (the caller decides
/// whether to fall back to WAL-only recovery).
///
/// Failpoint `snapshot.load` simulates a corrupt/unreadable snapshot
/// without byte-surgery, driving the caller's set-aside path.
pub fn load_snapshot(path: &Path) -> Result<Option<(u64, Vec<TableImage>)>> {
    etypes::fault::fire("snapshot.load")?;
    let mut data = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut data)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    decode_snapshot(&data).map(Some)
}

/// Decode an in-memory snapshot image (magic included). Replication
/// followers bootstrap from snapshot bytes shipped over a socket, so the
/// decoder is split from the file read.
pub fn decode_snapshot(data: &[u8]) -> Result<(u64, Vec<TableImage>)> {
    if data.len() < SNAPSHOT_MAGIC.len() || &data[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(StoreError::corrupt("not a snapshot (bad magic)"));
    }
    let mut r = ByteReader::new(&data[SNAPSHOT_MAGIC.len()..]);
    let last_lsn = r.u64()?;
    let count = r.u32()? as usize;
    let mut tables = Vec::with_capacity(count.min(1 << 16));
    for i in 0..count {
        let len = r.u32()? as usize;
        let crc = r.u32()?;
        let blob = r.bytes(len)?;
        if crc32(blob) != crc {
            return Err(StoreError::corrupt(format!(
                "snapshot table {i} checksum mismatch"
            )));
        }
        tables.push(decode_table(blob)?);
    }
    if !r.is_empty() {
        return Err(StoreError::corrupt(format!(
            "{} trailing bytes after snapshot",
            r.remaining()
        )));
    }
    Ok((last_lsn, tables))
}

#[cfg(test)]
mod tests {
    use super::*;
    use etypes::DataType;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("elsnap-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("snapshot.es")
    }

    fn sample_tables() -> Vec<TableImage> {
        vec![
            TableImage {
                name: "people".into(),
                columns: vec!["id".into(), "name".into(), "score".into(), "ok".into()],
                types: vec![
                    DataType::Serial,
                    DataType::Text,
                    DataType::Float,
                    DataType::Bool,
                ],
                serial_next: vec![(0, 4)],
                rows: vec![
                    vec![
                        Value::Int(1),
                        Value::text("ada"),
                        Value::Float(1.5),
                        Value::Bool(true),
                    ],
                    vec![Value::Int(2), Value::Null, Value::Float(-0.0), Value::Null],
                    vec![
                        Value::Int(3),
                        Value::text("bob"),
                        Value::Null,
                        Value::Bool(false),
                    ],
                ],
            },
            TableImage {
                name: "mixed".into(),
                columns: vec!["v".into()],
                types: vec![DataType::Text],
                serial_next: vec![],
                // Mixed cell types force the generic page encoding.
                rows: vec![
                    vec![Value::Int(1)],
                    vec![Value::text("two")],
                    vec![Value::Array(vec![Value::Int(3)])],
                ],
            },
            TableImage {
                name: "empty".into(),
                columns: vec!["a".into()],
                types: vec![DataType::Int],
                serial_next: vec![],
                rows: vec![],
            },
        ]
    }

    #[test]
    fn snapshot_round_trip_preserves_rows_and_order() {
        let path = tmp("roundtrip");
        let tables = sample_tables();
        let refs: Vec<&TableImage> = tables.iter().collect();
        let bytes = write_snapshot(&path, 42, &refs).unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        let (lsn, loaded) = load_snapshot(&path).unwrap().unwrap();
        assert_eq!(lsn, 42);
        assert_eq!(loaded.len(), 3);
        for (a, b) in tables.iter().zip(&loaded) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.columns, b.columns);
            assert_eq!(a.types, b.types);
            assert_eq!(a.serial_next, b.serial_next);
            assert_eq!(a.rows, b.rows, "table {}", a.name);
        }
    }

    #[test]
    fn missing_snapshot_is_none() {
        assert!(load_snapshot(&tmp("missing")).unwrap().is_none());
    }

    #[test]
    fn corrupt_snapshot_is_an_error() {
        let path = tmp("corrupt");
        let tables = sample_tables();
        let refs: Vec<&TableImage> = tables.iter().collect();
        write_snapshot(&path, 1, &refs).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x01;
        std::fs::write(&path, &data).unwrap();
        assert!(load_snapshot(&path).is_err());
    }

    #[test]
    fn atomic_write_leaves_no_tmp_behind() {
        let path = tmp("atomic");
        let tables = sample_tables();
        let refs: Vec<&TableImage> = tables.iter().collect();
        write_snapshot(&path, 1, &refs).unwrap();
        assert!(!path.with_extension("tmp").exists());
    }
}
