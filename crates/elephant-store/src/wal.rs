//! The write-ahead log.
//!
//! One append-only file per store. Layout:
//!
//! ```text
//! file    := magic "ELWAL001" record*
//! record  := len:u32 LE  crc:u32 LE  payload[len]
//! payload := lsn:u64 LE  kind:u8  body
//! ```
//!
//! `crc` is the CRC-32 of the payload. `lsn` is a store-wide monotonically
//! increasing sequence number; snapshots remember the last LSN they contain
//! so replay after a checkpoint skips already-applied records.
//!
//! Replay is **torn-tail tolerant**: a trailing record whose header is
//! incomplete, whose declared length runs past end-of-file, or whose CRC
//! does not match is treated as the torn result of a crash mid-append — the
//! log is cut at the last valid record boundary and the dropped byte count
//! is reported. The writer then truncates the file there, so new appends
//! continue from consistent state.

use crate::crc32::crc32;
use crate::error::{Result, StoreError};
use crate::FsyncPolicy;
use etypes::binary::{put_str, put_u32, put_u64, put_value};
use etypes::{ByteReader, DataType, Value};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// File magic for WAL files (8 bytes, versioned).
pub const WAL_MAGIC: &[u8; 8] = b"ELWAL001";

/// Hard ceiling on one record's payload (64 MiB): a declared length above
/// this is corruption, not a real record.
pub const MAX_RECORD: usize = 64 << 20;

/// One logged mutation. `Insert` rows are logged *post*-serial-fill and
/// *post*-coercion, so replay appends them verbatim and reconstructs the
/// exact in-memory state (including ctid assignment, which is row order).
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// `CREATE TABLE`: schema of the new table.
    CreateTable {
        /// Table name.
        name: String,
        /// Column names in order.
        columns: Vec<String>,
        /// Column types in order.
        types: Vec<DataType>,
    },
    /// `DROP TABLE`.
    DropTable {
        /// Table name.
        name: String,
    },
    /// A batch of appended rows (one `INSERT`/`COPY` statement).
    Insert {
        /// Target table.
        table: String,
        /// Full-width rows in append order.
        rows: Vec<Vec<Value>>,
    },
    /// A batch of in-place row overwrites, addressed by ctid (row index).
    Update {
        /// Target table.
        table: String,
        /// `(ctid, new full-width row)` pairs.
        rows: Vec<(u64, Vec<Value>)>,
    },
    /// A batch of row deletions, addressed by ctid (row index).
    Delete {
        /// Target table.
        table: String,
        /// Row indices to remove.
        ctids: Vec<u64>,
    },
    /// Two-phase commit prepare: this shard's slice of a cross-shard
    /// transaction, durably staged but **not applied**. Replay buffers the
    /// nested records until a matching [`WalRecord::TxnCommit`] applies them
    /// or a [`WalRecord::TxnAbort`] discards them; a prepare with neither by
    /// end-of-log is *in-doubt* and is resolved from the coordinator's
    /// decision log (presumed-abort when no decision exists).
    TxnPrepare {
        /// Coordinator-issued transaction id, unique per coordinator log.
        txn_id: u64,
        /// This shard's mutations, in execution order. Nested records must
        /// be plain data/DDL records — transaction markers do not nest.
        records: Vec<WalRecord>,
    },
    /// Two-phase commit outcome marker: apply the buffered prepare group
    /// for `txn_id`.
    TxnCommit {
        /// The prepared transaction being committed.
        txn_id: u64,
    },
    /// Two-phase commit outcome marker: discard the buffered prepare group
    /// for `txn_id`.
    TxnAbort {
        /// The prepared transaction being aborted.
        txn_id: u64,
    },
    /// Coordinator decision record (coordinator log only): the durable
    /// commit/abort verdict for `txn_id`. Under presumed-abort only commit
    /// decisions strictly need logging, but aborts may be logged too to
    /// shortcut recovery.
    TxnDecision {
        /// The transaction decided.
        txn_id: u64,
        /// True for commit, false for abort.
        commit: bool,
    },
}

impl WalRecord {
    fn kind(&self) -> u8 {
        match self {
            WalRecord::CreateTable { .. } => 0,
            WalRecord::DropTable { .. } => 1,
            WalRecord::Insert { .. } => 2,
            WalRecord::Update { .. } => 3,
            WalRecord::Delete { .. } => 4,
            WalRecord::TxnPrepare { .. } => 5,
            WalRecord::TxnCommit { .. } => 6,
            WalRecord::TxnAbort { .. } => 7,
            WalRecord::TxnDecision { .. } => 8,
        }
    }

    /// Encode the payload (without the frame header) for `lsn`.
    fn encode(&self, lsn: u64) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        put_u64(&mut buf, lsn);
        buf.push(self.kind());
        match self {
            WalRecord::CreateTable {
                name,
                columns,
                types,
            } => {
                put_str(&mut buf, name);
                put_u32(&mut buf, columns.len() as u32);
                for (c, t) in columns.iter().zip(types) {
                    put_str(&mut buf, c);
                    etypes::binary::put_datatype(&mut buf, t);
                }
            }
            WalRecord::DropTable { name } => put_str(&mut buf, name),
            WalRecord::Insert { table, rows } => {
                put_str(&mut buf, table);
                put_u32(&mut buf, rows.len() as u32);
                for row in rows {
                    put_u32(&mut buf, row.len() as u32);
                    for v in row {
                        put_value(&mut buf, v);
                    }
                }
            }
            WalRecord::Update { table, rows } => {
                put_str(&mut buf, table);
                put_u32(&mut buf, rows.len() as u32);
                for (ctid, row) in rows {
                    put_u64(&mut buf, *ctid);
                    put_u32(&mut buf, row.len() as u32);
                    for v in row {
                        put_value(&mut buf, v);
                    }
                }
            }
            WalRecord::Delete { table, ctids } => {
                put_str(&mut buf, table);
                put_u32(&mut buf, ctids.len() as u32);
                for id in ctids {
                    put_u64(&mut buf, *id);
                }
            }
            WalRecord::TxnPrepare { txn_id, records } => {
                put_u64(&mut buf, *txn_id);
                put_u32(&mut buf, records.len() as u32);
                // Nested records reuse the payload codec with lsn 0: the
                // group shares the prepare frame's LSN, the inner values
                // are placeholders.
                for rec in records {
                    let inner = rec.encode(0);
                    put_u32(&mut buf, inner.len() as u32);
                    buf.extend_from_slice(&inner);
                }
            }
            WalRecord::TxnCommit { txn_id } => put_u64(&mut buf, *txn_id),
            WalRecord::TxnAbort { txn_id } => put_u64(&mut buf, *txn_id),
            WalRecord::TxnDecision { txn_id, commit } => {
                put_u64(&mut buf, *txn_id);
                buf.push(u8::from(*commit));
            }
        }
        buf
    }

    /// Decode one payload into `(lsn, record)`. Public so replication
    /// followers can decode shipped frames with the exact replay codec.
    pub fn decode(payload: &[u8]) -> Result<(u64, WalRecord)> {
        let mut r = ByteReader::new(payload);
        let lsn = r.u64()?;
        let kind = r.u8()?;
        let rec = match kind {
            0 => {
                let name = r.str()?;
                let n = r.u32()? as usize;
                let mut columns = Vec::with_capacity(n);
                let mut types = Vec::with_capacity(n);
                for _ in 0..n {
                    columns.push(r.str()?);
                    types.push(r.datatype()?);
                }
                WalRecord::CreateTable {
                    name,
                    columns,
                    types,
                }
            }
            1 => WalRecord::DropTable { name: r.str()? },
            2 => {
                let table = r.str()?;
                let n = r.u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let width = r.u32()? as usize;
                    let mut row = Vec::with_capacity(width.min(1 << 16));
                    for _ in 0..width {
                        row.push(r.value()?);
                    }
                    rows.push(row);
                }
                WalRecord::Insert { table, rows }
            }
            3 => {
                let table = r.str()?;
                let n = r.u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let ctid = r.u64()?;
                    let width = r.u32()? as usize;
                    let mut row = Vec::with_capacity(width.min(1 << 16));
                    for _ in 0..width {
                        row.push(r.value()?);
                    }
                    rows.push((ctid, row));
                }
                WalRecord::Update { table, rows }
            }
            4 => {
                let table = r.str()?;
                let n = r.u32()? as usize;
                let mut ctids = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    ctids.push(r.u64()?);
                }
                WalRecord::Delete { table, ctids }
            }
            5 => {
                let txn_id = r.u64()?;
                let n = r.u32()? as usize;
                let mut records = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let len = r.u32()? as usize;
                    let inner = r.bytes(len)?;
                    let (_lsn, rec) = WalRecord::decode(inner)?;
                    if matches!(
                        rec,
                        WalRecord::TxnPrepare { .. }
                            | WalRecord::TxnCommit { .. }
                            | WalRecord::TxnAbort { .. }
                            | WalRecord::TxnDecision { .. }
                    ) {
                        return Err(StoreError::corrupt(
                            "transaction marker nested inside TxnPrepare",
                        ));
                    }
                    records.push(rec);
                }
                WalRecord::TxnPrepare { txn_id, records }
            }
            6 => WalRecord::TxnCommit { txn_id: r.u64()? },
            7 => WalRecord::TxnAbort { txn_id: r.u64()? },
            8 => {
                let txn_id = r.u64()?;
                let commit = match r.u8()? {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(StoreError::corrupt(format!(
                            "TxnDecision verdict byte must be 0 or 1, got {other}"
                        )))
                    }
                };
                WalRecord::TxnDecision { txn_id, commit }
            }
            other => {
                return Err(StoreError::corrupt(format!(
                    "unknown WAL record kind {other}"
                )))
            }
        };
        if !r.is_empty() {
            return Err(StoreError::corrupt(format!(
                "{} trailing bytes after WAL record",
                r.remaining()
            )));
        }
        Ok((lsn, rec))
    }
}

/// Encode one record into a complete on-disk frame (`len crc payload`),
/// exactly as [`WalWriter::append`] would write it. Replication tests and
/// tooling use this to fabricate byte-accurate frames.
pub fn encode_frame(rec: &WalRecord, lsn: u64) -> Vec<u8> {
    let payload = rec.encode(lsn);
    let mut frame = Vec::with_capacity(8 + payload.len());
    put_u32(&mut frame, payload.len() as u32);
    put_u32(&mut frame, crc32(&payload));
    frame.extend_from_slice(&payload);
    frame
}

/// Decode one complete frame (`len crc payload`) into `(lsn, record)`,
/// re-verifying the declared length and CRC. Followers run every shipped
/// frame through this before applying it, so a corrupt frame is rejected
/// with an error rather than applied.
pub fn decode_frame(frame: &[u8]) -> Result<(u64, WalRecord)> {
    if frame.len() < 8 {
        return Err(StoreError::corrupt("WAL frame shorter than its header"));
    }
    let len = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
    if len > MAX_RECORD || frame.len() != 8 + len {
        return Err(StoreError::corrupt(format!(
            "WAL frame declares {len} payload bytes but carries {}",
            frame.len().saturating_sub(8)
        )));
    }
    let payload = &frame[8..];
    if crc32(payload) != crc {
        return Err(StoreError::corrupt("WAL frame CRC mismatch"));
    }
    WalRecord::decode(payload)
}

/// Writer progress shared across threads: the replication feeder polls this
/// (through a [`crate::WalHandle`]) to learn which WAL frames are safe to
/// ship. `committed_lsn` advances only *after* an append fully succeeded
/// under the configured fsync policy — a frame rolled back by a failed
/// fsync never moves the watermark, so the tailer can never ship a record
/// the engine did not acknowledge. `truncations` counts checkpoint
/// truncations so tailers detect that their byte offset went stale even if
/// the file has already regrown past it.
#[derive(Debug, Default)]
pub struct WalShared {
    committed_lsn: AtomicU64,
    truncations: AtomicU64,
}

impl WalShared {
    /// Highest LSN whose frame is fully appended and acknowledged.
    pub fn committed_lsn(&self) -> u64 {
        self.committed_lsn.load(Ordering::Acquire)
    }

    /// Checkpoint truncations since the writer opened.
    pub fn truncations(&self) -> u64 {
        self.truncations.load(Ordering::Acquire)
    }

    fn set_committed(&self, lsn: u64) {
        self.committed_lsn.store(lsn, Ordering::Release);
    }

    fn bump_truncations(&self) {
        self.truncations.fetch_add(1, Ordering::Release);
    }
}

/// Monotonic writer-side counters, surfaced through `STATS`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended since open.
    pub records_appended: u64,
    /// `fsync` calls issued.
    pub fsyncs: u64,
    /// Current WAL file size in bytes.
    pub bytes: u64,
    /// Total wall-clock time spent in [`WalWriter::append`] (µs), fsync
    /// time included. Callers diff this to attribute WAL cost per record.
    pub append_us: u64,
    /// Total wall-clock time spent inside `fsync` (µs).
    pub fsync_us: u64,
    /// Group-commit windows closed with at least one deferred record
    /// (each paid exactly one fsync).
    pub group_commits: u64,
    /// Records whose durability was acknowledged by a group fsync rather
    /// than their own. `group_committed_records / group_commits` is the
    /// commits-per-fsync amortization factor.
    pub group_committed_records: u64,
}

/// Bookkeeping for one open group-commit window: everything needed to cut
/// the whole batch back out if the single closing fsync fails.
#[derive(Debug)]
struct GroupState {
    start_bytes: u64,
    start_lsn: u64,
    start_unsynced: u64,
    deferred: u64,
}

/// Append-only WAL writer.
///
/// ## Failpoints
///
/// Three `etypes::fault` sites cover the writer's I/O edges:
///
/// * `wal.append` — fails before any bytes are written (clean failure).
/// * `wal.short_write` — writes only a prefix of the frame and fails,
///   leaving a genuine torn tail on disk (what a crash mid-append leaves);
///   the writer poisons itself until [`WalWriter::truncate`] resets it.
/// * `wal.fsync` — fails the durability step; the just-written frame is
///   cut back out so a later crash cannot resurrect an unacknowledged
///   record.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    fsync: FsyncPolicy,
    unsynced: u64,
    next_lsn: u64,
    stats: WalStats,
    shared: Arc<WalShared>,
    /// Set when the on-disk tail no longer ends at a record boundary (torn
    /// append, failed rollback): further appends would be silently dropped
    /// by replay, so they are refused until `truncate` restores a clean
    /// boundary.
    poisoned: Option<String>,
    /// Open group-commit window, if any (see [`WalWriter::begin_group`]).
    group: Option<GroupState>,
}

impl WalWriter {
    /// Open (creating if absent) the WAL at `path`, truncating it to
    /// `valid_len` — the last consistent record boundary found by replay —
    /// and continuing LSNs from `next_lsn`.
    pub fn open(
        path: &Path,
        fsync: FsyncPolicy,
        valid_len: u64,
        next_lsn: u64,
    ) -> Result<WalWriter> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        file.set_len(valid_len.max(WAL_MAGIC.len() as u64))?;
        if valid_len < WAL_MAGIC.len() as u64 {
            file.seek(SeekFrom::Start(0))?;
            file.write_all(WAL_MAGIC)?;
        }
        let bytes = file.seek(SeekFrom::End(0))?;
        let shared = Arc::new(WalShared::default());
        shared.set_committed(next_lsn.saturating_sub(1));
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            fsync,
            unsynced: 0,
            next_lsn,
            stats: WalStats {
                bytes,
                ..WalStats::default()
            },
            shared,
            poisoned: None,
            group: None,
        })
    }

    /// Open a group-commit window. While a window is open under
    /// [`FsyncPolicy::Always`], appends skip their per-record fsync *and*
    /// the commit watermark: the record is written but not acknowledged
    /// until [`WalWriter::end_group`] issues one fsync for the whole batch.
    /// Under `EveryN`/`Off` the window is a no-op — those policies already
    /// acknowledge without a per-record fsync. Idempotent while open.
    pub fn begin_group(&mut self) {
        if self.group.is_none() {
            self.group = Some(GroupState {
                start_bytes: self.stats.bytes,
                start_lsn: self.next_lsn,
                start_unsynced: self.unsynced,
                deferred: 0,
            });
        }
    }

    /// Close the group-commit window: one fsync covers every record
    /// deferred since [`WalWriter::begin_group`], then the watermark jumps
    /// over the batch. Returns how many records the fsync acknowledged
    /// (0 when nothing was deferred — no fsync is issued then). On fsync
    /// failure the *entire batch* is cut back out (`set_len` to the window
    /// start, which also removes any torn tail a mid-window short write
    /// left) and the LSNs are reused, exactly like the single-record
    /// rollback in [`WalWriter::append`].
    pub fn end_group(&mut self) -> Result<u64> {
        let Some(g) = self.group.take() else {
            return Ok(0);
        };
        if g.deferred == 0 {
            return Ok(0);
        }
        match self.sync() {
            Ok(()) => {
                self.shared.set_committed(self.next_lsn - 1);
                self.stats.group_commits += 1;
                self.stats.group_committed_records += g.deferred;
                Ok(g.deferred)
            }
            Err(e) => {
                let rolled_back = self
                    .file
                    .set_len(g.start_bytes)
                    .and_then(|()| self.file.seek(SeekFrom::Start(g.start_bytes)).map(|_| ()));
                match rolled_back {
                    Ok(()) => {
                        self.stats.bytes = g.start_bytes;
                        self.stats.records_appended -= g.deferred;
                        self.next_lsn = g.start_lsn;
                        self.unsynced = g.start_unsynced;
                        // The cut lands on the window-start record boundary,
                        // so any torn tail inside the window went with it.
                        self.poisoned = None;
                    }
                    Err(_) => {
                        self.poisoned =
                            Some(format!("failed group rollback at lsn {}", g.start_lsn));
                    }
                }
                Err(e)
            }
        }
    }

    /// Records deferred in the currently open group window (0 outside one).
    pub fn group_pending(&self) -> u64 {
        self.group.as_ref().map_or(0, |g| g.deferred)
    }

    /// True while a group-commit window is open. Two-phase-commit appends
    /// check this: a prepare acked inside a window could be cut back out by
    /// the window's whole-batch rollback, which would break the 2PC
    /// durability contract.
    pub fn in_group(&self) -> bool {
        self.group.is_some()
    }

    /// The cross-thread progress view ([`WalShared`]) for this writer.
    pub fn shared(&self) -> Arc<WalShared> {
        Arc::clone(&self.shared)
    }

    /// The WAL file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The LSN the next append will use.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Writer counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Append one record; returns its LSN. Durability depends on the
    /// configured [`FsyncPolicy`]. A failed append never leaves a record
    /// that replay would apply: either no bytes landed, the frame was cut
    /// back out after an fsync failure, or a torn tail remains that replay
    /// drops at the last valid boundary.
    pub fn append(&mut self, rec: &WalRecord) -> Result<u64> {
        if let Some(reason) = &self.poisoned {
            return Err(StoreError::invalid(format!(
                "WAL writer poisoned ({reason}); checkpoint to truncate and recover"
            )));
        }
        let started = std::time::Instant::now();
        etypes::fault::fire("wal.append")?;
        let lsn = self.next_lsn;
        let payload = rec.encode(lsn);
        let mut frame = Vec::with_capacity(8 + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        if let Err(fault) = etypes::fault::fire("wal.short_write") {
            // Torn-frame simulation: persist only a prefix of the frame —
            // the exact disk state a crash mid-append leaves — then fail.
            // The torn bytes stay for recovery to find and truncate.
            let cut = (frame.len() / 2).max(1);
            self.file.write_all(&frame[..cut])?;
            let _ = self.file.sync_data();
            self.stats.bytes += cut as u64;
            self.poisoned = Some(format!("torn append at lsn {lsn}"));
            return Err(fault.into());
        }
        let frame_start = self.stats.bytes;
        let unsynced_before = self.unsynced;
        self.file.write_all(&frame)?;
        self.next_lsn += 1;
        self.unsynced += 1;
        self.stats.records_appended += 1;
        self.stats.bytes += frame.len() as u64;
        // Inside a group window, `Always` defers both the fsync and the
        // acknowledgment to `end_group`'s single sync. The lax policies
        // already acknowledge without a per-record fsync, so the window
        // changes nothing for them.
        let deferred = matches!(self.fsync, FsyncPolicy::Always) && self.group.is_some();
        let synced = if deferred {
            Ok(())
        } else {
            match self.fsync {
                FsyncPolicy::Always => self.sync(),
                FsyncPolicy::EveryN(n) => {
                    if self.unsynced >= n.max(1) {
                        self.sync()
                    } else {
                        Ok(())
                    }
                }
                FsyncPolicy::Off => Ok(()),
            }
        };
        if let Err(e) = synced {
            // The frame's durability is unknown. Cut it back out so a crash
            // after this failed (and therefore unacknowledged) append
            // cannot resurrect the record on replay.
            let rolled_back = self
                .file
                .set_len(frame_start)
                .and_then(|()| self.file.seek(SeekFrom::Start(frame_start)).map(|_| ()));
            match rolled_back {
                Ok(()) => {
                    self.stats.bytes = frame_start;
                    self.stats.records_appended -= 1;
                    self.next_lsn = lsn;
                    self.unsynced = unsynced_before;
                }
                Err(_) => {
                    self.poisoned = Some(format!("failed fsync rollback at lsn {lsn}"));
                }
            }
            return Err(e);
        }
        if deferred {
            if let Some(g) = &mut self.group {
                g.deferred += 1;
            }
        } else {
            self.shared.set_committed(lsn);
        }
        self.stats.append_us += started.elapsed().as_micros() as u64;
        Ok(lsn)
    }

    /// Force written records to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        let started = std::time::Instant::now();
        etypes::fault::fire("wal.fsync")?;
        self.file.sync_data()?;
        self.unsynced = 0;
        self.stats.fsyncs += 1;
        self.stats.fsync_us += started.elapsed().as_micros() as u64;
        Ok(())
    }

    /// Truncate the log after a checkpoint: every record is now covered by
    /// the snapshot. LSNs keep counting — they are store-wide, not per-file.
    /// Also clears any poison: the file is back at a clean record boundary.
    pub fn truncate(&mut self) -> Result<u64> {
        let dropped = self.stats.bytes.saturating_sub(WAL_MAGIC.len() as u64);
        self.file.set_len(WAL_MAGIC.len() as u64)?;
        self.file.seek(SeekFrom::Start(WAL_MAGIC.len() as u64))?;
        let started = std::time::Instant::now();
        self.file.sync_data()?;
        self.stats.fsyncs += 1;
        self.stats.fsync_us += started.elapsed().as_micros() as u64;
        self.unsynced = 0;
        self.stats.bytes = WAL_MAGIC.len() as u64;
        self.poisoned = None;
        // A checkpoint inside a group window covers the deferred records
        // with the snapshot; re-anchor the window at the now-empty log so a
        // later group rollback cannot unwind snapshot-covered state.
        if let Some(g) = &mut self.group {
            if g.deferred > 0 {
                self.shared.set_committed(self.next_lsn - 1);
            }
            g.start_bytes = self.stats.bytes;
            g.start_lsn = self.next_lsn;
            g.start_unsynced = 0;
            g.deferred = 0;
        }
        self.shared.bump_truncations();
        Ok(dropped)
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        // Clean shutdown flushes even under lax fsync policies.
        let _ = self.file.sync_data();
    }
}

/// The outcome of scanning a WAL file.
#[derive(Debug, Default)]
pub struct WalReadOutcome {
    /// Valid records in file order.
    pub records: Vec<(u64, WalRecord)>,
    /// Byte offset of the end of the last valid record (the consistent
    /// boundary the writer should truncate to).
    pub valid_len: u64,
    /// Bytes after `valid_len` dropped as a torn tail.
    pub torn_bytes: u64,
    /// True when the tail was dropped because of a CRC mismatch (as opposed
    /// to an incomplete header/payload).
    pub crc_mismatch: bool,
}

/// Scan the WAL at `path`. A missing file yields an empty outcome. A file
/// that does not start with [`WAL_MAGIC`] is an error (it is not a WAL); a
/// corrupt or incomplete *tail* is tolerated and reported.
pub fn read_wal(path: &Path) -> Result<WalReadOutcome> {
    let mut data = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut data)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalReadOutcome::default()),
        Err(e) => return Err(e.into()),
    }
    if data.is_empty() {
        return Ok(WalReadOutcome::default());
    }
    if data.len() < WAL_MAGIC.len() || &data[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(StoreError::corrupt(format!(
            "{} is not a WAL file (bad magic)",
            path.display()
        )));
    }
    let mut out = WalReadOutcome {
        valid_len: WAL_MAGIC.len() as u64,
        ..WalReadOutcome::default()
    };
    let mut pos = WAL_MAGIC.len();
    while pos < data.len() {
        let remaining = data.len() - pos;
        if remaining < 8 {
            break; // torn header
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > MAX_RECORD || remaining - 8 < len {
            break; // torn payload (or garbage length)
        }
        let payload = &data[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            out.crc_mismatch = true;
            break;
        }
        match WalRecord::decode(payload) {
            Ok(entry) => out.records.push(entry),
            Err(_) => {
                // Checksum matched but the payload does not parse: written
                // by a different version or deliberately corrupted. Stop at
                // the boundary like any other torn tail.
                out.crc_mismatch = true;
                break;
            }
        }
        pos += 8 + len;
        out.valid_len = pos as u64;
    }
    out.torn_bytes = (data.len() as u64).saturating_sub(out.valid_len);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The failpoint registry is process-global; tests that arm
    /// `wal.fsync` serialize on this so one test's `error_once` cannot be
    /// consumed by another's sync.
    static FAULT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("elwal-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateTable {
                name: "t".into(),
                columns: vec!["id".into(), "v".into()],
                types: vec![DataType::Serial, DataType::Text],
            },
            WalRecord::Insert {
                table: "t".into(),
                rows: vec![
                    vec![Value::Int(1), Value::text("a")],
                    vec![Value::Int(2), Value::Null],
                ],
            },
            WalRecord::Update {
                table: "t".into(),
                rows: vec![(0, vec![Value::Int(1), Value::text("a2")])],
            },
            WalRecord::Delete {
                table: "t".into(),
                ctids: vec![1],
            },
            WalRecord::DropTable { name: "t".into() },
        ]
    }

    #[test]
    fn append_and_replay_round_trip() {
        let path = tmp("roundtrip");
        let mut w = WalWriter::open(&path, FsyncPolicy::Always, 0, 1).unwrap();
        for rec in sample_records() {
            w.append(&rec).unwrap();
        }
        assert_eq!(w.stats().records_appended, 5);
        assert!(w.stats().fsyncs >= 5);
        drop(w);
        let out = read_wal(&path).unwrap();
        assert_eq!(out.torn_bytes, 0);
        assert!(!out.crc_mismatch);
        let lsns: Vec<u64> = out.records.iter().map(|(l, _)| *l).collect();
        assert_eq!(lsns, vec![1, 2, 3, 4, 5]);
        let recs: Vec<WalRecord> = out.records.into_iter().map(|(_, r)| r).collect();
        assert_eq!(recs, sample_records());
    }

    #[test]
    fn torn_tail_is_dropped_and_writer_resumes() {
        let path = tmp("torn");
        let mut w = WalWriter::open(&path, FsyncPolicy::Off, 0, 1).unwrap();
        for rec in sample_records() {
            w.append(&rec).unwrap();
        }
        drop(w);
        let full = std::fs::metadata(&path).unwrap().len();
        // Cut 3 bytes into the last record.
        let out_full = read_wal(&path).unwrap();
        assert_eq!(out_full.valid_len, full);
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 3).unwrap();
        drop(f);
        let out = read_wal(&path).unwrap();
        assert_eq!(out.records.len(), 4, "last record torn away");
        assert!(out.torn_bytes > 0);
        assert!(!out.crc_mismatch);
        // Reopen the writer at the valid boundary and append again.
        let mut w = WalWriter::open(&path, FsyncPolicy::Off, out.valid_len, 10).unwrap();
        w.append(&WalRecord::DropTable { name: "t".into() })
            .unwrap();
        drop(w);
        let out = read_wal(&path).unwrap();
        assert_eq!(out.records.len(), 5);
        assert_eq!(out.records.last().unwrap().0, 10);
        assert_eq!(out.torn_bytes, 0);
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let path = tmp("crc");
        let mut w = WalWriter::open(&path, FsyncPolicy::Off, 0, 1).unwrap();
        for rec in sample_records() {
            w.append(&rec).unwrap();
        }
        drop(w);
        let mut data = std::fs::read(&path).unwrap();
        // Walk the frames to the third record and flip a byte inside its
        // payload (not its header) so the failure is a checksum mismatch.
        let mut pos = WAL_MAGIC.len();
        for _ in 0..2 {
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 8 + len;
        }
        data[pos + 8] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let out = read_wal(&path).unwrap();
        assert!(out.crc_mismatch);
        assert!(out.records.len() < 5);
        assert!(out.torn_bytes > 0);
    }

    #[test]
    fn every_n_policy_batches_fsyncs() {
        let path = tmp("everyn");
        let mut w = WalWriter::open(&path, FsyncPolicy::EveryN(3), 0, 1).unwrap();
        for _ in 0..7 {
            w.append(&WalRecord::DropTable { name: "x".into() })
                .unwrap();
        }
        assert_eq!(w.stats().fsyncs, 2, "7 appends at every_n=3 -> 2 syncs");
    }

    #[test]
    fn truncate_resets_bytes_but_not_lsns() {
        let path = tmp("trunc");
        let mut w = WalWriter::open(&path, FsyncPolicy::Off, 0, 1).unwrap();
        for rec in sample_records() {
            w.append(&rec).unwrap();
        }
        let dropped = w.truncate().unwrap();
        assert!(dropped > 0);
        assert_eq!(w.stats().bytes, WAL_MAGIC.len() as u64);
        let lsn = w
            .append(&WalRecord::DropTable { name: "t".into() })
            .unwrap();
        assert_eq!(lsn, 6, "LSNs continue across truncation");
        drop(w);
        let out = read_wal(&path).unwrap();
        assert_eq!(out.records.len(), 1);
    }

    #[test]
    fn shared_watermark_tracks_acknowledged_appends() {
        let path = tmp("shared");
        let mut w = WalWriter::open(&path, FsyncPolicy::Off, 0, 5).unwrap();
        let shared = w.shared();
        assert_eq!(shared.committed_lsn(), 4, "open resumes at next_lsn - 1");
        assert_eq!(shared.truncations(), 0);
        w.append(&WalRecord::DropTable { name: "x".into() })
            .unwrap();
        assert_eq!(shared.committed_lsn(), 5);
        w.truncate().unwrap();
        assert_eq!(shared.truncations(), 1);
        assert_eq!(shared.committed_lsn(), 5, "LSNs survive truncation");
    }

    #[test]
    fn failed_fsync_never_advances_watermark() {
        let _guard = FAULT_LOCK.lock().unwrap();
        let path = tmp("sharedfail");
        let mut w = WalWriter::open(&path, FsyncPolicy::Always, 0, 1).unwrap();
        let shared = w.shared();
        w.append(&WalRecord::DropTable { name: "x".into() })
            .unwrap();
        assert_eq!(shared.committed_lsn(), 1);
        etypes::fault::configure("wal.fsync=error_once").unwrap();
        let err = w.append(&WalRecord::DropTable { name: "y".into() });
        etypes::fault::clear("wal.fsync");
        assert!(err.is_err());
        assert_eq!(
            shared.committed_lsn(),
            1,
            "rolled-back frame must not be shippable"
        );
        let lsn = w
            .append(&WalRecord::DropTable { name: "z".into() })
            .unwrap();
        assert_eq!(lsn, 2, "LSN reused after rollback");
        assert_eq!(shared.committed_lsn(), 2);
    }

    #[test]
    fn frame_codec_round_trips_and_rejects_corruption() {
        for (i, rec) in sample_records().iter().enumerate() {
            let lsn = (i + 1) as u64;
            let frame = encode_frame(rec, lsn);
            let (got_lsn, got) = decode_frame(&frame).unwrap();
            assert_eq!(got_lsn, lsn);
            assert_eq!(&got, rec);
            // A flipped payload byte must be caught by the CRC.
            let mut bad = frame.clone();
            let last = bad.len() - 1;
            bad[last] ^= 0x40;
            assert!(decode_frame(&bad).is_err());
            // A truncated frame must be caught by the length check.
            assert!(decode_frame(&frame[..frame.len() - 1]).is_err());
        }
        assert!(decode_frame(&[1, 2, 3]).is_err());
    }

    #[test]
    fn group_commit_batches_fsyncs_and_defers_watermark() {
        let path = tmp("group");
        let mut w = WalWriter::open(&path, FsyncPolicy::Always, 0, 1).unwrap();
        let shared = w.shared();
        w.begin_group();
        for name in ["a", "b", "c"] {
            w.append(&WalRecord::DropTable { name: name.into() })
                .unwrap();
        }
        assert_eq!(w.stats().fsyncs, 0, "appends deferred their fsync");
        assert_eq!(
            shared.committed_lsn(),
            0,
            "deferred records are not acknowledged"
        );
        assert_eq!(w.group_pending(), 3);
        assert_eq!(w.end_group().unwrap(), 3);
        assert_eq!(w.stats().fsyncs, 1, "one fsync acknowledged the batch");
        assert_eq!(shared.committed_lsn(), 3);
        assert_eq!(w.stats().group_commits, 1);
        assert_eq!(w.stats().group_committed_records, 3);
        // Empty window: no fsync, no counters.
        w.begin_group();
        assert_eq!(w.end_group().unwrap(), 0);
        assert_eq!(w.stats().fsyncs, 1);
        assert_eq!(w.stats().group_commits, 1);
        drop(w);
        let out = read_wal(&path).unwrap();
        assert_eq!(out.records.len(), 3);
        assert_eq!(out.torn_bytes, 0);
    }

    #[test]
    fn group_commit_is_noop_for_lax_policies() {
        let path = tmp("grouplax");
        let mut w = WalWriter::open(&path, FsyncPolicy::Off, 0, 1).unwrap();
        let shared = w.shared();
        w.begin_group();
        w.append(&WalRecord::DropTable { name: "x".into() })
            .unwrap();
        assert_eq!(
            shared.committed_lsn(),
            1,
            "lax policies acknowledge per append"
        );
        assert_eq!(w.group_pending(), 0);
        assert_eq!(w.end_group().unwrap(), 0);
        assert_eq!(w.stats().group_commits, 0);
    }

    #[test]
    fn failed_group_fsync_rolls_back_whole_batch() {
        let _guard = FAULT_LOCK.lock().unwrap();
        let path = tmp("groupfail");
        let mut w = WalWriter::open(&path, FsyncPolicy::Always, 0, 1).unwrap();
        let shared = w.shared();
        w.append(&WalRecord::DropTable { name: "pre".into() })
            .unwrap();
        let bytes_before = w.stats().bytes;
        w.begin_group();
        w.append(&WalRecord::DropTable { name: "a".into() })
            .unwrap();
        w.append(&WalRecord::DropTable { name: "b".into() })
            .unwrap();
        etypes::fault::configure("wal.fsync=error_once").unwrap();
        let err = w.end_group();
        etypes::fault::clear("wal.fsync");
        assert!(err.is_err());
        assert_eq!(
            shared.committed_lsn(),
            1,
            "rolled-back batch never acknowledged"
        );
        assert_eq!(w.stats().bytes, bytes_before, "batch frames cut back out");
        assert_eq!(w.stats().records_appended, 1);
        // LSNs are reused, the writer keeps working.
        let lsn = w
            .append(&WalRecord::DropTable { name: "c".into() })
            .unwrap();
        assert_eq!(lsn, 2);
        drop(w);
        let out = read_wal(&path).unwrap();
        assert_eq!(out.records.len(), 2);
        assert_eq!(out.torn_bytes, 0);
    }

    #[test]
    fn truncate_inside_group_reanchors_window() {
        let _guard = FAULT_LOCK.lock().unwrap();
        let path = tmp("grouptrunc");
        let mut w = WalWriter::open(&path, FsyncPolicy::Always, 0, 1).unwrap();
        let shared = w.shared();
        w.begin_group();
        w.append(&WalRecord::DropTable { name: "a".into() })
            .unwrap();
        w.truncate().unwrap();
        assert_eq!(
            shared.committed_lsn(),
            1,
            "snapshot-covered record acknowledged"
        );
        assert_eq!(w.group_pending(), 0);
        w.append(&WalRecord::DropTable { name: "b".into() })
            .unwrap();
        etypes::fault::configure("wal.fsync=error_once").unwrap();
        let err = w.end_group();
        etypes::fault::clear("wal.fsync");
        assert!(err.is_err());
        assert_eq!(
            shared.committed_lsn(),
            1,
            "only the post-truncate record unwound"
        );
        assert_eq!(w.stats().bytes, WAL_MAGIC.len() as u64);
    }

    fn txn_records() -> Vec<WalRecord> {
        vec![
            WalRecord::TxnPrepare {
                txn_id: 7,
                records: vec![
                    WalRecord::CreateTable {
                        name: "t".into(),
                        columns: vec!["id".into()],
                        types: vec![DataType::Int],
                    },
                    WalRecord::Insert {
                        table: "t".into(),
                        rows: vec![vec![Value::Int(1)]],
                    },
                ],
            },
            WalRecord::TxnCommit { txn_id: 7 },
            WalRecord::TxnAbort { txn_id: 8 },
            WalRecord::TxnDecision {
                txn_id: 7,
                commit: true,
            },
            WalRecord::TxnDecision {
                txn_id: 8,
                commit: false,
            },
        ]
    }

    #[test]
    fn txn_records_round_trip() {
        let path = tmp("txnroundtrip");
        let mut w = WalWriter::open(&path, FsyncPolicy::Always, 0, 1).unwrap();
        for rec in txn_records() {
            w.append(&rec).unwrap();
        }
        drop(w);
        let out = read_wal(&path).unwrap();
        assert_eq!(out.torn_bytes, 0);
        assert!(!out.crc_mismatch);
        let recs: Vec<WalRecord> = out.records.into_iter().map(|(_, r)| r).collect();
        assert_eq!(recs, txn_records());
    }

    #[test]
    fn txn_frame_codec_round_trips_and_rejects_corruption() {
        for (i, rec) in txn_records().iter().enumerate() {
            let lsn = (i + 1) as u64;
            let frame = encode_frame(rec, lsn);
            let (got_lsn, got) = decode_frame(&frame).unwrap();
            assert_eq!(got_lsn, lsn);
            assert_eq!(&got, rec);
            let mut bad = frame.clone();
            let last = bad.len() - 1;
            bad[last] ^= 0x40;
            assert!(decode_frame(&bad).is_err());
            assert!(decode_frame(&frame[..frame.len() - 1]).is_err());
        }
    }

    #[test]
    fn nested_txn_marker_is_rejected() {
        // Hand-encode a TxnPrepare whose nested record is itself a
        // TxnCommit: the codec must refuse it even with a valid CRC.
        let inner = WalRecord::TxnCommit { txn_id: 3 }.encode(0);
        let mut buf = Vec::new();
        put_u64(&mut buf, 9); // lsn
        buf.push(5); // TxnPrepare kind
        put_u64(&mut buf, 3); // txn_id
        put_u32(&mut buf, 1); // one nested record
        put_u32(&mut buf, inner.len() as u32);
        buf.extend_from_slice(&inner);
        assert!(WalRecord::decode(&buf).is_err());
    }

    #[test]
    fn missing_file_is_empty_not_error() {
        let path = tmp("missing");
        let out = read_wal(&path).unwrap();
        assert!(out.records.is_empty());
        assert_eq!(out.valid_len, 0);
    }

    #[test]
    fn non_wal_file_is_an_error() {
        let path = tmp("notwal");
        std::fs::write(&path, b"definitely not a wal").unwrap();
        assert!(read_wal(&path).is_err());
    }
}
