//! Storage error type.

use std::fmt;

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Errors raised by the durable storage layer.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// On-disk state that cannot be interpreted (bad magic, failed
    /// checksum, unparsable record) — *not* raised for tolerated torn
    /// tails, which recovery reports instead.
    Corrupt(String),
    /// Binary codec failure while decoding cells.
    Codec(etypes::Error),
    /// The caller asked for something inconsistent (e.g. replaying an
    /// insert into a table the log never created).
    Invalid(String),
    /// A deterministic failpoint fired (`etypes::fault`); carries the site
    /// name. Only ever raised while fault injection is armed.
    Injected(etypes::fault::InjectedFault),
}

impl StoreError {
    pub(crate) fn corrupt(message: impl Into<String>) -> StoreError {
        StoreError::Corrupt(message.into())
    }

    pub(crate) fn invalid(message: impl Into<String>) -> StoreError {
        StoreError::Invalid(message.into())
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage io error: {e}"),
            StoreError::Corrupt(m) => write!(f, "corrupt storage: {m}"),
            StoreError::Codec(e) => write!(f, "storage codec error: {e}"),
            StoreError::Invalid(m) => write!(f, "invalid storage operation: {m}"),
            StoreError::Injected(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Codec(e) => Some(e),
            StoreError::Injected(e) => Some(e),
            _ => None,
        }
    }
}

impl From<etypes::fault::InjectedFault> for StoreError {
    fn from(e: etypes::fault::InjectedFault) -> Self {
        StoreError::Injected(e)
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<etypes::Error> for StoreError {
    fn from(e: etypes::Error) -> Self {
        StoreError::Codec(e)
    }
}
