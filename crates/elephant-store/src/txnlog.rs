//! The coordinator's durable decision log for two-phase commit.
//!
//! One small WAL-framed file (`txn.log`) per server data directory holding
//! only [`WalRecord::TxnDecision`] records. The 2PC contract: a cross-shard
//! write is acknowledged to the client only after its commit decision is
//! fsynced here, so recovery can always resolve an in-doubt prepared group
//! on a shard by consulting this log — decision present and `commit=true`
//! means apply, anything else means presumed abort (the coordinator never
//! acked, so unwinding cannot lose an acknowledged write).
//!
//! Abort decisions *may* be logged too (they shortcut nothing correctness-
//! wise under presumed-abort, but make the operator-visible history
//! complete); the current coordinator logs commits only.

use crate::error::Result;
use crate::wal::{read_wal, WalRecord, WalWriter};
use crate::FsyncPolicy;
use std::collections::HashMap;
use std::path::Path;

/// Decision log file name inside the server data directory.
pub const TXN_LOG_FILE: &str = "txn.log";

/// An open coordinator decision log: replayed verdict map plus an
/// append-only writer for new verdicts. Decisions always fsync
/// ([`FsyncPolicy::Always`]) — a lost decision could orphan an acked write.
#[derive(Debug)]
pub struct TxnDecisionLog {
    wal: WalWriter,
    decisions: HashMap<u64, bool>,
    max_txn_id: u64,
}

impl TxnDecisionLog {
    /// Open (creating if absent) the decision log at `path` and replay its
    /// verdicts. A torn tail is tolerated exactly like the data WAL: the
    /// file is cut at the last valid record boundary. Non-decision records
    /// are ignored (forward compatibility), never applied.
    pub fn open(path: &Path) -> Result<TxnDecisionLog> {
        let out = read_wal(path)?;
        let mut decisions = HashMap::new();
        let mut max_txn_id = 0u64;
        let mut next_lsn = 1u64;
        for (lsn, rec) in out.records {
            next_lsn = next_lsn.max(lsn + 1);
            if let WalRecord::TxnDecision { txn_id, commit } = rec {
                max_txn_id = max_txn_id.max(txn_id);
                decisions.insert(txn_id, commit);
            }
        }
        let wal = WalWriter::open(path, FsyncPolicy::Always, out.valid_len, next_lsn)?;
        Ok(TxnDecisionLog {
            wal,
            decisions,
            max_txn_id,
        })
    }

    /// Durably record the verdict for `txn_id`: appended and fsynced before
    /// this returns Ok, at which point the decision survives any crash and
    /// the coordinator may act on it.
    pub fn decide(&mut self, txn_id: u64, commit: bool) -> Result<u64> {
        etypes::fault::fire("txn.decision_write")?;
        let lsn = self
            .wal
            .append(&WalRecord::TxnDecision { txn_id, commit })?;
        self.decisions.insert(txn_id, commit);
        self.max_txn_id = self.max_txn_id.max(txn_id);
        Ok(lsn)
    }

    /// The recorded verdict for `txn_id`, if any.
    pub fn decision(&self, txn_id: u64) -> Option<bool> {
        self.decisions.get(&txn_id).copied()
    }

    /// All recorded verdicts — handed to each shard's recovery as
    /// [`crate::StoreConfig::txn_decisions`].
    pub fn decisions(&self) -> HashMap<u64, bool> {
        self.decisions.clone()
    }

    /// Highest transaction id ever decided. Coordinators must issue fresh
    /// ids strictly above this: a reused id could otherwise match a stale
    /// commit verdict and wrongly commit a new in-doubt group.
    pub fn max_txn_id(&self) -> u64 {
        self.max_txn_id
    }

    /// Decisions recorded since open (writer-side counter).
    pub fn records_appended(&self) -> u64 {
        self.wal.stats().records_appended
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eltxnlog-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(TXN_LOG_FILE)
    }

    #[test]
    fn decisions_survive_reopen() {
        let path = tmp("reopen");
        {
            let mut log = TxnDecisionLog::open(&path).unwrap();
            assert_eq!(log.max_txn_id(), 0);
            log.decide(3, true).unwrap();
            log.decide(5, false).unwrap();
            log.decide(4, true).unwrap();
        }
        let log = TxnDecisionLog::open(&path).unwrap();
        assert_eq!(log.decision(3), Some(true));
        assert_eq!(log.decision(4), Some(true));
        assert_eq!(log.decision(5), Some(false));
        assert_eq!(log.decision(6), None);
        assert_eq!(log.max_txn_id(), 5);
        assert_eq!(log.decisions().len(), 3);
    }

    #[test]
    fn torn_tail_drops_only_last_decision() {
        let path = tmp("torn");
        {
            let mut log = TxnDecisionLog::open(&path).unwrap();
            log.decide(1, true).unwrap();
            log.decide(2, true).unwrap();
        }
        let full = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 2).unwrap();
        drop(f);
        let log = TxnDecisionLog::open(&path).unwrap();
        assert_eq!(log.decision(1), Some(true));
        assert_eq!(log.decision(2), None, "torn decision dropped cleanly");
        assert_eq!(log.max_txn_id(), 1);
    }

    #[test]
    fn later_decision_wins_and_ids_advance() {
        let path = tmp("ids");
        let mut log = TxnDecisionLog::open(&path).unwrap();
        log.decide(9, false).unwrap();
        log.decide(9, true).unwrap();
        assert_eq!(log.decision(9), Some(true));
        assert_eq!(log.max_txn_id(), 9);
        assert_eq!(log.records_appended(), 2);
    }
}
