//! Incremental WAL reading for replication.
//!
//! A [`WalTailer`] follows a live WAL file from a byte offset, returning
//! complete, CRC-valid frames as raw bytes (header included) so the leader
//! can ship them verbatim and the follower can re-verify the CRC end to
//! end. It never reads past the caller-supplied committed-LSN watermark
//! (see [`crate::wal::WalShared`]): a frame the writer has appended but not
//! yet acknowledged — or is about to roll back after a failed fsync — stays
//! invisible, and the tailer's offset stays parked at the last shipped
//! frame boundary so a rollback + rewrite at the same offset is re-read
//! cleanly.
//!
//! Checkpoint truncation makes a byte offset stale: the file is cut back to
//! its magic and regrows with *different* frames. The tailer detects the
//! easy case itself (file shorter than the offset) and reports
//! [`TailPoll::Truncated`]; the racy case (file already regrown past the
//! offset) is the feeder's job — it watches `WalShared::truncations` and
//! calls [`WalTailer::reset`] whenever the counter moves.

use crate::crc32::crc32;
use crate::error::{Result, StoreError};
use crate::wal::{MAX_RECORD, WAL_MAGIC};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// One complete WAL frame, byte-identical to its on-disk form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailFrame {
    /// The frame's LSN (decoded from the payload head).
    pub lsn: u64,
    /// The full frame: `len:u32 crc:u32 payload` — ready to ship.
    pub bytes: Vec<u8>,
}

/// What one [`WalTailer::poll`] observed.
#[derive(Debug)]
pub enum TailPoll {
    /// Zero or more new committed frames past the previous offset.
    Frames(Vec<TailFrame>),
    /// The file shrank below the tail offset (checkpoint truncation): the
    /// offset was reset to the start; the caller must re-decide between
    /// snapshot bootstrap and tailing before polling again.
    Truncated,
}

/// A cursor over a live WAL file. See the module docs for the safety
/// contract shared with [`crate::wal::WalWriter`].
///
/// The file handle is cached across polls — checkpoints truncate with
/// `set_len` on the same inode, so growth and shrinkage both stay visible
/// through a held descriptor, and a steady-state poll costs a `fstat`
/// instead of a path lookup. Any reset or read error drops the cache and
/// the next poll reopens from the path.
#[derive(Debug)]
pub struct WalTailer {
    path: PathBuf,
    pos: u64,
    magic_checked: bool,
    file: Option<File>,
}

impl WalTailer {
    /// Tail the WAL at `path` from the first frame.
    pub fn open(path: impl Into<PathBuf>) -> WalTailer {
        WalTailer {
            path: path.into(),
            pos: WAL_MAGIC.len() as u64,
            magic_checked: false,
            file: None,
        }
    }

    /// The WAL file being tailed.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current byte offset (next unread position).
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Forget all progress and start over from the first frame. Called by
    /// the feeder when `WalShared::truncations` moves.
    pub fn reset(&mut self) {
        self.pos = WAL_MAGIC.len() as u64;
        self.magic_checked = false;
        self.file = None;
    }

    /// Read every complete, CRC-valid frame between the current offset and
    /// the end of file whose LSN is `<= committed_lsn`. Stops (without
    /// advancing) at the first incomplete, corrupt, or uncommitted frame —
    /// all three look identical to an append still in flight and resolve on
    /// a later poll. A missing file reads as empty.
    pub fn poll(&mut self, committed_lsn: u64) -> Result<TailPoll> {
        if self.file.is_none() {
            self.file = match File::open(&self.path) {
                Ok(f) => Some(f),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    return Ok(TailPoll::Frames(Vec::new()))
                }
                Err(e) => return Err(e.into()),
            };
        }
        let result = self.poll_cached(committed_lsn);
        if result.is_err() {
            // A failed descriptor (or a half-read magic) is not worth
            // salvaging: reopen from the path on the next poll.
            self.file = None;
            self.magic_checked = false;
        }
        result
    }

    fn poll_cached(&mut self, committed_lsn: u64) -> Result<TailPoll> {
        let file = self.file.as_mut().expect("opened above");
        let len = file.metadata()?.len();
        if len < self.pos {
            self.reset();
            return Ok(TailPoll::Truncated);
        }
        if !self.magic_checked {
            if len < WAL_MAGIC.len() as u64 {
                return Ok(TailPoll::Frames(Vec::new()));
            }
            file.seek(SeekFrom::Start(0))?;
            let mut magic = [0u8; 8];
            file.read_exact(&mut magic)?;
            if &magic != WAL_MAGIC {
                return Err(StoreError::corrupt(format!(
                    "{} is not a WAL file (bad magic)",
                    self.path.display()
                )));
            }
            self.magic_checked = true;
        }
        if len == self.pos {
            return Ok(TailPoll::Frames(Vec::new()));
        }
        file.seek(SeekFrom::Start(self.pos))?;
        let mut data = Vec::with_capacity((len - self.pos) as usize);
        file.read_to_end(&mut data)?;
        let mut frames = Vec::new();
        let mut p = 0usize;
        while data.len() - p >= 8 {
            let flen = u32::from_le_bytes(data[p..p + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(data[p + 4..p + 8].try_into().expect("4 bytes"));
            if flen > MAX_RECORD || data.len() - p - 8 < flen {
                break; // garbage length or frame still being written
            }
            let payload = &data[p + 8..p + 8 + flen];
            if crc32(payload) != crc || flen < 9 {
                break; // mid-write bytes; resolves (or truncates) later
            }
            let lsn = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
            if lsn > committed_lsn {
                break; // appended but not yet acknowledged: not shippable
            }
            frames.push(TailFrame {
                lsn,
                bytes: data[p..p + 8 + flen].to_vec(),
            });
            p += 8 + flen;
        }
        self.pos += p as u64;
        Ok(TailPoll::Frames(frames))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{decode_frame, WalRecord, WalWriter};
    use crate::FsyncPolicy;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eltail-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn drop_rec(name: &str) -> WalRecord {
        WalRecord::DropTable { name: name.into() }
    }

    #[test]
    fn tails_only_committed_frames() {
        let path = tmp("committed");
        let mut w = WalWriter::open(&path, FsyncPolicy::Off, 0, 1).unwrap();
        let shared = w.shared();
        let mut t = WalTailer::open(&path);
        for name in ["a", "b", "c"] {
            w.append(&drop_rec(name)).unwrap();
        }
        // Pretend only the first two are acknowledged.
        let TailPoll::Frames(frames) = t.poll(2).unwrap() else {
            panic!("unexpected truncation");
        };
        assert_eq!(frames.iter().map(|f| f.lsn).collect::<Vec<_>>(), [1, 2]);
        // The third arrives once the watermark covers it.
        let TailPoll::Frames(frames) = t.poll(shared.committed_lsn()).unwrap() else {
            panic!("unexpected truncation");
        };
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].lsn, 3);
        let (lsn, rec) = decode_frame(&frames[0].bytes).unwrap();
        assert_eq!(lsn, 3);
        assert_eq!(rec, drop_rec("c"));
        // Nothing new: empty poll.
        let TailPoll::Frames(frames) = t.poll(shared.committed_lsn()).unwrap() else {
            panic!("unexpected truncation");
        };
        assert!(frames.is_empty());
    }

    #[test]
    fn detects_file_shrink_as_truncation() {
        let path = tmp("shrink");
        let mut w = WalWriter::open(&path, FsyncPolicy::Off, 0, 1).unwrap();
        for name in ["a", "b"] {
            w.append(&drop_rec(name)).unwrap();
        }
        let mut t = WalTailer::open(&path);
        let TailPoll::Frames(frames) = t.poll(2).unwrap() else {
            panic!("unexpected truncation");
        };
        assert_eq!(frames.len(), 2);
        w.truncate().unwrap();
        assert!(matches!(t.poll(2).unwrap(), TailPoll::Truncated));
        // After the reset the (empty) file reads cleanly again.
        w.append(&drop_rec("c")).unwrap();
        let TailPoll::Frames(frames) = t.poll(3).unwrap() else {
            panic!("unexpected truncation");
        };
        assert_eq!(frames.iter().map(|f| f.lsn).collect::<Vec<_>>(), [3]);
    }

    #[test]
    fn stops_at_torn_tail_without_advancing() {
        let path = tmp("torn");
        let mut w = WalWriter::open(&path, FsyncPolicy::Off, 0, 1).unwrap();
        w.append(&drop_rec("a")).unwrap();
        w.append(&drop_rec("b")).unwrap();
        drop(w);
        let full = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 3).unwrap();
        drop(f);
        let mut t = WalTailer::open(&path);
        let TailPoll::Frames(frames) = t.poll(u64::MAX).unwrap() else {
            panic!("unexpected truncation");
        };
        assert_eq!(frames.len(), 1, "torn second frame withheld");
        let pos = t.pos();
        let TailPoll::Frames(frames) = t.poll(u64::MAX).unwrap() else {
            panic!("unexpected truncation");
        };
        assert!(frames.is_empty());
        assert_eq!(t.pos(), pos, "offset parked at last valid boundary");
        // Writer reopens at the valid boundary and completes the append:
        // the tailer resumes from the very same offset.
        let mut w = WalWriter::open(&path, FsyncPolicy::Off, pos, 2).unwrap();
        w.append(&drop_rec("b2")).unwrap();
        let TailPoll::Frames(frames) = t.poll(u64::MAX).unwrap() else {
            panic!("unexpected truncation");
        };
        assert_eq!(frames.iter().map(|f| f.lsn).collect::<Vec<_>>(), [2]);
    }

    #[test]
    fn missing_file_reads_empty() {
        let mut t = WalTailer::open(tmp("missing"));
        assert!(matches!(t.poll(10).unwrap(), TailPoll::Frames(f) if f.is_empty()));
    }

    #[test]
    fn non_wal_file_is_an_error() {
        let path = tmp("notwal");
        std::fs::write(&path, b"clearly not a wal file").unwrap();
        let mut t = WalTailer::open(&path);
        assert!(t.poll(10).is_err());
    }
}
