#![warn(missing_docs)]
//! Durable storage for the Blue Elephants engine: write-ahead log,
//! columnar snapshots, and crash recovery.
//!
//! The paper evaluates its transpiled pipelines on a disk-based DBMS
//! (PostgreSQL) and an in-memory one (Umbra); the reproduction's engine was
//! purely volatile until this crate. `elephant-store` gives the engine the
//! disk-based half: every acknowledged mutation is logged before it is
//! acknowledged, `CHECKPOINT` folds the log into a compact columnar
//! snapshot, and [`Store::open`] recovers *snapshot + log replay* into the
//! exact pre-crash state — including ctid (row position) assignment, which
//! the paper's inspection joins depend on.
//!
//! The crate is engine-agnostic: it deals in [`TableImage`]s (schema +
//! rows + serial counters) and [`WalRecord`]s, and knows nothing about SQL.
//! `sqlengine` bridges its catalog to these types through a
//! `StorageBackend` trait.
//!
//! ```
//! use elephant_store::{FsyncPolicy, Store, StoreConfig, WalRecord};
//! use etypes::{DataType, Value};
//!
//! let dir = std::env::temp_dir().join(format!("elephant-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let cfg = StoreConfig::new(&dir).with_fsync(FsyncPolicy::Off);
//!
//! // First life: log a table and some rows.
//! let (mut store, tables, _) = Store::open(cfg.clone()).unwrap();
//! assert!(tables.is_empty());
//! store.log(&WalRecord::CreateTable {
//!     name: "t".into(),
//!     columns: vec!["a".into()],
//!     types: vec![DataType::Int],
//! }).unwrap();
//! store.log(&WalRecord::Insert {
//!     table: "t".into(),
//!     rows: vec![vec![Value::Int(7)]],
//! }).unwrap();
//! drop(store);
//!
//! // Second life: recovery replays the log.
//! let (_store, tables, report) = Store::open(cfg).unwrap();
//! assert_eq!(tables[0].rows, vec![vec![Value::Int(7)]]);
//! assert_eq!(report.wal_records_applied, 2);
//! ```

pub mod crc32;
pub mod error;
pub mod snapshot;
pub mod tailer;
pub mod txnlog;
pub mod wal;

pub use error::{Result, StoreError};
pub use tailer::{TailFrame, TailPoll, WalTailer};
pub use txnlog::{TxnDecisionLog, TXN_LOG_FILE};
pub use wal::{decode_frame, encode_frame, WalRecord, WalShared, WalStats};

use etypes::{DataType, Value};
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::Arc;
use wal::WalWriter;

/// When the WAL forces written records to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended record: an acknowledged write survives
    /// even an OS crash (the PostgreSQL `synchronous_commit = on` shape).
    Always,
    /// `fsync` after every N records: bounded loss window, amortized cost.
    EveryN(u64),
    /// Never `fsync` explicitly (clean close still flushes): survives
    /// process kills but not machine crashes.
    Off,
}

impl FromStr for FsyncPolicy {
    type Err = String;

    /// Parse `always`, `off`, or `every_n:N` (also accepts a bare integer
    /// as shorthand for `every_n:N`).
    fn from_str(s: &str) -> std::result::Result<FsyncPolicy, String> {
        let s = s.trim();
        match s.to_ascii_lowercase().as_str() {
            "always" => return Ok(FsyncPolicy::Always),
            "off" | "never" => return Ok(FsyncPolicy::Off),
            _ => {}
        }
        let n_text = s
            .strip_prefix("every_n:")
            .or_else(|| s.strip_prefix("every_n="))
            .unwrap_or(s);
        match n_text.parse::<u64>() {
            Ok(n) if n > 0 => Ok(FsyncPolicy::EveryN(n)),
            _ => Err(format!(
                "bad fsync policy '{s}' (expected always, off, or every_n:N)"
            )),
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::EveryN(n) => write!(f, "every_n:{n}"),
            FsyncPolicy::Off => write!(f, "off"),
        }
    }
}

/// Store construction parameters.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Data directory (created if absent); holds `wal.log` + `snapshot.es`.
    pub dir: PathBuf,
    /// WAL durability policy.
    pub fsync: FsyncPolicy,
    /// Coordinator verdicts (`txn_id -> commit?`) used to resolve in-doubt
    /// prepared groups found at recovery. A prepared group with no entry is
    /// presumed aborted.
    pub txn_decisions: HashMap<u64, bool>,
}

impl StoreConfig {
    /// Config with the default [`FsyncPolicy::Always`].
    pub fn new(dir: impl Into<PathBuf>) -> StoreConfig {
        StoreConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            txn_decisions: HashMap::new(),
        }
    }

    /// Override the fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> StoreConfig {
        self.fsync = fsync;
        self
    }

    /// Supply the coordinator's decision map for in-doubt resolution.
    pub fn with_txn_decisions(mut self, decisions: HashMap<u64, bool>) -> StoreConfig {
        self.txn_decisions = decisions;
        self
    }
}

/// A full image of one base table: what snapshots store and recovery
/// returns. Row order is ctid order.
#[derive(Debug, Clone, PartialEq)]
pub struct TableImage {
    /// Table name.
    pub name: String,
    /// Column names in order.
    pub columns: Vec<String>,
    /// Column types in order.
    pub types: Vec<DataType>,
    /// Next value per serial column `(column index, next value)`.
    pub serial_next: Vec<(usize, i64)>,
    /// Row-major tuples; position is the ctid.
    pub rows: Vec<Vec<Value>>,
}

impl TableImage {
    /// An empty image with the given schema (serial counters start at 1).
    pub fn empty(
        name: impl Into<String>,
        columns: Vec<String>,
        types: Vec<DataType>,
    ) -> TableImage {
        let serial_next = types
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == DataType::Serial)
            .map(|(i, _)| (i, 1i64))
            .collect();
        TableImage {
            name: name.into(),
            columns,
            types,
            serial_next,
            rows: Vec::new(),
        }
    }

    /// Append already-materialized rows, advancing serial counters past any
    /// serial values they carry (replay must leave the counters exactly
    /// where the original engine did).
    fn restore_rows(&mut self, rows: Vec<Vec<Value>>) {
        for row in &rows {
            for (idx, next) in &mut self.serial_next {
                if let Some(Value::Int(v)) = row.get(*idx) {
                    *next = (*next).max(v + 1);
                }
            }
        }
        self.rows.extend(rows);
    }
}

/// What recovery found and did; rendered into server `STATS` and startup
/// logs so operators can see exactly what a restart recovered or dropped.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// True when a valid snapshot was loaded.
    pub snapshot_loaded: bool,
    /// Tables restored from the snapshot.
    pub snapshot_tables: usize,
    /// Rows restored from the snapshot.
    pub snapshot_rows: u64,
    /// WAL LSN the snapshot covered (replay starts after it).
    pub snapshot_lsn: u64,
    /// WAL records applied on top of the snapshot.
    pub wal_records_applied: u64,
    /// WAL records skipped because the snapshot already contained them.
    pub wal_records_skipped: u64,
    /// Bytes dropped from the WAL tail (torn write at crash time).
    pub wal_torn_bytes: u64,
    /// True when the tail was dropped because a record failed its CRC.
    pub wal_crc_mismatch: bool,
    /// Prepared 2PC groups applied because a `TxnCommit` marker followed.
    pub txn_committed: u64,
    /// Prepared 2PC groups discarded because a `TxnAbort` marker followed.
    pub txn_aborted: u64,
    /// In-doubt prepared groups (no outcome marker by end-of-log) applied
    /// because the coordinator's decision log said commit.
    pub txn_indoubt_committed: u64,
    /// In-doubt prepared groups aborted: no coordinator commit decision
    /// existed, so presumed-abort unwound them.
    pub txn_indoubt_aborted: u64,
    /// Human-readable notes about anything unusual (invalid snapshot
    /// dropped, replay of a record that no longer applied, ...).
    pub notes: Vec<String>,
}

impl RecoveryReport {
    /// One-line summary for startup logging.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "recovered {} table(s) / {} row(s) from snapshot, applied {} WAL record(s)",
            self.snapshot_tables, self.snapshot_rows, self.wal_records_applied
        );
        if self.wal_torn_bytes > 0 {
            s.push_str(&format!(
                ", dropped {} torn byte(s){}",
                self.wal_torn_bytes,
                if self.wal_crc_mismatch {
                    " (CRC mismatch)"
                } else {
                    ""
                }
            ));
        }
        if self.txn_committed + self.txn_aborted > 0 {
            s.push_str(&format!(
                ", replayed {} committed / {} aborted txn group(s)",
                self.txn_committed, self.txn_aborted
            ));
        }
        if self.txn_indoubt_committed + self.txn_indoubt_aborted > 0 {
            s.push_str(&format!(
                ", resolved in-doubt txns: {} committed, {} aborted",
                self.txn_indoubt_committed, self.txn_indoubt_aborted
            ));
        }
        for note in &self.notes {
            s.push_str("; ");
            s.push_str(note);
        }
        s
    }
}

/// What a checkpoint wrote and truncated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Tables captured in the snapshot.
    pub tables: usize,
    /// Rows captured.
    pub rows: u64,
    /// Snapshot size in bytes.
    pub snapshot_bytes: u64,
    /// WAL bytes truncated away.
    pub wal_bytes_truncated: u64,
}

/// Aggregate store counters (monotonic since open).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// WAL writer counters.
    pub wal: WalStats,
    /// Checkpoints completed since open.
    pub checkpoints: u64,
}

/// A durable store: an open WAL plus the snapshot location.
///
/// [`Store::open`] performs recovery and hands back the recovered
/// [`TableImage`]s; the caller (the engine) owns the live data from then on
/// and calls [`Store::log`] on every mutation and [`Store::checkpoint`]
/// to compact.
#[derive(Debug)]
pub struct Store {
    wal: WalWriter,
    snapshot_path: PathBuf,
    checkpoints: u64,
}

/// WAL file name inside the data directory.
pub const WAL_FILE: &str = "wal.log";
/// Snapshot file name inside the data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.es";

impl Store {
    /// Open (creating if needed) the store in `config.dir` and recover:
    /// load the snapshot if present and valid, then replay the WAL past it,
    /// tolerating a torn tail. Returns the store, the recovered tables (in
    /// a deterministic order), and a [`RecoveryReport`].
    pub fn open(config: StoreConfig) -> Result<(Store, Vec<TableImage>, RecoveryReport)> {
        fs::create_dir_all(&config.dir)?;
        let snapshot_path = config.dir.join(SNAPSHOT_FILE);
        let wal_path = config.dir.join(WAL_FILE);

        let mut report = RecoveryReport::default();
        let mut tables: Vec<TableImage> = Vec::new();
        match snapshot::load_snapshot(&snapshot_path) {
            Ok(Some((lsn, images))) => {
                report.snapshot_loaded = true;
                report.snapshot_lsn = lsn;
                report.snapshot_tables = images.len();
                report.snapshot_rows = images.iter().map(|t| t.rows.len() as u64).sum();
                tables = images;
            }
            Ok(None) => {}
            Err(e) => {
                // A corrupt snapshot is dropped (renamed aside, so evidence
                // survives) and recovery continues from the WAL alone.
                let aside = snapshot_path.with_extension("corrupt");
                let _ = fs::rename(&snapshot_path, &aside);
                report
                    .notes
                    .push(format!("snapshot invalid and set aside: {e}"));
            }
        }

        let wal_out = wal::read_wal(&wal_path)?;
        report.wal_torn_bytes = wal_out.torn_bytes;
        report.wal_crc_mismatch = wal_out.crc_mismatch;
        let mut max_lsn = report.snapshot_lsn;
        // Prepared-but-undecided 2PC groups, in prepare order. A group is
        // buffered here (never applied directly) until its outcome marker
        // arrives; whatever is left at end-of-log is in-doubt.
        let mut prepared: Vec<(u64, Vec<WalRecord>)> = Vec::new();
        let apply_counted = |tables: &mut Vec<TableImage>,
                             report: &mut RecoveryReport,
                             lsn: u64,
                             record: WalRecord| {
            match apply(tables, record) {
                Ok(()) => report.wal_records_applied += 1,
                Err(e) => report
                    .notes
                    .push(format!("WAL record lsn={lsn} not applied: {e}")),
            }
        };
        for (lsn, record) in wal_out.records {
            max_lsn = max_lsn.max(lsn);
            if lsn <= report.snapshot_lsn {
                report.wal_records_skipped += 1;
                continue;
            }
            match record {
                WalRecord::TxnPrepare { txn_id, records } => {
                    prepared.push((txn_id, records));
                }
                WalRecord::TxnCommit { txn_id } => {
                    match prepared.iter().position(|(id, _)| *id == txn_id) {
                        Some(pos) => {
                            let (_, records) = prepared.remove(pos);
                            report.txn_committed += 1;
                            for rec in records {
                                apply_counted(&mut tables, &mut report, lsn, rec);
                            }
                        }
                        None => report.notes.push(format!(
                            "TxnCommit lsn={lsn} for unprepared txn {txn_id} ignored"
                        )),
                    }
                }
                WalRecord::TxnAbort { txn_id } => {
                    match prepared.iter().position(|(id, _)| *id == txn_id) {
                        Some(pos) => {
                            prepared.remove(pos);
                            report.txn_aborted += 1;
                        }
                        None => report.notes.push(format!(
                            "TxnAbort lsn={lsn} for unprepared txn {txn_id} ignored"
                        )),
                    }
                }
                WalRecord::TxnDecision { txn_id, .. } => {
                    // Decision records belong in the coordinator log, not a
                    // shard WAL; tolerate but flag them.
                    report.notes.push(format!(
                        "coordinator decision for txn {txn_id} found in data WAL, ignored"
                    ));
                }
                other => apply_counted(&mut tables, &mut report, lsn, other),
            }
        }

        let mut wal = WalWriter::open(&wal_path, config.fsync, wal_out.valid_len, max_lsn + 1)?;
        // Resolve in-doubt groups from the coordinator's verdicts, logging
        // the outcome marker so the next recovery needs no decision map.
        // Presumed-abort: no commit decision means the coordinator never
        // acked this transaction, so unwinding it cannot lose an ack.
        for (txn_id, records) in prepared {
            etypes::fault::fire("txn.resolve")?;
            let commit = config.txn_decisions.get(&txn_id).copied().unwrap_or(false);
            if commit {
                let lsn = wal.append(&WalRecord::TxnCommit { txn_id })?;
                report.txn_indoubt_committed += 1;
                for rec in records {
                    apply_counted(&mut tables, &mut report, lsn, rec);
                }
                report.notes.push(format!(
                    "in-doubt txn {txn_id} committed per coordinator decision"
                ));
            } else {
                wal.append(&WalRecord::TxnAbort { txn_id })?;
                report.txn_indoubt_aborted += 1;
                report
                    .notes
                    .push(format!("in-doubt txn {txn_id} aborted (presumed abort)"));
            }
        }
        Ok((
            Store {
                wal,
                snapshot_path,
                checkpoints: 0,
            },
            tables,
            report,
        ))
    }

    /// Append one record to the WAL; durability per the configured policy.
    pub fn log(&mut self, record: &WalRecord) -> Result<u64> {
        self.wal.append(record)
    }

    /// Durably stage this shard's slice of a cross-shard transaction:
    /// append the `PREPARE` frame and force it to disk *regardless of
    /// fsync policy* — once this returns Ok, the coordinator may commit,
    /// so the prepare must survive any crash. Refused inside an open
    /// group-commit window, whose whole-batch rollback could otherwise cut
    /// an acked prepare back out of the log.
    pub fn log_txn_prepare(&mut self, txn_id: u64, records: Vec<WalRecord>) -> Result<u64> {
        if self.wal.in_group() {
            return Err(StoreError::invalid(
                "2PC prepare inside an open group-commit window",
            ));
        }
        etypes::fault::fire("txn.prepare_append")?;
        let lsn = self
            .wal
            .append(&WalRecord::TxnPrepare { txn_id, records })?;
        etypes::fault::fire("txn.prepare_fsync")?;
        self.wal.sync()?;
        Ok(lsn)
    }

    /// Append + fsync the `COMMIT` outcome marker for a prepared
    /// transaction. Failure here leaves the group in-doubt on disk; the
    /// coordinator's decision log resolves it at the next recovery.
    pub fn log_txn_commit(&mut self, txn_id: u64) -> Result<u64> {
        if self.wal.in_group() {
            return Err(StoreError::invalid(
                "2PC outcome marker inside an open group-commit window",
            ));
        }
        etypes::fault::fire("txn.commit_append")?;
        let lsn = self.wal.append(&WalRecord::TxnCommit { txn_id })?;
        self.wal.sync()?;
        Ok(lsn)
    }

    /// Append + fsync the `ABORT` outcome marker for a prepared
    /// transaction. Safe to fail: presumed-abort makes an in-doubt group
    /// with no commit decision abort at recovery anyway.
    pub fn log_txn_abort(&mut self, txn_id: u64) -> Result<u64> {
        if self.wal.in_group() {
            return Err(StoreError::invalid(
                "2PC outcome marker inside an open group-commit window",
            ));
        }
        etypes::fault::fire("txn.abort_append")?;
        let lsn = self.wal.append(&WalRecord::TxnAbort { txn_id })?;
        self.wal.sync()?;
        Ok(lsn)
    }

    /// Force the WAL to stable storage regardless of policy.
    pub fn sync(&mut self) -> Result<()> {
        self.wal.sync()
    }

    /// Open a group-commit window: see [`WalWriter::begin_group`].
    pub fn begin_group(&mut self) {
        self.wal.begin_group()
    }

    /// Close the group-commit window with one fsync covering every record
    /// deferred inside it; returns how many records that fsync
    /// acknowledged. See [`WalWriter::end_group`].
    pub fn end_group(&mut self) -> Result<u64> {
        self.wal.end_group()
    }

    /// Records deferred in the open group window (0 outside one).
    pub fn group_pending(&self) -> u64 {
        self.wal.group_pending()
    }

    /// Write a snapshot of `tables` and truncate the WAL. The snapshot
    /// covers every record logged so far; replay after this checkpoint
    /// starts from the snapshot alone.
    pub fn checkpoint(&mut self, tables: &[&TableImage]) -> Result<CheckpointStats> {
        // Everything logged so far must be on disk before the snapshot
        // claims to cover it.
        self.wal.sync()?;
        let last_lsn = self.wal.next_lsn() - 1;
        let snapshot_bytes = snapshot::write_snapshot(&self.snapshot_path, last_lsn, tables)?;
        let wal_bytes_truncated = self.wal.truncate()?;
        self.checkpoints += 1;
        Ok(CheckpointStats {
            tables: tables.len(),
            rows: tables.iter().map(|t| t.rows.len() as u64).sum(),
            snapshot_bytes,
            wal_bytes_truncated,
        })
    }

    /// Aggregate counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            wal: self.wal.stats(),
            checkpoints: self.checkpoints,
        }
    }

    /// The data directory's snapshot path (tests, tooling).
    pub fn snapshot_path(&self) -> &Path {
        &self.snapshot_path
    }

    /// The WAL path (tests, tooling).
    pub fn wal_path(&self) -> &Path {
        self.wal.path()
    }

    /// A cheap, cloneable, thread-safe handle onto this store's
    /// replication surface: where the WAL and snapshot live on disk plus
    /// the writer's shared progress watermark. The replication feeder runs
    /// off this handle alone, so it never touches (and never blocks) the
    /// engine thread that owns the `Store`.
    pub fn wal_handle(&self) -> WalHandle {
        WalHandle {
            wal_path: self.wal.path().to_path_buf(),
            snapshot_path: self.snapshot_path.clone(),
            shared: self.wal.shared(),
        }
    }
}

/// See [`Store::wal_handle`].
#[derive(Debug, Clone)]
pub struct WalHandle {
    wal_path: PathBuf,
    snapshot_path: PathBuf,
    shared: Arc<WalShared>,
}

impl WalHandle {
    /// The live WAL file.
    pub fn wal_path(&self) -> &Path {
        &self.wal_path
    }

    /// The latest snapshot location (may not exist yet).
    pub fn snapshot_path(&self) -> &Path {
        &self.snapshot_path
    }

    /// Highest acknowledged LSN — frames at or below this are shippable.
    pub fn committed_lsn(&self) -> u64 {
        self.shared.committed_lsn()
    }

    /// Checkpoint truncations since the store opened; a moving counter
    /// means tail offsets are stale.
    pub fn truncations(&self) -> u64 {
        self.shared.truncations()
    }

    /// A fresh tailer over this store's WAL.
    pub fn tailer(&self) -> WalTailer {
        WalTailer::open(&self.wal_path)
    }
}

/// Apply one WAL record to a set of table images (replay).
fn apply(tables: &mut Vec<TableImage>, record: WalRecord) -> Result<()> {
    fn find<'a>(tables: &'a mut [TableImage], name: &str) -> Result<&'a mut TableImage> {
        tables
            .iter_mut()
            .find(|t| t.name == name)
            .ok_or_else(|| StoreError::invalid(format!("unknown table '{name}'")))
    }
    match record {
        WalRecord::CreateTable {
            name,
            columns,
            types,
        } => {
            if tables.iter().any(|t| t.name == name) {
                return Err(StoreError::invalid(format!(
                    "table '{name}' already exists"
                )));
            }
            tables.push(TableImage::empty(name, columns, types));
        }
        WalRecord::DropTable { name } => {
            let before = tables.len();
            tables.retain(|t| t.name != name);
            if tables.len() == before {
                return Err(StoreError::invalid(format!("unknown table '{name}'")));
            }
        }
        WalRecord::Insert { table, rows } => {
            let t = find(tables, &table)?;
            for row in &rows {
                if row.len() != t.columns.len() {
                    return Err(StoreError::invalid(format!(
                        "row arity {} vs table '{}' arity {}",
                        row.len(),
                        table,
                        t.columns.len()
                    )));
                }
            }
            t.restore_rows(rows);
        }
        WalRecord::Update { table, rows } => {
            let t = find(tables, &table)?;
            for (ctid, row) in rows {
                let slot = t.rows.get_mut(ctid as usize).ok_or_else(|| {
                    StoreError::invalid(format!("update of missing ctid {ctid} in '{table}'"))
                })?;
                *slot = row;
            }
        }
        WalRecord::Delete { table, ctids } => {
            let t = find(tables, &table)?;
            let mut ids: Vec<usize> = ctids.iter().map(|c| *c as usize).collect();
            ids.sort_unstable();
            ids.dedup();
            for id in ids.into_iter().rev() {
                if id >= t.rows.len() {
                    return Err(StoreError::invalid(format!(
                        "delete of missing ctid {id} in '{table}'"
                    )));
                }
                t.rows.remove(id);
            }
        }
        WalRecord::TxnPrepare { txn_id, .. }
        | WalRecord::TxnCommit { txn_id }
        | WalRecord::TxnAbort { txn_id }
        | WalRecord::TxnDecision { txn_id, .. } => {
            // Markers carry no table mutation themselves; replay handles
            // them before reaching here (buffer / apply group / discard).
            return Err(StoreError::invalid(format!(
                "transaction marker for txn {txn_id} is not directly applicable"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> StoreConfig {
        let dir = std::env::temp_dir().join(format!("elstore-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        StoreConfig::new(dir).with_fsync(FsyncPolicy::Off)
    }

    fn create_t() -> WalRecord {
        WalRecord::CreateTable {
            name: "t".into(),
            columns: vec!["id".into(), "v".into()],
            types: vec![DataType::Serial, DataType::Text],
        }
    }

    fn insert(rows: Vec<Vec<Value>>) -> WalRecord {
        WalRecord::Insert {
            table: "t".into(),
            rows,
        }
    }

    #[test]
    fn wal_only_recovery() {
        let cfg = tmp("walonly");
        {
            let (mut store, tables, _) = Store::open(cfg.clone()).unwrap();
            assert!(tables.is_empty());
            store.log(&create_t()).unwrap();
            store
                .log(&insert(vec![
                    vec![Value::Int(1), Value::text("a")],
                    vec![Value::Int(2), Value::text("b")],
                ]))
                .unwrap();
        }
        let (_s, tables, report) = Store::open(cfg).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 2);
        assert_eq!(tables[0].serial_next, vec![(0, 3)], "serials advanced");
        assert_eq!(report.wal_records_applied, 2);
        assert!(!report.snapshot_loaded);
    }

    #[test]
    fn checkpoint_then_wal_replay() {
        let cfg = tmp("ckpt");
        {
            let (mut store, _, _) = Store::open(cfg.clone()).unwrap();
            store.log(&create_t()).unwrap();
            store
                .log(&insert(vec![vec![Value::Int(1), Value::text("a")]]))
                .unwrap();
            // Checkpoint the current state, then log one more insert.
            let image = TableImage {
                name: "t".into(),
                columns: vec!["id".into(), "v".into()],
                types: vec![DataType::Serial, DataType::Text],
                serial_next: vec![(0, 2)],
                rows: vec![vec![Value::Int(1), Value::text("a")]],
            };
            let stats = store.checkpoint(&[&image]).unwrap();
            assert_eq!(stats.tables, 1);
            assert!(stats.wal_bytes_truncated > 0);
            store
                .log(&insert(vec![vec![Value::Int(2), Value::text("b")]]))
                .unwrap();
        }
        let (_s, tables, report) = Store::open(cfg).unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(report.snapshot_rows, 1);
        assert_eq!(report.wal_records_applied, 1);
        assert_eq!(report.wal_records_skipped, 0, "WAL truncated at checkpoint");
        assert_eq!(tables[0].rows.len(), 2);
        assert_eq!(tables[0].serial_next, vec![(0, 3)]);
    }

    #[test]
    fn update_and_delete_replay() {
        let cfg = tmp("updel");
        {
            let (mut store, _, _) = Store::open(cfg.clone()).unwrap();
            store.log(&create_t()).unwrap();
            store
                .log(&insert(vec![
                    vec![Value::Int(1), Value::text("a")],
                    vec![Value::Int(2), Value::text("b")],
                    vec![Value::Int(3), Value::text("c")],
                ]))
                .unwrap();
            store
                .log(&WalRecord::Update {
                    table: "t".into(),
                    rows: vec![(1, vec![Value::Int(2), Value::text("B")])],
                })
                .unwrap();
            store
                .log(&WalRecord::Delete {
                    table: "t".into(),
                    ctids: vec![0],
                })
                .unwrap();
        }
        let (_s, tables, _) = Store::open(cfg).unwrap();
        assert_eq!(
            tables[0].rows,
            vec![
                vec![Value::Int(2), Value::text("B")],
                vec![Value::Int(3), Value::text("c")],
            ]
        );
    }

    #[test]
    fn lsn_continuity_prevents_double_apply() {
        // Crash between snapshot rename and WAL truncation: the old WAL
        // records survive but their LSNs are covered by the snapshot, so
        // replay must skip them.
        let cfg = tmp("doubleapply");
        {
            let (mut store, _, _) = Store::open(cfg.clone()).unwrap();
            store.log(&create_t()).unwrap();
            store
                .log(&insert(vec![vec![Value::Int(1), Value::text("a")]]))
                .unwrap();
            let image = TableImage {
                name: "t".into(),
                columns: vec!["id".into(), "v".into()],
                types: vec![DataType::Serial, DataType::Text],
                serial_next: vec![(0, 2)],
                rows: vec![vec![Value::Int(1), Value::text("a")]],
            };
            // Simulate the crash: write the snapshot but skip truncation.
            snapshot::write_snapshot(store.snapshot_path(), 2, &[&image]).unwrap();
        }
        let (_s, tables, report) = Store::open(cfg).unwrap();
        assert_eq!(report.wal_records_skipped, 2);
        assert_eq!(report.wal_records_applied, 0);
        assert_eq!(tables[0].rows.len(), 1, "no double apply");
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(
            "always".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::Always
        );
        assert_eq!("off".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Off);
        assert_eq!(
            "every_n:16".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::EveryN(16)
        );
        assert_eq!("8".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::EveryN(8));
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
        assert!("every_n:0".parse::<FsyncPolicy>().is_err());
    }

    fn txn_group() -> Vec<WalRecord> {
        vec![
            create_t(),
            insert(vec![vec![Value::Int(1), Value::text("a")]]),
        ]
    }

    #[test]
    fn committed_txn_group_replays() {
        let cfg = tmp("txncommit");
        {
            let (mut store, _, _) = Store::open(cfg.clone()).unwrap();
            store.log_txn_prepare(1, txn_group()).unwrap();
            store.log_txn_commit(1).unwrap();
        }
        let (_s, tables, report) = Store::open(cfg).unwrap();
        assert_eq!(report.txn_committed, 1);
        assert_eq!(report.wal_records_applied, 2, "both nested records applied");
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 1);
        assert_eq!(tables[0].serial_next, vec![(0, 2)], "serials advanced");
    }

    #[test]
    fn aborted_txn_group_leaves_no_trace() {
        let cfg = tmp("txnabort");
        {
            let (mut store, _, _) = Store::open(cfg.clone()).unwrap();
            store.log_txn_prepare(1, txn_group()).unwrap();
            store.log_txn_abort(1).unwrap();
        }
        let (_s, tables, report) = Store::open(cfg).unwrap();
        assert_eq!(report.txn_aborted, 1);
        assert_eq!(report.wal_records_applied, 0);
        assert!(tables.is_empty());
    }

    #[test]
    fn in_doubt_group_presumed_aborted_without_decision() {
        let cfg = tmp("txnindoubt");
        {
            let (mut store, _, _) = Store::open(cfg.clone()).unwrap();
            store.log_txn_prepare(7, txn_group()).unwrap();
            // Crash before any outcome marker: the group is in-doubt.
        }
        let (_s, tables, report) = Store::open(cfg.clone()).unwrap();
        assert_eq!(report.txn_indoubt_aborted, 1);
        assert!(tables.is_empty(), "presumed abort leaves nothing");
        assert!(report.summary().contains("resolved in-doubt"));
        // Resolution logged an ABORT marker: the next recovery no longer
        // needs a decision map and sees a plain aborted group.
        let (_s, tables, report) = Store::open(cfg).unwrap();
        assert_eq!(report.txn_aborted, 1);
        assert_eq!(report.txn_indoubt_aborted, 0);
        assert!(tables.is_empty());
    }

    #[test]
    fn in_doubt_group_commits_from_coordinator_decision() {
        let cfg = tmp("txndecided");
        {
            let (mut store, _, _) = Store::open(cfg.clone()).unwrap();
            store.log_txn_prepare(7, txn_group()).unwrap();
        }
        let with_decision = cfg.clone().with_txn_decisions(HashMap::from([(7, true)]));
        let (_s, tables, report) = Store::open(with_decision).unwrap();
        assert_eq!(report.txn_indoubt_committed, 1);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 1);
        // The COMMIT marker was persisted: a later recovery *without* the
        // decision map still replays the group as committed.
        let (_s, tables, report) = Store::open(cfg).unwrap();
        assert_eq!(report.txn_committed, 1);
        assert_eq!(report.txn_indoubt_committed, 0);
        assert_eq!(tables[0].rows.len(), 1);
    }

    #[test]
    fn txn_appends_refused_inside_group_window() {
        let cfg = tmp("txngroupwin");
        let (mut store, _, _) = Store::open(cfg).unwrap();
        store.begin_group();
        assert!(store.log_txn_prepare(1, txn_group()).is_err());
        assert!(store.log_txn_commit(1).is_err());
        assert!(store.log_txn_abort(1).is_err());
        store.end_group().unwrap();
        store.log_txn_prepare(1, txn_group()).unwrap();
        store.log_txn_commit(1).unwrap();
    }

    #[test]
    fn replay_notes_inapplicable_records() {
        let cfg = tmp("notes");
        {
            let (mut store, _, _) = Store::open(cfg.clone()).unwrap();
            // Insert into a table the log never created.
            store
                .log(&WalRecord::Insert {
                    table: "ghost".into(),
                    rows: vec![vec![Value::Int(1)]],
                })
                .unwrap();
        }
        let (_s, tables, report) = Store::open(cfg).unwrap();
        assert!(tables.is_empty());
        assert_eq!(report.wal_records_applied, 0);
        assert_eq!(report.notes.len(), 1);
        assert!(report.summary().contains("not applied"));
    }
}
