//! CRC-32 (IEEE 802.3 polynomial, the zlib/`crc32` flavour).
//!
//! The workspace builds fully offline, so the checksum is hand-rolled: a
//! compile-time 256-entry table and the standard reflected algorithm. The
//! test vectors below pin the output to the canonical polynomial so WAL and
//! snapshot files stay readable across builds.

/// Reflected polynomial for CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `data` (single-shot).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Canonical check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"the quick brown fox".to_vec();
        let clean = crc32(&data);
        data[3] ^= 0x40;
        assert_ne!(crc32(&data), clean);
    }
}
