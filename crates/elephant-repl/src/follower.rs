//! The follower side: connect, bootstrap, apply, ack — forever.
//!
//! The loop owns no engine. Every state change goes through an `apply`
//! callback as a [`ReplOp`]; the serving layer routes ops onto whatever
//! thread owns the engine (in `elephant-server`, the executor's job
//! queue). The callback returning `Err` means the local state diverged
//! from the leader's log — the loop responds by zeroing its applied LSN
//! and reconnecting, which forces a full snapshot re-bootstrap: shipped
//! state is always reconstructible, so self-healing beats limping.
//!
//! Every shipped byte is re-verified here: snapshot bytes run through the
//! store's checksummed decoder, frames through [`elephant_store::decode_frame`]
//! (length + CRC + payload decode). A corrupt message is *never* applied —
//! the loop drops the connection and re-syncs from the leader instead.

use crate::state::FollowerStatus;
use crate::ReplOp;
use elephant_store::decode_frame;
use elephant_store::snapshot::decode_snapshot;
use etypes::Prng;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::proto;

/// How a follower reaches (and keeps reaching) its leader.
#[derive(Debug, Clone)]
pub struct FollowerConfig {
    /// Leader replication address (`host:port`).
    pub leader_addr: String,
    /// Per-attempt TCP connect budget.
    pub connect_timeout: Duration,
    /// Seed for the reconnect backoff jitter (deterministic chaos runs).
    pub backoff_seed: u64,
}

impl FollowerConfig {
    /// Config with a 3 s connect timeout and a fixed default seed.
    pub fn new(leader_addr: impl Into<String>) -> FollowerConfig {
        FollowerConfig {
            leader_addr: leader_addr.into(),
            connect_timeout: Duration::from_secs(3),
            backoff_seed: 0x5eed,
        }
    }
}

const READ_TIMEOUT: Duration = Duration::from_millis(100);
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);
/// Ack batching: acks are observability (the leader's `min_acked_lsn`),
/// not correctness (resume uses the hello LSN) — so they flush every
/// [`ACK_EVERY_FRAMES`] applied frames or [`ACK_EVERY`], whichever comes
/// first, instead of once per frame. Keeps the steady-state hot path to
/// one ack write per batch rather than one per insert.
const ACK_EVERY_FRAMES: u64 = 64;
const ACK_EVERY: Duration = Duration::from_millis(50);
/// Backoff after a failed connect/session: full jitter over an exponential
/// base, capped — the retrying-client shape, scaled for a daemon loop.
const BACKOFF_BASE: Duration = Duration::from_millis(50);
const BACKOFF_CAP: Duration = Duration::from_secs(1);
/// Handshake patience: how long to wait for the leader's agreement magic.
const AGREEMENT_BUDGET: Duration = Duration::from_secs(5);

/// Connect like `TcpStream::connect`, but bound each address attempt by
/// `timeout` (a dead host otherwise blocks for the OS default, minutes).
pub fn connect_with_timeout(addr: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    let mut last_err = None;
    for sock in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&sock, timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("'{addr}' resolved to no addresses"),
        )
    }))
}

/// Run the follower loop on its own thread until `shutdown`. Progress is
/// published into `status`; every state change goes through `apply`.
pub fn spawn<F>(
    config: FollowerConfig,
    status: Arc<FollowerStatus>,
    shutdown: Arc<AtomicBool>,
    apply: F,
) -> JoinHandle<()>
where
    F: FnMut(ReplOp) -> Result<(), String> + Send + 'static,
{
    thread::Builder::new()
        .name("repl-follow".into())
        .spawn(move || run(config, status, shutdown, apply))
        .expect("spawn repl-follow thread")
}

fn run<F>(
    config: FollowerConfig,
    status: Arc<FollowerStatus>,
    shutdown: Arc<AtomicBool>,
    mut apply: F,
) where
    F: FnMut(ReplOp) -> Result<(), String>,
{
    let mut prng = Prng::new(config.backoff_seed);
    let mut failures: u32 = 0;
    let mut first_attempt = true;
    while !shutdown.load(Ordering::Acquire) {
        if !first_attempt {
            status.reconnects.fetch_add(1, Ordering::Relaxed);
            backoff(&mut prng, failures, &shutdown);
        }
        first_attempt = false;
        match session(&config, &status, &shutdown, &mut apply) {
            SessionEnd::Shutdown => break,
            SessionEnd::CleanStretch => failures = 0,
            SessionEnd::Failed => failures = failures.saturating_add(1),
        }
    }
    status.connected.store(false, Ordering::Release);
}

enum SessionEnd {
    /// The shutdown flag was observed.
    Shutdown,
    /// The session made progress before dropping: reset the backoff.
    CleanStretch,
    /// Connect or handshake failed outright: back off harder.
    Failed,
}

fn session<F>(
    config: &FollowerConfig,
    status: &FollowerStatus,
    shutdown: &AtomicBool,
    apply: &mut F,
) -> SessionEnd
where
    F: FnMut(ReplOp) -> Result<(), String>,
{
    let mut stream = match connect_with_timeout(&config.leader_addr, config.connect_timeout) {
        Ok(s) => s,
        Err(e) => {
            status.set_error(format!("connect {}: {e}", config.leader_addr));
            return SessionEnd::Failed;
        }
    };
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let _ = stream.set_nodelay(true);

    let mut applied = status.applied_lsn.load(Ordering::Acquire);
    if proto::write_hello(&mut stream, applied).is_err() {
        return SessionEnd::Failed;
    }
    let deadline = Instant::now() + AGREEMENT_BUDGET;
    loop {
        if shutdown.load(Ordering::Acquire) {
            return SessionEnd::Shutdown;
        }
        match proto::read_agreement(&mut stream) {
            Ok(true) => break,
            Ok(false) if Instant::now() < deadline => continue,
            Ok(false) => {
                status.set_error("leader handshake timed out");
                return SessionEnd::Failed;
            }
            Err(e) => {
                status.set_error(format!("leader handshake: {e}"));
                return SessionEnd::Failed;
            }
        }
    }
    status.connected.store(true, Ordering::Release);
    let mut progressed = false;
    let mut acked = applied;
    let mut last_ack = Instant::now();

    let end = loop {
        if shutdown.load(Ordering::Acquire) {
            break SessionEnd::Shutdown;
        }
        // Flush a pending batched ack on every idle beat and whenever the
        // batch thresholds trip (checked again after each apply below).
        if acked < applied
            && (applied - acked >= ACK_EVERY_FRAMES || last_ack.elapsed() >= ACK_EVERY)
        {
            if proto::write_ack(&mut stream, applied).is_err() {
                break end_of_stream(progressed);
            }
            acked = applied;
            last_ack = Instant::now();
        }
        let message = match proto::read_message(&mut stream) {
            Ok(Some(m)) => m,
            Ok(None) => continue,
            Err(e) => {
                status.set_error(format!("leader stream: {e}"));
                break end_of_stream(progressed);
            }
        };
        match message {
            proto::Message::Snapshot { lsn: _, bytes } => {
                // Authoritative LSN comes from the checksummed bytes, not
                // the envelope.
                let (snap_lsn, tables) = match decode_snapshot(&bytes) {
                    Ok(decoded) => decoded,
                    Err(e) => {
                        status.set_error(format!("corrupt snapshot rejected: {e}"));
                        break end_of_stream(progressed);
                    }
                };
                if let Err(e) = apply(ReplOp::Reset {
                    snapshot_lsn: snap_lsn,
                    tables,
                }) {
                    status.set_error(format!("snapshot apply: {e}"));
                    break end_of_stream(progressed);
                }
                applied = snap_lsn;
                status.applied_lsn.store(applied, Ordering::Release);
                status.leader_lsn.fetch_max(applied, Ordering::AcqRel);
                status
                    .bytes_received
                    .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                status.snapshots_loaded.fetch_add(1, Ordering::Relaxed);
                progressed = true;
                // A finished bootstrap is worth announcing immediately.
                if proto::write_ack(&mut stream, applied).is_err() {
                    break end_of_stream(progressed);
                }
                acked = applied;
                last_ack = Instant::now();
            }
            proto::Message::Frame { bytes } => {
                let (lsn, record) = match decode_frame(&bytes) {
                    Ok(decoded) => decoded,
                    Err(e) => {
                        status.set_error(format!("corrupt frame rejected: {e}"));
                        break end_of_stream(progressed);
                    }
                };
                if lsn <= applied {
                    // Duplicate after a reconnect race: refresh the ack.
                    if proto::write_ack(&mut stream, applied).is_ok() {
                        acked = applied;
                        last_ack = Instant::now();
                    }
                    continue;
                }
                if lsn != applied + 1 {
                    status.set_error(format!(
                        "feed hole: expected lsn {}, got {lsn}",
                        applied + 1
                    ));
                    break end_of_stream(progressed);
                }
                if let Err(e) = apply(ReplOp::Apply {
                    frames: vec![(lsn, record)],
                }) {
                    // Local state diverged from the leader's log: zero the
                    // applied LSN so the reconnect forces a snapshot
                    // re-bootstrap instead of limping on bad state.
                    status.set_error(format!("frame apply (lsn {lsn}): {e}"));
                    status.applied_lsn.store(0, Ordering::Release);
                    break end_of_stream(progressed);
                }
                applied = lsn;
                status.applied_lsn.store(applied, Ordering::Release);
                status.leader_lsn.fetch_max(applied, Ordering::AcqRel);
                status
                    .bytes_received
                    .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                progressed = true;
                // Ack rides the batch flush at the top of the loop.
            }
            proto::Message::Heartbeat { committed_lsn } => {
                status.leader_lsn.fetch_max(committed_lsn, Ordering::AcqRel);
            }
        }
    };
    status.connected.store(false, Ordering::Release);
    end
}

fn end_of_stream(progressed: bool) -> SessionEnd {
    if progressed {
        SessionEnd::CleanStretch
    } else {
        SessionEnd::Failed
    }
}

/// Seeded full-jitter exponential backoff, shutdown-aware.
fn backoff(prng: &mut Prng, failures: u32, shutdown: &AtomicBool) {
    let exp = BACKOFF_BASE
        .as_millis()
        .saturating_mul(1u128 << failures.min(8)) as u64;
    let cap = exp.min(BACKOFF_CAP.as_millis() as u64).max(1);
    let jittered = (prng.unit() * cap as f64) as u64;
    let mut remaining = Duration::from_millis(jittered.max(BACKOFF_BASE.as_millis() as u64 / 2));
    let beat = Duration::from_millis(20);
    while remaining > Duration::ZERO && !shutdown.load(Ordering::Acquire) {
        let step = remaining.min(beat);
        thread::sleep(step);
        remaining -= step;
    }
}
