#![warn(missing_docs)]
//! WAL-shipping replication for the Blue Elephants engine.
//!
//! The paper's inspection workloads (`INSPECT`, histogram reports, the
//! repeated SELECTs a pipeline audit fans out) are read-dominated — the
//! exact shape PostgreSQL deployments scale with streaming replicas. This
//! crate gives the reproduction that topology: one **leader** owns the
//! durable store and every write; N **followers** bootstrap from the
//! leader's columnar snapshot, then apply committed WAL frames in strict
//! LSN order into read-only engines, serving byte-identical query and
//! inspection results.
//!
//! The crate is deliberately engine-agnostic (like `elephant-store`
//! itself): the leader side works entirely off an
//! [`elephant_store::WalHandle`] — snapshot + WAL paths plus the writer's
//! committed-LSN watermark — and the follower side hands every state
//! change to an `apply` callback as a [`ReplOp`]. `elephant-server` wires
//! those to its executor thread; tests wire them to plain closures.
//!
//! ## Safety invariants
//!
//! * **Only committed frames ship.** The feeder never reads past the WAL
//!   writer's watermark, which advances only after an append fully
//!   succeeded — a frame rolled back by a failed fsync is invisible.
//! * **No holes.** LSNs are assigned sequentially, so the feeder and the
//!   follower both enforce `lsn == applied + 1`; anything else forces a
//!   snapshot re-bootstrap (checkpoints truncate the WAL, so history can
//!   legitimately vanish — the snapshot subsumes it).
//! * **End-to-end checksums.** Snapshots and frames ship verbatim in their
//!   on-disk formats and the follower re-verifies every CRC before
//!   applying; corruption is rejected and re-synced, never applied.
//! * **Self-healing.** Any divergence (apply error, desync, corrupt
//!   message) drops the connection and re-bootstraps; a follower restart
//!   re-handshakes with its last applied LSN and catches up from there.
//!
//! See `docs/REPLICATION.md` for the full topology and staleness
//! guarantees.

pub mod follower;
pub mod leader;
pub mod proto;
pub mod state;

pub use follower::{connect_with_timeout, FollowerConfig};
pub use leader::LeaderHandle;
pub use state::{FollowerStatus, FollowerView, LeaderRegistry};

use elephant_store::{TableImage, WalRecord};

/// One state change the follower loop asks its host to apply. Both
/// variants carry only `Send` data, so the host can move them onto
/// whatever thread owns the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplOp {
    /// Replace all local state with a snapshot (bootstrap / re-sync).
    Reset {
        /// The last LSN the snapshot covers; apply resumes after it.
        snapshot_lsn: u64,
        /// Every base table, rows in ctid order.
        tables: Vec<TableImage>,
    },
    /// Apply decoded WAL records in order.
    Apply {
        /// `(lsn, record)` pairs, contiguous and ascending.
        frames: Vec<(u64, WalRecord)>,
    },
}
