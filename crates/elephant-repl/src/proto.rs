//! The `ELREPL01` wire protocol.
//!
//! A follower connects to the leader's replication listener and the two
//! sides exchange fixed little-endian binary messages:
//!
//! ```text
//! follower → leader   hello     := magic "ELREPL01"  last_lsn:u64
//! leader   → follower agreement := magic "ELREPL01"
//! leader   → follower 'S' snapshot_lsn:u64 nbytes:u64 bytes   (bootstrap)
//! leader   → follower 'F' len:u32 frame[len]                  (one WAL frame)
//! leader   → follower 'H' committed_lsn:u64                   (heartbeat)
//! follower → leader   'A' acked_lsn:u64                       (applied ack)
//! ```
//!
//! Snapshot bytes are the leader's snapshot file verbatim (`ELSNP001`
//! format, per-table CRCs included); frame bytes are one on-disk WAL frame
//! verbatim (`len crc payload`). The follower re-verifies both checksums
//! before applying anything, so corruption anywhere along the path —
//! leader disk, socket, follower memory — is detected end to end, never
//! applied.
//!
//! Reads are timeout-aware: both loops poll with a socket read timeout so
//! shutdown flags are honored. A timeout on a message *boundary* (the tag
//! byte, or the hello magic) is reported as "no message yet"; a timeout
//! mid-message means the peer stalled and is treated as a broken
//! connection.

use std::io::{self, Read, Write};

/// Protocol magic, exchanged both ways during the handshake.
pub const REPL_MAGIC: &[u8; 8] = b"ELREPL01";

/// Sanity cap on a shipped snapshot (16 GiB): larger is a corrupt header.
pub const MAX_SNAPSHOT_BYTES: u64 = 16 << 30;

/// Sanity cap on one shipped frame: the WAL's own record cap plus header.
pub const MAX_FRAME_BYTES: u32 = (elephant_store::wal::MAX_RECORD as u32) + 16;

/// One leader → follower message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Full snapshot bootstrap: replace everything, then resume after `lsn`.
    Snapshot {
        /// The last LSN the snapshot covers.
        lsn: u64,
        /// The snapshot file, verbatim.
        bytes: Vec<u8>,
    },
    /// One committed WAL frame, verbatim.
    Frame {
        /// `len crc payload` bytes as written by the leader's WAL.
        bytes: Vec<u8>,
    },
    /// The leader's committed-LSN watermark (also keeps the stream live).
    Heartbeat {
        /// Highest LSN the leader has acknowledged.
        committed_lsn: u64,
    },
}

fn put_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn get_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// True for the error kinds a socket read timeout produces.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Follower side: open the conversation.
pub fn write_hello(w: &mut impl Write, last_lsn: u64) -> io::Result<()> {
    w.write_all(REPL_MAGIC)?;
    put_u64(w, last_lsn)?;
    w.flush()
}

/// Leader side: read the follower's hello. `Ok(None)` when the socket
/// timed out before the first byte arrived.
pub fn read_hello(r: &mut impl Read) -> io::Result<Option<u64>> {
    let mut magic = [0u8; 8];
    match r.read_exact(&mut magic) {
        Ok(()) => {}
        Err(e) if is_timeout(&e) => return Ok(None),
        Err(e) => return Err(e),
    }
    if &magic != REPL_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a replication client (bad magic)",
        ));
    }
    Ok(Some(get_u64(r)?))
}

/// Leader side: accept the handshake.
pub fn write_agreement(w: &mut impl Write) -> io::Result<()> {
    w.write_all(REPL_MAGIC)?;
    w.flush()
}

/// Follower side: read the leader's agreement magic. `Ok(false)` on a
/// boundary timeout (no bytes yet).
pub fn read_agreement(r: &mut impl Read) -> io::Result<bool> {
    let mut magic = [0u8; 8];
    match r.read_exact(&mut magic) {
        Ok(()) => {}
        Err(e) if is_timeout(&e) => return Ok(false),
        Err(e) => return Err(e),
    }
    if &magic != REPL_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a replication leader (bad magic)",
        ));
    }
    Ok(true)
}

/// Ship a snapshot.
pub fn write_snapshot(w: &mut impl Write, lsn: u64, bytes: &[u8]) -> io::Result<()> {
    w.write_all(b"S")?;
    put_u64(w, lsn)?;
    put_u64(w, bytes.len() as u64)?;
    w.write_all(bytes)?;
    w.flush()
}

/// Ship one WAL frame.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(b"F")?;
    put_u32(w, frame.len() as u32)?;
    w.write_all(frame)?;
    w.flush()
}

/// Ship a heartbeat.
pub fn write_heartbeat(w: &mut impl Write, committed_lsn: u64) -> io::Result<()> {
    w.write_all(b"H")?;
    put_u64(w, committed_lsn)?;
    w.flush()
}

/// Acknowledge everything up to `lsn` as applied.
pub fn write_ack(w: &mut impl Write, lsn: u64) -> io::Result<()> {
    w.write_all(b"A")?;
    put_u64(w, lsn)?;
    w.flush()
}

/// Follower side: read the next leader message. `Ok(None)` when the socket
/// timed out on the message boundary; mid-message timeouts are errors (the
/// stream is desynchronized, reconnect).
pub fn read_message(r: &mut impl Read) -> io::Result<Option<Message>> {
    let mut tag = [0u8; 1];
    match r.read_exact(&mut tag) {
        Ok(()) => {}
        Err(e) if is_timeout(&e) => return Ok(None),
        Err(e) => return Err(e),
    }
    match tag[0] {
        b'S' => {
            let lsn = get_u64(r)?;
            let nbytes = get_u64(r)?;
            if nbytes > MAX_SNAPSHOT_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("snapshot message declares {nbytes} bytes"),
                ));
            }
            let mut bytes = vec![0u8; nbytes as usize];
            r.read_exact(&mut bytes)?;
            Ok(Some(Message::Snapshot { lsn, bytes }))
        }
        b'F' => {
            let len = get_u32(r)?;
            if len > MAX_FRAME_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("frame message declares {len} bytes"),
                ));
            }
            let mut bytes = vec![0u8; len as usize];
            r.read_exact(&mut bytes)?;
            Ok(Some(Message::Frame { bytes }))
        }
        b'H' => Ok(Some(Message::Heartbeat {
            committed_lsn: get_u64(r)?,
        })),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown replication message tag {other:#04x}"),
        )),
    }
}

/// Leader side: read the next follower ack. `Ok(None)` on a boundary
/// timeout.
pub fn read_ack(r: &mut impl Read) -> io::Result<Option<u64>> {
    let mut tag = [0u8; 1];
    match r.read_exact(&mut tag) {
        Ok(()) => {}
        Err(e) if is_timeout(&e) => return Ok(None),
        Err(e) => return Err(e),
    }
    if tag[0] != b'A' {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown ack tag {:#04x}", tag[0]),
        ));
    }
    Ok(Some(get_u64(r)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn messages_round_trip() {
        let mut buf = Vec::new();
        write_snapshot(&mut buf, 7, b"snapbytes").unwrap();
        write_frame(&mut buf, b"framebytes").unwrap();
        write_heartbeat(&mut buf, 42).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(
            read_message(&mut r).unwrap().unwrap(),
            Message::Snapshot {
                lsn: 7,
                bytes: b"snapbytes".to_vec()
            }
        );
        assert_eq!(
            read_message(&mut r).unwrap().unwrap(),
            Message::Frame {
                bytes: b"framebytes".to_vec()
            }
        );
        assert_eq!(
            read_message(&mut r).unwrap().unwrap(),
            Message::Heartbeat { committed_lsn: 42 }
        );
    }

    #[test]
    fn hello_and_ack_round_trip() {
        let mut buf = Vec::new();
        write_hello(&mut buf, 11).unwrap();
        assert_eq!(read_hello(&mut Cursor::new(buf)).unwrap(), Some(11));
        let mut buf = Vec::new();
        write_ack(&mut buf, 13).unwrap();
        assert_eq!(read_ack(&mut Cursor::new(buf)).unwrap(), Some(13));
    }

    #[test]
    fn bad_magic_and_tags_are_errors() {
        assert!(read_hello(&mut Cursor::new(b"NOTMAGIC\0\0\0\0\0\0\0\0".to_vec())).is_err());
        assert!(read_agreement(&mut Cursor::new(b"NOTMAGIC".to_vec())).is_err());
        assert!(read_message(&mut Cursor::new(b"Zjunk".to_vec())).is_err());
        assert!(read_ack(&mut Cursor::new(b"Zjunk".to_vec())).is_err());
    }

    #[test]
    fn oversized_declarations_are_rejected() {
        let mut buf = Vec::new();
        buf.push(b'F');
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_message(&mut Cursor::new(buf)).is_err());
        let mut buf = Vec::new();
        buf.push(b'S');
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_message(&mut Cursor::new(buf)).is_err());
    }
}
