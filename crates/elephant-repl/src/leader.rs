//! The leader side: accept followers, bootstrap them, stream the WAL.
//!
//! The feeder never touches the engine — it works entirely off a
//! [`WalHandle`] (paths + the committed-LSN watermark), reading the
//! snapshot file and tailing the WAL file directly. That makes replication
//! a pure sidecar: the engine thread pays nothing beyond the atomic store
//! its WAL writer already does per append.
//!
//! ## Feeding protocol
//!
//! For each follower, after the hello exchange:
//!
//! 1. **Bootstrap**: if the on-disk snapshot covers LSNs past the
//!    follower's last applied LSN, ship the whole snapshot file — the
//!    frames between the follower's LSN and the snapshot LSN may already
//!    have been truncated away by a checkpoint, and the snapshot subsumes
//!    them anyway.
//! 2. **Steady state**: tail the WAL, shipping frames in exact LSN order
//!    (`lsn == follower_lsn + 1`, no holes). Only frames at or below the
//!    writer's committed watermark are ever read, so a frame rolled back by
//!    a failed fsync cannot reach a follower.
//! 3. **Truncation**: when the checkpoint truncation counter moves (or the
//!    file visibly shrinks), the tail offset is stale — reset it and
//!    re-decide from step 1.
//!
//! A continuity gap that the snapshot cannot cover never happens under
//! this ordering (checkpoints persist the snapshot *before* truncating),
//! but the feeder still treats it as "retry from step 1" rather than
//! trusting the invariant.

use crate::proto;
use crate::state::{FollowerEntry, LeaderRegistry};
use elephant_store::{TailPoll, WalHandle};
use std::fs::File;
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How often the feeder polls the WAL while idle.
const POLL_INTERVAL: Duration = Duration::from_millis(5);
/// Heartbeat cadence while no frames are flowing.
const HEARTBEAT_EVERY: Duration = Duration::from_millis(100);
/// Socket timeouts: reads poll (shutdown-aware), writes bound a stalled peer.
const READ_TIMEOUT: Duration = Duration::from_millis(200);
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// A running replication listener.
pub struct LeaderHandle {
    registry: Arc<LeaderRegistry>,
    local_addr: std::net::SocketAddr,
    join: JoinHandle<()>,
}

impl LeaderHandle {
    /// Per-follower progress counters.
    pub fn registry(&self) -> Arc<LeaderRegistry> {
        Arc::clone(&self.registry)
    }

    /// The replication listener's bound address.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Wait for the accept loop to exit (after the shutdown flag is set).
    /// Feeder threads exit on their own within a socket-timeout beat.
    pub fn join(self) {
        let _ = self.join.join();
    }
}

/// Start the replication listener on `listener`, feeding every follower
/// that connects from the store behind `handle`. The accept loop and every
/// feeder observe `shutdown`.
pub fn spawn(
    listener: TcpListener,
    handle: WalHandle,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<LeaderHandle> {
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let registry = Arc::new(LeaderRegistry::default());
    let accept_registry = Arc::clone(&registry);
    let join = thread::Builder::new()
        .name("repl-accept".into())
        .spawn(move || {
            while !shutdown.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, peer)) => {
                        let entry = accept_registry.register(peer.to_string());
                        let handle = handle.clone();
                        let shutdown = Arc::clone(&shutdown);
                        let name = format!("repl-feed-{peer}");
                        let _ = thread::Builder::new().name(name).spawn(move || {
                            feed_follower(stream, handle, entry, shutdown);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(25));
                    }
                    Err(_) => thread::sleep(Duration::from_millis(25)),
                }
            }
        })?;
    Ok(LeaderHandle {
        registry,
        local_addr,
        join,
    })
}

/// Read just the header of a snapshot file: its covered LSN.
fn peek_snapshot_lsn(path: &Path) -> Option<u64> {
    let mut f = File::open(path).ok()?;
    let mut head = [0u8; 16];
    f.read_exact(&mut head).ok()?;
    if &head[..8] != elephant_store::snapshot::SNAPSHOT_MAGIC {
        return None;
    }
    Some(u64::from_le_bytes(head[8..16].try_into().expect("8 bytes")))
}

/// One follower's feeder: handshake, bootstrap, stream, until the
/// connection drops or shutdown.
fn feed_follower(
    mut stream: TcpStream,
    handle: WalHandle,
    entry: Arc<FollowerEntry>,
    shutdown: Arc<AtomicBool>,
) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let _ = stream.set_nodelay(true);

    // Hello: the follower leads with its last applied LSN.
    let mut follower_lsn = loop {
        if shutdown.load(Ordering::Acquire) {
            entry.connected.store(false, Ordering::Release);
            return;
        }
        match proto::read_hello(&mut stream) {
            Ok(Some(lsn)) => break lsn,
            Ok(None) => continue,
            Err(_) => {
                entry.connected.store(false, Ordering::Release);
                return;
            }
        }
    };
    if proto::write_agreement(&mut stream).is_err() {
        entry.connected.store(false, Ordering::Release);
        return;
    }

    // Acks arrive asynchronously on the same socket: drain them on a
    // sidecar thread so a slow follower never stalls the feed.
    if let Ok(ack_stream) = stream.try_clone() {
        let ack_entry = Arc::clone(&entry);
        let ack_shutdown = Arc::clone(&shutdown);
        let _ = thread::Builder::new()
            .name("repl-acks".into())
            .spawn(move || drain_acks(ack_stream, ack_entry, ack_shutdown));
    }

    let mut tailer = handle.tailer();
    let mut seen_truncations = handle.truncations();
    let mut last_heartbeat = Instant::now();
    // A snapshot only becomes relevant at session start, after a checkpoint
    // truncation, or when the tail shows a hole — peeking it every loop
    // iteration would put a file open on the steady-state ship path.
    let mut check_snapshot = true;

    while !shutdown.load(Ordering::Acquire) {
        // A checkpoint truncation makes the tail offset stale even if the
        // file has already regrown past it.
        let truncations = handle.truncations();
        if truncations != seen_truncations {
            seen_truncations = truncations;
            tailer.reset();
            check_snapshot = true;
        }

        // Bootstrap (or re-bootstrap) from the snapshot whenever it covers
        // LSNs the follower is missing.
        if check_snapshot {
            if peek_snapshot_lsn(handle.snapshot_path()).is_some_and(|lsn| lsn > follower_lsn) {
                let Ok(bytes) = std::fs::read(handle.snapshot_path()) else {
                    thread::sleep(POLL_INTERVAL);
                    continue; // retry with check_snapshot still set
                };
                // Re-extract the LSN from the bytes actually read: the file
                // may have been atomically replaced since the peek.
                let Some(snap_lsn) = (bytes.len() >= 16)
                    .then(|| u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")))
                else {
                    thread::sleep(POLL_INTERVAL);
                    continue; // retry with check_snapshot still set
                };
                if snap_lsn > follower_lsn {
                    if proto::write_snapshot(&mut stream, snap_lsn, &bytes).is_err() {
                        break;
                    }
                    entry
                        .bytes_shipped
                        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                    entry.snapshots_sent.fetch_add(1, Ordering::Relaxed);
                    follower_lsn = snap_lsn;
                    last_heartbeat = Instant::now();
                }
            }
            check_snapshot = false;
        }

        let mut shipped = false;
        match tailer.poll(handle.committed_lsn()) {
            Ok(TailPoll::Truncated) => {
                check_snapshot = true;
                continue;
            }
            Ok(TailPoll::Frames(frames)) => {
                let mut gap = false;
                for frame in frames {
                    if frame.lsn <= follower_lsn {
                        continue; // already covered (snapshot or earlier ship)
                    }
                    if frame.lsn != follower_lsn + 1 {
                        // Hole in the feed: the missing frames can only live
                        // in a snapshot. Re-decide from the top.
                        gap = true;
                        tailer.reset();
                        check_snapshot = true;
                        break;
                    }
                    if proto::write_frame(&mut stream, &frame.bytes).is_err() {
                        entry.connected.store(false, Ordering::Release);
                        return;
                    }
                    entry
                        .bytes_shipped
                        .fetch_add(frame.bytes.len() as u64, Ordering::Relaxed);
                    follower_lsn = frame.lsn;
                    shipped = true;
                    last_heartbeat = Instant::now();
                }
                if gap {
                    thread::sleep(POLL_INTERVAL);
                    continue;
                }
            }
            Err(_) => {
                // Transient read error (file mid-swap): retry after a beat.
                thread::sleep(POLL_INTERVAL);
                continue;
            }
        }

        if !shipped {
            if last_heartbeat.elapsed() >= HEARTBEAT_EVERY {
                if proto::write_heartbeat(&mut stream, handle.committed_lsn()).is_err() {
                    break;
                }
                last_heartbeat = Instant::now();
            }
            thread::sleep(POLL_INTERVAL);
        }
    }
    entry.connected.store(false, Ordering::Release);
}

/// Sidecar loop: fold follower acks into the registry entry.
fn drain_acks(mut stream: TcpStream, entry: Arc<FollowerEntry>, shutdown: Arc<AtomicBool>) {
    while !shutdown.load(Ordering::Acquire) && entry.connected.load(Ordering::Acquire) {
        match proto::read_ack(&mut stream) {
            Ok(Some(lsn)) => {
                entry.acked_lsn.fetch_max(lsn, Ordering::AcqRel);
            }
            Ok(None) => {}
            Err(_) => {
                entry.connected.store(false, Ordering::Release);
                return;
            }
        }
    }
}
