//! Shared replication state, readable from any thread.
//!
//! Both sides publish progress through plain atomics so the serving layer
//! (`STATS`, `REPLICA`, `LAG`) can render replication health without
//! touching the engine thread or the replication sockets.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One follower as the leader sees it.
#[derive(Debug, Default)]
pub struct FollowerEntry {
    /// Peer address (`ip:port` of the replication connection).
    pub peer: String,
    /// Highest LSN the follower acknowledged as applied.
    pub acked_lsn: AtomicU64,
    /// Frame + snapshot bytes shipped over this connection.
    pub bytes_shipped: AtomicU64,
    /// Snapshot bootstraps shipped (reconnects after a checkpoint, first
    /// contact, or continuity gaps).
    pub snapshots_sent: AtomicU64,
    /// False once the feeder lost the connection.
    pub connected: AtomicBool,
}

/// A point-in-time copy of one [`FollowerEntry`], for rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FollowerView {
    /// Peer address.
    pub peer: String,
    /// Highest acknowledged LSN.
    pub acked_lsn: u64,
    /// Bytes shipped.
    pub bytes_shipped: u64,
    /// Snapshot bootstraps shipped.
    pub snapshots_sent: u64,
    /// Whether the feeder connection is live.
    pub connected: bool,
}

/// Every follower the leader has ever fed (live and disconnected).
#[derive(Debug, Default)]
pub struct LeaderRegistry {
    followers: Mutex<Vec<Arc<FollowerEntry>>>,
}

impl LeaderRegistry {
    /// Register a new follower connection.
    pub fn register(&self, peer: impl Into<String>) -> Arc<FollowerEntry> {
        let entry = Arc::new(FollowerEntry {
            peer: peer.into(),
            connected: AtomicBool::new(true),
            ..FollowerEntry::default()
        });
        self.followers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&entry));
        entry
    }

    /// Copy out every follower's current counters.
    pub fn views(&self) -> Vec<FollowerView> {
        self.followers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|f| FollowerView {
                peer: f.peer.clone(),
                acked_lsn: f.acked_lsn.load(Ordering::Acquire),
                bytes_shipped: f.bytes_shipped.load(Ordering::Relaxed),
                snapshots_sent: f.snapshots_sent.load(Ordering::Relaxed),
                connected: f.connected.load(Ordering::Acquire),
            })
            .collect()
    }

    /// Connected follower count.
    pub fn connected(&self) -> usize {
        self.views().iter().filter(|v| v.connected).count()
    }

    /// The lowest acknowledged LSN across connected followers (`None` when
    /// no follower is connected) — the replication watermark an operator
    /// would alert on.
    pub fn min_acked_lsn(&self) -> Option<u64> {
        self.views()
            .iter()
            .filter(|v| v.connected)
            .map(|v| v.acked_lsn)
            .min()
    }
}

/// The follower's own progress, published for `LAG`/`STATS`.
#[derive(Debug, Default)]
pub struct FollowerStatus {
    /// Highest LSN applied into the local engine.
    pub applied_lsn: AtomicU64,
    /// The leader's committed LSN as of the last heartbeat/frame.
    pub leader_lsn: AtomicU64,
    /// Frame + snapshot bytes received.
    pub bytes_received: AtomicU64,
    /// Snapshot bootstraps applied.
    pub snapshots_loaded: AtomicU64,
    /// Connection attempts after the first.
    pub reconnects: AtomicU64,
    /// Whether the stream to the leader is currently live.
    pub connected: AtomicBool,
    /// The most recent connection/apply error, for diagnostics.
    pub last_error: Mutex<Option<String>>,
}

impl FollowerStatus {
    /// Apply lag in LSNs (leader committed minus locally applied). Zero
    /// while fully caught up; also zero before the first heartbeat.
    pub fn lag_lsns(&self) -> u64 {
        self.leader_lsn
            .load(Ordering::Acquire)
            .saturating_sub(self.applied_lsn.load(Ordering::Acquire))
    }

    /// Record an error for diagnostics.
    pub fn set_error(&self, e: impl Into<String>) {
        *self.last_error.lock().unwrap_or_else(|e| e.into_inner()) = Some(e.into());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_tracks_views_and_min_ack() {
        let reg = LeaderRegistry::default();
        assert_eq!(reg.min_acked_lsn(), None);
        let a = reg.register("1.2.3.4:5");
        let b = reg.register("5.6.7.8:9");
        a.acked_lsn.store(10, Ordering::Release);
        b.acked_lsn.store(7, Ordering::Release);
        assert_eq!(reg.connected(), 2);
        assert_eq!(reg.min_acked_lsn(), Some(7));
        b.connected.store(false, Ordering::Release);
        assert_eq!(reg.connected(), 1);
        assert_eq!(reg.min_acked_lsn(), Some(10));
        let views = reg.views();
        assert_eq!(views.len(), 2);
        assert_eq!(views[0].peer, "1.2.3.4:5");
    }

    #[test]
    fn follower_lag_saturates() {
        let s = FollowerStatus::default();
        s.leader_lsn.store(12, Ordering::Release);
        s.applied_lsn.store(9, Ordering::Release);
        assert_eq!(s.lag_lsns(), 3);
        s.applied_lsn.store(20, Ordering::Release);
        assert_eq!(s.lag_lsns(), 0, "never negative");
    }
}
