//! Leader ↔ follower loopback over real sockets and a real store.

use elephant_repl::{follower, leader, FollowerConfig, FollowerStatus, ReplOp};
use elephant_store::{FsyncPolicy, Store, StoreConfig, TableImage, WalRecord};
use etypes::{DataType, Value};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("elrepl-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wait_until(what: &str, mut ok: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !ok() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn create_t() -> WalRecord {
    WalRecord::CreateTable {
        name: "t".into(),
        columns: vec!["id".into(), "v".into()],
        types: vec![DataType::Serial, DataType::Text],
    }
}

fn insert(i: i64) -> WalRecord {
    WalRecord::Insert {
        table: "t".into(),
        rows: vec![vec![Value::Int(i), Value::text(format!("row-{i}"))]],
    }
}

/// The journal a test follower keeps: every op the loop asked it to apply.
#[derive(Default)]
struct Journal {
    resets: Vec<(u64, usize)>, // (snapshot_lsn, table count)
    applied: Vec<u64>,         // frame lsns in apply order
}

fn spawn_follower(
    addr: String,
    shutdown: Arc<AtomicBool>,
) -> (Arc<FollowerStatus>, Arc<Mutex<Journal>>) {
    let status = Arc::new(FollowerStatus::default());
    let journal = Arc::new(Mutex::new(Journal::default()));
    let j = Arc::clone(&journal);
    follower::spawn(
        FollowerConfig::new(addr),
        Arc::clone(&status),
        shutdown,
        move |op| {
            let mut j = j.lock().unwrap();
            match op {
                ReplOp::Reset {
                    snapshot_lsn,
                    tables,
                } => j.resets.push((snapshot_lsn, tables.len())),
                ReplOp::Apply { frames } => j.applied.extend(frames.iter().map(|(l, _)| *l)),
            }
            Ok(())
        },
    );
    (status, journal)
}

#[test]
fn streams_committed_frames_in_order_and_acks_flow_back() {
    let dir = tmp_dir("stream");
    let (mut store, _, _) =
        Store::open(StoreConfig::new(&dir).with_fsync(FsyncPolicy::Off)).unwrap();
    store.log(&create_t()).unwrap();
    store.log(&insert(1)).unwrap();
    store.log(&insert(2)).unwrap();

    let shutdown = Arc::new(AtomicBool::new(false));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let lead = leader::spawn(listener, store.wal_handle(), Arc::clone(&shutdown)).unwrap();
    let (status, journal) = spawn_follower(addr, Arc::clone(&shutdown));

    // Pre-connection history arrives first...
    wait_until("initial catch-up", || {
        status.applied_lsn.load(Ordering::Acquire) == 3
    });
    // ...then live appends stream through.
    store.log(&insert(3)).unwrap();
    store.log(&insert(4)).unwrap();
    wait_until("live frames", || {
        status.applied_lsn.load(Ordering::Acquire) == 5
    });
    wait_until("acks reach the leader", || {
        lead.registry().min_acked_lsn() == Some(5)
    });

    let j = journal.lock().unwrap();
    assert_eq!(j.applied, vec![1, 2, 3, 4, 5], "strict LSN order, no holes");
    assert!(j.resets.is_empty(), "no snapshot existed, none shipped");
    drop(j);

    let views = lead.registry().views();
    assert_eq!(views.len(), 1);
    assert!(views[0].connected);
    assert!(views[0].bytes_shipped > 0);
    assert_eq!(status.lag_lsns(), 0);

    shutdown.store(true, Ordering::Release);
    lead.join();
}

#[test]
fn checkpoint_forces_snapshot_bootstrap() {
    let dir = tmp_dir("snapboot");
    let (mut store, _, _) =
        Store::open(StoreConfig::new(&dir).with_fsync(FsyncPolicy::Off)).unwrap();
    store.log(&create_t()).unwrap();
    store.log(&insert(1)).unwrap();
    // Fold everything into a snapshot; the WAL history is gone.
    let image = TableImage {
        name: "t".into(),
        columns: vec!["id".into(), "v".into()],
        types: vec![DataType::Serial, DataType::Text],
        serial_next: vec![(0, 2)],
        rows: vec![vec![Value::Int(1), Value::text("row-1")]],
    };
    store.checkpoint(&[&image]).unwrap();
    store.log(&insert(2)).unwrap();

    let shutdown = Arc::new(AtomicBool::new(false));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let lead = leader::spawn(listener, store.wal_handle(), Arc::clone(&shutdown)).unwrap();
    let (status, journal) = spawn_follower(addr, Arc::clone(&shutdown));

    wait_until("snapshot + tail catch-up", || {
        status.applied_lsn.load(Ordering::Acquire) == 3
    });
    let j = journal.lock().unwrap();
    assert_eq!(j.resets, vec![(2, 1)], "bootstrap covered LSNs 1-2");
    assert_eq!(
        j.applied,
        vec![3],
        "only the post-checkpoint frame streamed"
    );
    drop(j);
    assert_eq!(status.snapshots_loaded.load(Ordering::Relaxed), 1);

    // A checkpoint *while connected* truncates the WAL under the tailer;
    // the follower must re-sync through a fresh snapshot, not see a hole.
    let image2 = TableImage {
        rows: vec![
            vec![Value::Int(1), Value::text("row-1")],
            vec![Value::Int(2), Value::text("row-2")],
        ],
        serial_next: vec![(0, 3)],
        ..image
    };
    store.checkpoint(&[&image2]).unwrap();
    store.log(&insert(3)).unwrap();
    wait_until("post-truncation catch-up", || {
        status.applied_lsn.load(Ordering::Acquire) == 4
    });
    wait_until("acks after re-sync", || {
        lead.registry().min_acked_lsn() == Some(4)
    });

    shutdown.store(true, Ordering::Release);
    lead.join();
}

#[test]
fn follower_restart_resumes_from_applied_lsn() {
    let dir = tmp_dir("resume");
    let (mut store, _, _) =
        Store::open(StoreConfig::new(&dir).with_fsync(FsyncPolicy::Off)).unwrap();
    store.log(&create_t()).unwrap();
    store.log(&insert(1)).unwrap();

    let shutdown = Arc::new(AtomicBool::new(false));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let lead = leader::spawn(listener, store.wal_handle(), Arc::clone(&shutdown)).unwrap();

    // First follower life.
    let first_shutdown = Arc::new(AtomicBool::new(false));
    let (status1, _journal1) = spawn_follower(addr.clone(), Arc::clone(&first_shutdown));
    wait_until("first life catch-up", || {
        status1.applied_lsn.load(Ordering::Acquire) == 2
    });
    first_shutdown.store(true, Ordering::Release);

    // Leader keeps writing while the follower is down.
    store.log(&insert(2)).unwrap();
    store.log(&insert(3)).unwrap();

    // Second life resumes from LSN 2: only 3 and 4 are re-shipped.
    let status2 = Arc::new(FollowerStatus::default());
    status2.applied_lsn.store(2, Ordering::Release);
    let journal2 = Arc::new(Mutex::new(Journal::default()));
    let j2 = Arc::clone(&journal2);
    follower::spawn(
        FollowerConfig::new(addr),
        Arc::clone(&status2),
        Arc::clone(&shutdown),
        move |op| {
            let mut j = j2.lock().unwrap();
            match op {
                ReplOp::Reset {
                    snapshot_lsn,
                    tables,
                } => j.resets.push((snapshot_lsn, tables.len())),
                ReplOp::Apply { frames } => j.applied.extend(frames.iter().map(|(l, _)| *l)),
            }
            Ok(())
        },
    );
    wait_until("second life catch-up", || {
        status2.applied_lsn.load(Ordering::Acquire) == 4
    });
    let j = journal2.lock().unwrap();
    assert!(j.resets.is_empty(), "no snapshot: plain WAL resume");
    assert_eq!(j.applied, vec![3, 4], "nothing before the handshake LSN");
    drop(j);

    shutdown.store(true, Ordering::Release);
    lead.join();
}

#[test]
fn apply_error_forces_snapshot_resync() {
    let dir = tmp_dir("resync");
    let (mut store, _, _) =
        Store::open(StoreConfig::new(&dir).with_fsync(FsyncPolicy::Off)).unwrap();
    store.log(&create_t()).unwrap();
    store.log(&insert(1)).unwrap();
    let image = TableImage {
        name: "t".into(),
        columns: vec!["id".into(), "v".into()],
        types: vec![DataType::Serial, DataType::Text],
        serial_next: vec![(0, 2)],
        rows: vec![vec![Value::Int(1), Value::text("row-1")]],
    };
    store.checkpoint(&[&image]).unwrap();
    store.log(&insert(2)).unwrap();

    let shutdown = Arc::new(AtomicBool::new(false));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let lead = leader::spawn(listener, store.wal_handle(), Arc::clone(&shutdown)).unwrap();

    // A follower whose first frame apply fails (simulated divergence): it
    // must zero its LSN, reconnect, and take the snapshot path.
    let status = Arc::new(FollowerStatus::default());
    let journal = Arc::new(Mutex::new(Journal::default()));
    let failed_once = Arc::new(AtomicBool::new(false));
    let j = Arc::clone(&journal);
    let f = Arc::clone(&failed_once);
    follower::spawn(
        FollowerConfig::new(addr),
        Arc::clone(&status),
        Arc::clone(&shutdown),
        move |op| {
            let mut j = j.lock().unwrap();
            match op {
                ReplOp::Reset {
                    snapshot_lsn,
                    tables,
                } => j.resets.push((snapshot_lsn, tables.len())),
                ReplOp::Apply { frames } => {
                    if !f.swap(true, Ordering::AcqRel) {
                        return Err("simulated divergence".into());
                    }
                    j.applied.extend(frames.iter().map(|(l, _)| *l));
                }
            }
            Ok(())
        },
    );

    wait_until("self-healing resync", || {
        status.applied_lsn.load(Ordering::Acquire) == 3
    });
    let j = journal.lock().unwrap();
    assert!(
        j.resets.len() >= 2,
        "re-bootstrap after divergence, got {:?}",
        j.resets
    );
    assert_eq!(j.applied, vec![3]);

    shutdown.store(true, Ordering::Release);
    lead.join();
}
