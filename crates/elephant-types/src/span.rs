//! The shared span model for the tracing subsystem.
//!
//! Every layer that measures wall-time speaks the same two shapes:
//!
//! * [`Histogram`] — a single-threaded log2-bucketed microsecond histogram
//!   (the engine's per-phase accumulators). The server keeps its own atomic
//!   variant but shares [`bucket_index`] so both agree on bucket edges:
//!   bucket `i` holds samples in `[2^i, 2^(i+1))` µs and bucket 0 holds
//!   everything below 2 µs, sub-microsecond samples included.
//! * [`Span`] — one finished unit of work (a served command, a traced
//!   statement) kept in a [`SpanRing`] for the `TRACE` verb.

use std::collections::VecDeque;

/// Number of log2 buckets: `2^39` µs ≈ 6.4 days, far beyond any latency.
pub const HIST_BUCKETS: usize = 40;

/// Bucket index for a microsecond sample: `floor(log2(us))`, with all
/// sub-2µs samples (including `us == 0`) in bucket 0 and everything at or
/// above `2^(HIST_BUCKETS-1)` clamped into the last bucket.
#[inline]
pub fn bucket_index(us: u64) -> usize {
    (us.max(1).ilog2() as usize).min(HIST_BUCKETS - 1)
}

/// Single-threaded log2 latency histogram over microseconds.
///
/// Cheap enough for the hot path: recording is one bucket increment and two
/// adds. Percentiles report the *upper edge* of the bucket the target sample
/// falls in (`2^(i+1)` µs), so a histogram holding only 1 µs samples reports
/// `p100 = 2`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    total_us: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            total_us: 0,
        }
    }
}

impl Histogram {
    /// Record one sample in microseconds.
    #[inline]
    pub fn record_us(&mut self, us: u64) {
        self.buckets[bucket_index(us)] += 1;
        self.count += 1;
        self.total_us += us;
    }

    /// Record one sample as a [`std::time::Duration`].
    #[inline]
    pub fn record(&mut self, elapsed: std::time::Duration) {
        self.record_us(elapsed.as_micros() as u64);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples in microseconds.
    pub fn total_us(&self) -> u64 {
        self.total_us
    }

    /// Mean sample in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.total_us.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bucket edge (µs) below which at least `p` (in `[0,1]`) of the
    /// samples fall; 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * p.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        1u64 << HIST_BUCKETS
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total_us += other.total_us;
    }
}

/// One finished unit of work, as surfaced by the server's `TRACE` verb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Monotonic sequence number (1-based, assigned by the ring).
    pub seq: u64,
    /// What ran (a verb like `QUERY`, a phase name, ...).
    pub name: String,
    /// Free-form detail (SQL text, statement name, ...), single line.
    pub detail: String,
    /// Wall-clock duration in microseconds.
    pub elapsed_us: u64,
    /// False when the work ended in an error response.
    pub ok: bool,
}

impl Span {
    /// Render as one stable `key=value` line (the `TRACE` wire format).
    pub fn render(&self) -> String {
        format!(
            "span seq={} name={} us={} ok={} detail={}",
            self.seq,
            self.name,
            self.elapsed_us,
            u8::from(self.ok),
            self.detail
        )
    }
}

/// Fixed-capacity ring of recent [`Span`]s (oldest evicted first).
#[derive(Debug, Clone)]
pub struct SpanRing {
    capacity: usize,
    next_seq: u64,
    spans: VecDeque<Span>,
}

impl SpanRing {
    /// Create a ring holding at most `capacity` spans.
    pub fn new(capacity: usize) -> SpanRing {
        SpanRing {
            capacity: capacity.max(1),
            next_seq: 1,
            spans: VecDeque::with_capacity(capacity.clamp(1, 1024)),
        }
    }

    /// Maximum spans retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Spans currently held.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no span has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total spans ever pushed (the next span gets `pushed() + 1` as seq).
    pub fn pushed(&self) -> u64 {
        self.next_seq - 1
    }

    /// Record one finished span; `detail` is flattened to a single line and
    /// truncated so `TRACE` output stays line-oriented and bounded.
    pub fn push(&mut self, name: impl Into<String>, detail: &str, elapsed_us: u64, ok: bool) {
        const MAX_DETAIL: usize = 120;
        let mut flat: String = detail
            .chars()
            .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
            .take(MAX_DETAIL)
            .collect();
        flat.truncate(flat.trim_end().len());
        if self.spans.len() == self.capacity {
            self.spans.pop_front();
        }
        self.spans.push_back(Span {
            seq: self.next_seq,
            name: name.into(),
            detail: flat,
            elapsed_us,
            ok,
        });
        self.next_seq += 1;
    }

    /// The most recent `n` spans, newest first.
    pub fn recent(&self, n: usize) -> Vec<&Span> {
        self.spans.iter().rev().take(n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn bucket_edges_match_documentation() {
        // Bucket 0 holds < 2µs, sub-µs included.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_records_and_reports() {
        let mut h = Histogram::default();
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(100));
        assert_eq!(h.count(), 3);
        assert_eq!(h.total_us(), 102);
        assert_eq!(h.mean_us(), 34);
        // Two of three samples sit in bucket 0, upper edge 2µs.
        assert_eq!(h.percentile(0.5), 2);
        assert!(h.percentile(1.0) >= 128);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        a.record_us(10);
        b.record_us(20);
        b.record_us(30);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.total_us(), 60);
    }

    #[test]
    fn ring_evicts_oldest_and_keeps_seq() {
        let mut r = SpanRing::new(2);
        r.push("QUERY", "one", 5, true);
        r.push("QUERY", "two", 6, true);
        r.push("STATS", "three", 7, false);
        assert_eq!(r.len(), 2);
        assert_eq!(r.pushed(), 3);
        let recent = r.recent(10);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].seq, 3);
        assert_eq!(recent[0].name, "STATS");
        assert!(!recent[0].ok);
        assert_eq!(recent[1].seq, 2);
    }

    #[test]
    fn ring_flattens_multiline_detail() {
        let mut r = SpanRing::new(4);
        r.push("QUERY", "SELECT 1\nFROM t\r\n", 1, true);
        let line = r.recent(1)[0].render();
        assert!(line.contains("detail=SELECT 1 FROM t"), "{line}");
        assert!(!line.contains('\n'), "{line}");
    }
}
