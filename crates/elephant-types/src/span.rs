//! The shared span model for the tracing subsystem.
//!
//! Every layer that measures wall-time speaks the same shapes:
//!
//! * [`Histogram`] — a single-threaded log2-bucketed microsecond histogram
//!   (the engine's per-phase accumulators). The server keeps its own atomic
//!   variant but shares [`bucket_index`] so both agree on bucket edges:
//!   bucket `i` holds samples in `[2^i, 2^(i+1))` µs and bucket 0 holds
//!   everything below 2 µs, sub-microsecond samples included.
//! * [`Span`] — one finished unit of work (a served command, a routing
//!   decision, a per-shard export) kept in a [`SpanRing`] for the `TRACE`
//!   verb. Spans carry a process-unique [`Span::id`], a parent id and a
//!   `query_id`, so the spans of one distributed command — scattered over
//!   several per-shard rings — reassemble into a single tree.
//! * [`TraceContext`] — the two correlation ids (`query_id`, parent span)
//!   threaded from the router through executors into the engine.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of log2 buckets: `2^39` µs ≈ 6.4 days, far beyond any latency.
pub const HIST_BUCKETS: usize = 40;

/// Bucket index for a microsecond sample: `floor(log2(us))`, with all
/// sub-2µs samples (including `us == 0`) in bucket 0 and everything at or
/// above `2^(HIST_BUCKETS-1)` clamped into the last bucket.
#[inline]
pub fn bucket_index(us: u64) -> usize {
    (us.max(1).ilog2() as usize).min(HIST_BUCKETS - 1)
}

/// Single-threaded log2 latency histogram over microseconds.
///
/// Cheap enough for the hot path: recording is one bucket increment and two
/// adds. Percentiles report the *upper edge* of the bucket the target sample
/// falls in (`2^(i+1)` µs), so a histogram holding only 1 µs samples reports
/// `p100 = 2`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    total_us: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            total_us: 0,
        }
    }
}

impl Histogram {
    /// Record one sample in microseconds.
    #[inline]
    pub fn record_us(&mut self, us: u64) {
        self.buckets[bucket_index(us)] += 1;
        self.count += 1;
        self.total_us += us;
    }

    /// Record one sample as a [`std::time::Duration`].
    #[inline]
    pub fn record(&mut self, elapsed: std::time::Duration) {
        self.record_us(elapsed.as_micros() as u64);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples in microseconds.
    pub fn total_us(&self) -> u64 {
        self.total_us
    }

    /// Mean sample in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.total_us.checked_div(self.count).unwrap_or(0)
    }

    /// The raw per-bucket counts (bucket `i` holds `[2^i, 2^(i+1))` µs).
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Upper bucket edge (µs) below which at least `p` (in `[0,1]`) of the
    /// samples fall; 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * p.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        1u64 << HIST_BUCKETS
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total_us += other.total_us;
    }
}

/// Process-global span-id allocator: every span in every ring gets a unique
/// id, so parent links work across shard rings.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a process-unique span id (1-based, monotonic).
pub fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// What layer of the distributed pipeline a span measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A whole served command (the root of a query's span tree).
    Command,
    /// Router resolution: parsing table names and picking shards.
    Router,
    /// Time a job waited in a shard's queue before an executor picked it up.
    QueueWait,
    /// Executor dispatch of a command on its target shard.
    ShardExec,
    /// One shard exporting its tables for a scatter-gather read.
    SgExport,
    /// Installing exported table images on the gather coordinator.
    SgInstall,
    /// Coordinator execution of the gathered cross-shard query.
    SgGather,
    /// The command's share of its WAL group-commit fsync window.
    WalGroupFsync,
    /// One engine phase (lex/parse/bind/optimize/execute/wal_append/fsync).
    EnginePhase,
    /// Replication apply work on a follower.
    ReplApply,
    /// One participant shard executing + durably preparing its slice of a
    /// cross-shard transaction (2PC phase one).
    TxnPrepare,
    /// The coordinator durably logging its commit/abort verdict.
    TxnDecision,
    /// One participant shard applying the decided outcome (commit marker,
    /// or abort marker + unwind).
    TxnCommit,
}

impl SpanKind {
    /// Stable lowercase name used in `TRACE` output and docs.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Command => "command",
            SpanKind::Router => "router",
            SpanKind::QueueWait => "queue-wait",
            SpanKind::ShardExec => "shard-exec",
            SpanKind::SgExport => "sg-export",
            SpanKind::SgInstall => "sg-install",
            SpanKind::SgGather => "sg-gather",
            SpanKind::WalGroupFsync => "wal-group-fsync",
            SpanKind::EnginePhase => "engine-phase",
            SpanKind::ReplApply => "repl-apply",
            SpanKind::TxnPrepare => "txn-prepare",
            SpanKind::TxnDecision => "txn-decision",
            SpanKind::TxnCommit => "txn-commit",
        }
    }
}

/// The correlation ids threaded from the router through an executor into
/// the engine: which query a measurement belongs to and which span is its
/// parent in the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Stable per-command id assigned by the router (`q<N>` on the wire).
    pub query_id: u64,
    /// Span id of the parent (the root command span for direct children).
    pub parent_span: u64,
}

/// One span about to enter a ring: everything except the ring-local `seq`.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Process-unique span id (from [`next_span_id`]).
    pub id: u64,
    /// Parent span id; 0 for roots.
    pub parent: u64,
    /// The query this span belongs to; 0 for uncorrelated legacy spans.
    pub query_id: u64,
    /// What layer the span measures.
    pub kind: SpanKind,
    /// The shard whose executor (or router) produced the span.
    pub shard: u16,
    /// What ran (a verb like `QUERY`, a phase name, ...).
    pub name: String,
    /// Free-form detail (SQL text, statement name, ...).
    pub detail: String,
    /// Wall-clock duration in microseconds.
    pub elapsed_us: u64,
    /// False when the work ended in an error response.
    pub ok: bool,
}

impl SpanRecord {
    /// A root command span (parent 0, [`SpanKind::Command`]) with a fresh id.
    pub fn root(query_id: u64, shard: u16, name: impl Into<String>, detail: &str) -> SpanRecord {
        SpanRecord {
            id: next_span_id(),
            parent: 0,
            query_id,
            kind: SpanKind::Command,
            shard,
            name: name.into(),
            detail: detail.to_string(),
            elapsed_us: 0,
            ok: true,
        }
    }

    /// A child span under `ctx` with a fresh id.
    pub fn child(
        ctx: TraceContext,
        kind: SpanKind,
        shard: u16,
        name: impl Into<String>,
        detail: &str,
        elapsed_us: u64,
        ok: bool,
    ) -> SpanRecord {
        SpanRecord {
            id: next_span_id(),
            parent: ctx.parent_span,
            query_id: ctx.query_id,
            kind,
            shard,
            name: name.into(),
            detail: detail.to_string(),
            elapsed_us,
            ok,
        }
    }
}

/// One finished unit of work, as surfaced by the server's `TRACE` verb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Monotonic sequence number (1-based, assigned by the ring).
    pub seq: u64,
    /// Process-unique span id (tree node identity).
    pub id: u64,
    /// Parent span id; 0 for roots.
    pub parent: u64,
    /// The query this span belongs to; 0 for uncorrelated legacy spans.
    pub query_id: u64,
    /// What layer the span measures.
    pub kind: SpanKind,
    /// The shard whose executor (or router) produced the span.
    pub shard: u16,
    /// What ran (a verb like `QUERY`, a phase name, ...).
    pub name: String,
    /// Free-form detail (SQL text, statement name, ...), single line.
    pub detail: String,
    /// Wall-clock duration in microseconds.
    pub elapsed_us: u64,
    /// False when the work ended in an error response.
    pub ok: bool,
}

impl Span {
    /// Render as one stable `key=value` line (the `TRACE` wire format).
    /// `detail` stays last because it may contain `=` and spaces.
    pub fn render(&self) -> String {
        format!(
            "span seq={} qid=q{} kind={} shard={} id={} parent={} name={} us={} ok={} detail={}",
            self.seq,
            self.query_id,
            self.kind.name(),
            self.shard,
            self.id,
            self.parent,
            self.name,
            self.elapsed_us,
            u8::from(self.ok),
            self.detail
        )
    }
}

/// Flatten a detail string to one bounded line for `TRACE` output.
fn flatten_detail(detail: &str) -> String {
    const MAX_DETAIL: usize = 120;
    let mut flat: String = detail
        .chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .take(MAX_DETAIL)
        .collect();
    flat.truncate(flat.trim_end().len());
    flat
}

/// Fixed-capacity ring of recent [`Span`]s (oldest evicted first), plus the
/// set of *open roots*: command spans that began but have not finished.
///
/// Open roots live outside the evictable ring, so a burst of child spans
/// can never evict the root of an in-flight query — the "root pinned while
/// children record" guarantee is structural, not probabilistic. A root
/// enters the ring (and becomes evictable) only when it finishes.
#[derive(Debug, Clone)]
pub struct SpanRing {
    capacity: usize,
    next_seq: u64,
    spans: VecDeque<Span>,
    open: Vec<Span>,
}

impl SpanRing {
    /// Create a ring holding at most `capacity` finished spans.
    pub fn new(capacity: usize) -> SpanRing {
        SpanRing {
            capacity: capacity.max(1),
            next_seq: 1,
            spans: VecDeque::with_capacity(capacity.clamp(1, 1024)),
            open: Vec::new(),
        }
    }

    /// Maximum finished spans retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Finished spans currently held.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no span has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Roots currently open (begun, not yet finished).
    pub fn open_len(&self) -> usize {
        self.open.len()
    }

    /// Total spans ever pushed (the next span gets `pushed() + 1` as seq).
    pub fn pushed(&self) -> u64 {
        self.next_seq - 1
    }

    /// Record one finished span from a full [`SpanRecord`].
    pub fn record(&mut self, rec: SpanRecord) {
        if self.spans.len() == self.capacity {
            self.spans.pop_front();
        }
        self.spans.push_back(Span {
            seq: self.next_seq,
            id: rec.id,
            parent: rec.parent,
            query_id: rec.query_id,
            kind: rec.kind,
            shard: rec.shard,
            name: rec.name,
            detail: flatten_detail(&rec.detail),
            elapsed_us: rec.elapsed_us,
            ok: rec.ok,
        });
        self.next_seq += 1;
    }

    /// Record one finished root span the legacy way (no correlation ids);
    /// `detail` is flattened to a single line and truncated so `TRACE`
    /// output stays line-oriented and bounded.
    pub fn push(&mut self, name: impl Into<String>, detail: &str, elapsed_us: u64, ok: bool) {
        self.record(SpanRecord {
            id: next_span_id(),
            parent: 0,
            query_id: 0,
            kind: SpanKind::Command,
            shard: 0,
            name: name.into(),
            detail: detail.to_string(),
            elapsed_us,
            ok,
        });
    }

    /// Open a root span: it is pinned (excluded from eviction) until
    /// [`SpanRing::finish_root`] moves it into the ring.
    pub fn begin_root(&mut self, rec: SpanRecord) {
        self.open.push(Span {
            seq: 0,
            id: rec.id,
            parent: rec.parent,
            query_id: rec.query_id,
            kind: rec.kind,
            shard: rec.shard,
            name: rec.name,
            detail: flatten_detail(&rec.detail),
            elapsed_us: rec.elapsed_us,
            ok: rec.ok,
        });
    }

    /// Close an open root: stamp its duration and outcome and move it into
    /// the ring. Unknown ids are ignored (the root may belong to another
    /// ring).
    pub fn finish_root(&mut self, id: u64, elapsed_us: u64, ok: bool) {
        if let Some(pos) = self.open.iter().position(|s| s.id == id) {
            let root = self.open.swap_remove(pos);
            self.record(SpanRecord {
                id: root.id,
                parent: root.parent,
                query_id: root.query_id,
                kind: root.kind,
                shard: root.shard,
                name: root.name,
                detail: root.detail,
                elapsed_us,
                ok,
            });
        }
    }

    /// The most recent `n` finished spans, newest first.
    pub fn recent(&self, n: usize) -> Vec<&Span> {
        self.spans.iter().rev().take(n).collect()
    }

    /// Every retained span of one query (finished spans plus the open root
    /// if the query is still in flight), oldest first.
    pub fn spans_for_query(&self, query_id: u64) -> Vec<Span> {
        let mut out: Vec<Span> = self
            .spans
            .iter()
            .filter(|s| s.query_id == query_id)
            .cloned()
            .collect();
        out.extend(self.open.iter().filter(|s| s.query_id == query_id).cloned());
        out
    }
}

/// A [`SpanRing`] behind a mutex, shared between a shard's executor (the
/// writer) and the router (the `TRACE` reader, which walks every shard's
/// ring to reassemble a distributed query tree).
#[derive(Debug)]
pub struct SharedSpanRing {
    inner: Mutex<SpanRing>,
}

impl SharedSpanRing {
    /// Create a shared ring holding at most `capacity` finished spans.
    pub fn new(capacity: usize) -> SharedSpanRing {
        SharedSpanRing {
            inner: Mutex::new(SpanRing::new(capacity)),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SpanRing> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// See [`SpanRing::record`].
    pub fn record(&self, rec: SpanRecord) {
        self.lock().record(rec);
    }

    /// See [`SpanRing::push`].
    pub fn push(&self, name: impl Into<String>, detail: &str, elapsed_us: u64, ok: bool) {
        self.lock().push(name, detail, elapsed_us, ok);
    }

    /// See [`SpanRing::begin_root`].
    pub fn begin_root(&self, rec: SpanRecord) {
        self.lock().begin_root(rec);
    }

    /// See [`SpanRing::finish_root`].
    pub fn finish_root(&self, id: u64, elapsed_us: u64, ok: bool) {
        self.lock().finish_root(id, elapsed_us, ok);
    }

    /// The most recent `n` finished spans, newest first (cloned out).
    pub fn recent(&self, n: usize) -> Vec<Span> {
        self.lock().recent(n).into_iter().cloned().collect()
    }

    /// See [`SpanRing::spans_for_query`].
    pub fn spans_for_query(&self, query_id: u64) -> Vec<Span> {
        self.lock().spans_for_query(query_id)
    }

    /// Total spans ever pushed.
    pub fn pushed(&self) -> u64 {
        self.lock().pushed()
    }

    /// Finished spans currently held.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when no span has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Roots currently open.
    pub fn open_len(&self) -> usize {
        self.lock().open_len()
    }

    /// Maximum finished spans retained.
    pub fn capacity(&self) -> usize {
        self.lock().capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn bucket_edges_match_documentation() {
        // Bucket 0 holds < 2µs, sub-µs included.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_records_and_reports() {
        let mut h = Histogram::default();
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(100));
        assert_eq!(h.count(), 3);
        assert_eq!(h.total_us(), 102);
        assert_eq!(h.mean_us(), 34);
        // Two of three samples sit in bucket 0, upper edge 2µs.
        assert_eq!(h.percentile(0.5), 2);
        assert!(h.percentile(1.0) >= 128);
        assert_eq!(h.buckets().iter().sum::<u64>(), 3);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        a.record_us(10);
        b.record_us(20);
        b.record_us(30);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.total_us(), 60);
    }

    #[test]
    fn ring_evicts_oldest_and_keeps_seq() {
        let mut r = SpanRing::new(2);
        r.push("QUERY", "one", 5, true);
        r.push("QUERY", "two", 6, true);
        r.push("STATS", "three", 7, false);
        assert_eq!(r.len(), 2);
        assert_eq!(r.pushed(), 3);
        let recent = r.recent(10);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].seq, 3);
        assert_eq!(recent[0].name, "STATS");
        assert!(!recent[0].ok);
        assert_eq!(recent[1].seq, 2);
    }

    #[test]
    fn ring_flattens_multiline_detail() {
        let mut r = SpanRing::new(4);
        r.push("QUERY", "SELECT 1\nFROM t\r\n", 1, true);
        let line = r.recent(1)[0].render();
        assert!(line.contains("detail=SELECT 1 FROM t"), "{line}");
        assert!(!line.contains('\n'), "{line}");
    }

    #[test]
    fn span_ids_are_process_unique() {
        let a = next_span_id();
        let b = next_span_id();
        assert!(b > a);
    }

    #[test]
    fn open_roots_survive_child_floods() {
        let mut r = SpanRing::new(2);
        let root = SpanRecord::root(7, 0, "QUERY", "SELECT 1");
        let root_id = root.id;
        let ctx = TraceContext {
            query_id: 7,
            parent_span: root_id,
        };
        r.begin_root(root);
        // Flood far past capacity: the open root must stay reachable.
        for i in 0..10 {
            r.record(SpanRecord::child(
                ctx,
                SpanKind::EnginePhase,
                0,
                "execute",
                "",
                i,
                true,
            ));
        }
        assert_eq!(r.open_len(), 1);
        let spans = r.spans_for_query(7);
        assert!(spans.iter().any(|s| s.id == root_id), "root evicted");
        r.finish_root(root_id, 123, true);
        assert_eq!(r.open_len(), 0);
        let spans = r.spans_for_query(7);
        let root = spans.iter().find(|s| s.id == root_id).expect("root");
        assert_eq!(root.elapsed_us, 123);
        assert_eq!(root.kind, SpanKind::Command);
        assert!(root.seq > 0);
    }

    #[test]
    fn shared_ring_eviction_is_safe_under_concurrent_writers() {
        // Many threads hammer one SharedSpanRing far past capacity while
        // roots are opened and finished concurrently. The ring must not
        // lose accounting (pushed = every finished span), must stay at
        // capacity, and every root must survive eviction until finished.
        const WRITERS: usize = 8;
        const PER_WRITER: u64 = 200;
        const CAPACITY: usize = 32;
        let ring = std::sync::Arc::new(SharedSpanRing::new(CAPACITY));
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let ring = std::sync::Arc::clone(&ring);
                std::thread::spawn(move || {
                    let query_id = w as u64 + 1;
                    let shard = w as u16;
                    let root = SpanRecord::root(query_id, shard, "QUERY", "flood");
                    let root_id = root.id;
                    let ctx = TraceContext {
                        query_id,
                        parent_span: root_id,
                    };
                    ring.begin_root(root);
                    for i in 0..PER_WRITER {
                        ring.record(SpanRecord::child(
                            ctx,
                            SpanKind::EnginePhase,
                            shard,
                            "execute",
                            "",
                            i,
                            true,
                        ));
                    }
                    // The open root is pinned: visible even though the
                    // ring churned through WRITERS * PER_WRITER children.
                    assert!(
                        ring.spans_for_query(query_id)
                            .iter()
                            .any(|s| s.id == root_id),
                        "open root evicted under concurrent floods"
                    );
                    ring.finish_root(root_id, 999, true);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // children + one finished root per writer, all accounted for.
        assert_eq!(ring.pushed(), (WRITERS as u64) * (PER_WRITER + 1));
        assert_eq!(ring.len(), CAPACITY);
        assert_eq!(ring.open_len(), 0);
        // Sequence numbers in the retained window are unique and the
        // newest-first contract holds after the melee.
        let recent = ring.recent(CAPACITY);
        assert_eq!(recent.len(), CAPACITY);
        assert!(
            recent.windows(2).all(|w| w[0].seq > w[1].seq),
            "recent() must stay strictly newest-first"
        );
    }

    #[test]
    fn render_keeps_seq_first_and_detail_last() {
        let mut r = SpanRing::new(4);
        r.record(SpanRecord {
            id: next_span_id(),
            parent: 3,
            query_id: 9,
            kind: SpanKind::SgExport,
            shard: 2,
            name: "EXPORT".into(),
            detail: "t0 t1".into(),
            elapsed_us: 42,
            ok: true,
        });
        let line = r.recent(1)[0].render();
        assert!(line.starts_with("span seq=1 "), "{line}");
        assert!(line.contains("qid=q9"), "{line}");
        assert!(line.contains("kind=sg-export"), "{line}");
        assert!(line.contains("shard=2"), "{line}");
        assert!(line.ends_with("detail=t0 t1"), "{line}");
    }
}
