//! Deterministic failpoints.
//!
//! A failpoint is a named site in production code where a test (or an
//! operator, via the `ELEPHANT_FAULTS` environment variable) can inject a
//! failure: `fire("wal.append")` returns an error when the site is armed
//! and `Ok(())` otherwise. Policies are deterministic — probabilistic
//! injection draws from the workspace [`Prng`] under a configurable seed —
//! so a failing chaos schedule replays exactly.
//!
//! The registry is process-global (faults cut across crate boundaries: the
//! store fires them, the server reads the counters) and designed so the
//! **disabled path costs one relaxed atomic load**: when no site is armed,
//! [`fire`] reads a single counter and returns. Everything else — the site
//! table, the PRNG, environment parsing — lives behind a mutex on the slow
//! path.
//!
//! Policy grammar (used programmatically and in `ELEPHANT_FAULTS`):
//!
//! ```text
//! spec   := site '=' policy (',' site '=' policy)*
//! policy := 'off' | 'error' | 'error_once' | 'prob:P' | 'delay_us:N'
//! ```
//!
//! `error` fails every hit, `error_once` fails exactly one hit then
//! disarms, `prob:P` fails each hit with probability `P` (seeded, see
//! [`set_seed`] / `ELEPHANT_FAULT_SEED`), and `delay_us:N` sleeps `N`
//! microseconds per hit without failing (latency injection).

use crate::rng::Prng;
use std::collections::HashMap;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Environment variable holding a failpoint spec applied on first use.
pub const FAULTS_ENV: &str = "ELEPHANT_FAULTS";
/// Environment variable seeding probabilistic policies.
pub const FAULT_SEED_ENV: &str = "ELEPHANT_FAULT_SEED";

/// Sentinel meaning "registry not initialized yet": forces the first
/// [`fire`] onto the slow path so the environment spec gets applied.
const UNINIT: u64 = u64::MAX;

/// Number of currently armed (non-`Off`) sites; `UNINIT` before first use.
static ARMED_SITES: AtomicU64 = AtomicU64::new(UNINIT);
/// Total faults injected (errors and delays) since process start.
static INJECTED: AtomicU64 = AtomicU64::new(0);
static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();

/// What a site does when hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPolicy {
    /// Disarmed: hits pass through.
    Off,
    /// Every hit fails.
    Error,
    /// Exactly one hit fails, then the site disarms itself.
    ErrorOnce,
    /// Each hit fails with this probability (seeded, deterministic).
    Prob(f64),
    /// Each hit sleeps this many microseconds and then succeeds.
    DelayUs(u64),
}

impl FromStr for FaultPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<FaultPolicy, String> {
        let s = s.trim();
        match s {
            "off" => return Ok(FaultPolicy::Off),
            "error" => return Ok(FaultPolicy::Error),
            "error_once" => return Ok(FaultPolicy::ErrorOnce),
            _ => {}
        }
        if let Some(p) = s.strip_prefix("prob:") {
            return match p.parse::<f64>() {
                Ok(p) if (0.0..=1.0).contains(&p) => Ok(FaultPolicy::Prob(p)),
                _ => Err(format!("bad probability '{p}' (expected 0..=1)")),
            };
        }
        if let Some(n) = s.strip_prefix("delay_us:") {
            return match n.parse::<u64>() {
                Ok(n) => Ok(FaultPolicy::DelayUs(n)),
                Err(_) => Err(format!("bad delay '{n}' (expected microseconds)")),
            };
        }
        Err(format!(
            "bad fault policy '{s}' (expected off, error, error_once, prob:P, or delay_us:N)"
        ))
    }
}

/// The error a fired failpoint produces. Carries the site name so layers
/// above can report *which* injected fault they absorbed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The site that fired.
    pub site: String,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at {}", self.site)
    }
}

impl std::error::Error for InjectedFault {}

#[derive(Debug)]
struct SiteState {
    policy: FaultPolicy,
    hits: u64,
}

#[derive(Debug)]
struct Registry {
    sites: HashMap<String, SiteState>,
    prng: Prng,
}

impl Registry {
    fn armed_count(&self) -> u64 {
        self.sites
            .values()
            .filter(|s| s.policy != FaultPolicy::Off)
            .count() as u64
    }
}

fn registry() -> &'static Mutex<Registry> {
    REGISTRY.get_or_init(|| {
        let seed = std::env::var(FAULT_SEED_ENV)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0xE1EFA);
        let mut reg = Registry {
            sites: HashMap::new(),
            prng: Prng::new(seed),
        };
        if let Ok(spec) = std::env::var(FAULTS_ENV) {
            // A malformed env spec must not take the process down; report
            // and continue with whatever parsed.
            if let Err(e) = apply_spec(&mut reg, &spec) {
                eprintln!("[faults] ignoring bad {FAULTS_ENV} entry: {e}");
            }
        }
        ARMED_SITES.store(reg.armed_count(), Ordering::Relaxed);
        Mutex::new(reg)
    })
}

fn apply_spec(reg: &mut Registry, spec: &str) -> Result<usize, String> {
    let mut applied = 0;
    for part in spec.split([',', ';']) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (site, policy) = part
            .split_once('=')
            .ok_or_else(|| format!("'{part}' is not site=policy"))?;
        let policy: FaultPolicy = policy.parse()?;
        reg.sites
            .insert(site.trim().to_string(), SiteState { policy, hits: 0 });
        applied += 1;
    }
    Ok(applied)
}

/// Hit the failpoint `site`.
///
/// Returns `Err` when an armed error policy fires; sleeps and returns `Ok`
/// for delay policies; returns `Ok` immediately — one relaxed atomic load —
/// when no site in the process is armed.
#[inline]
pub fn fire(site: &str) -> Result<(), InjectedFault> {
    if ARMED_SITES.load(Ordering::Relaxed) == 0 {
        return Ok(());
    }
    fire_slow(site)
}

#[cold]
fn fire_slow(site: &str) -> Result<(), InjectedFault> {
    let mut reg = registry().lock().expect("fault registry poisoned");
    let Some(state) = reg.sites.get(site) else {
        return Ok(());
    };
    let policy = state.policy;
    let inject = match policy {
        FaultPolicy::Off => false,
        FaultPolicy::Error | FaultPolicy::ErrorOnce | FaultPolicy::DelayUs(_) => true,
        FaultPolicy::Prob(p) => reg.prng.chance(p),
    };
    if !inject {
        return Ok(());
    }
    let state = reg.sites.get_mut(site).expect("looked up above");
    state.hits += 1;
    if policy == FaultPolicy::ErrorOnce {
        state.policy = FaultPolicy::Off;
        let armed = reg.armed_count();
        ARMED_SITES.store(armed, Ordering::Relaxed);
    }
    drop(reg);
    INJECTED.fetch_add(1, Ordering::Relaxed);
    match policy {
        FaultPolicy::DelayUs(us) => {
            std::thread::sleep(std::time::Duration::from_micros(us));
            Ok(())
        }
        _ => Err(InjectedFault {
            site: site.to_string(),
        }),
    }
}

/// Arm (or disarm, with [`FaultPolicy::Off`]) one site.
pub fn set(site: &str, policy: FaultPolicy) {
    let mut reg = registry().lock().expect("fault registry poisoned");
    reg.sites
        .insert(site.to_string(), SiteState { policy, hits: 0 });
    let armed = reg.armed_count();
    ARMED_SITES.store(armed, Ordering::Relaxed);
}

/// Disarm one site (keeps its hit counter).
pub fn clear(site: &str) {
    let mut reg = registry().lock().expect("fault registry poisoned");
    if let Some(state) = reg.sites.get_mut(site) {
        state.policy = FaultPolicy::Off;
    }
    let armed = reg.armed_count();
    ARMED_SITES.store(armed, Ordering::Relaxed);
}

/// Disarm every site and forget their hit counters. The cumulative
/// [`injected`] total is preserved (it is a process-lifetime metric).
pub fn clear_all() {
    let mut reg = registry().lock().expect("fault registry poisoned");
    reg.sites.clear();
    ARMED_SITES.store(0, Ordering::Relaxed);
}

/// Apply a `site=policy,site=policy` spec (the `ELEPHANT_FAULTS` grammar).
/// Returns how many sites were configured.
pub fn configure(spec: &str) -> Result<usize, String> {
    let mut reg = registry().lock().expect("fault registry poisoned");
    let n = apply_spec(&mut reg, spec)?;
    let armed = reg.armed_count();
    ARMED_SITES.store(armed, Ordering::Relaxed);
    Ok(n)
}

/// Reseed the PRNG behind probabilistic policies (chaos-schedule replay).
pub fn set_seed(seed: u64) {
    let mut reg = registry().lock().expect("fault registry poisoned");
    reg.prng = Prng::new(seed);
}

/// Total faults injected (errors fired plus delays served) since process
/// start. Monotonic; surfaced in server `STATS`.
pub fn injected() -> u64 {
    // Touch the registry so env-armed processes report accurately even
    // before the first fire.
    let _ = registry();
    INJECTED.load(Ordering::Relaxed)
}

/// Times `site` actually injected (not mere pass-through hits). Zero for
/// unknown sites.
pub fn hits(site: &str) -> u64 {
    let reg = registry().lock().expect("fault registry poisoned");
    reg.sites.get(site).map_or(0, |s| s.hits)
}

/// Number of currently armed sites (tests, diagnostics).
pub fn armed() -> u64 {
    let _ = registry();
    ARMED_SITES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; tests that arm sites serialize on
    /// this lock so parallel test threads cannot see each other's faults.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        clear_all();
        guard
    }

    #[test]
    fn policies_parse() {
        assert_eq!("off".parse::<FaultPolicy>().unwrap(), FaultPolicy::Off);
        assert_eq!("error".parse::<FaultPolicy>().unwrap(), FaultPolicy::Error);
        assert_eq!(
            "error_once".parse::<FaultPolicy>().unwrap(),
            FaultPolicy::ErrorOnce
        );
        assert_eq!(
            "prob:0.25".parse::<FaultPolicy>().unwrap(),
            FaultPolicy::Prob(0.25)
        );
        assert_eq!(
            "delay_us:150".parse::<FaultPolicy>().unwrap(),
            FaultPolicy::DelayUs(150)
        );
        assert!("prob:1.5".parse::<FaultPolicy>().is_err());
        assert!("explode".parse::<FaultPolicy>().is_err());
    }

    #[test]
    fn unarmed_sites_pass_through() {
        let _g = locked();
        assert!(fire("test.nowhere").is_ok());
        assert_eq!(armed(), 0);
    }

    #[test]
    fn error_fires_until_cleared() {
        let _g = locked();
        set("test.err", FaultPolicy::Error);
        assert!(fire("test.err").is_err());
        assert!(fire("test.err").is_err());
        assert_eq!(hits("test.err"), 2);
        clear("test.err");
        assert!(fire("test.err").is_ok());
        assert_eq!(hits("test.err"), 2, "pass-throughs are not hits");
        clear_all();
    }

    #[test]
    fn error_once_disarms_itself() {
        let _g = locked();
        set("test.once", FaultPolicy::ErrorOnce);
        assert_eq!(armed(), 1);
        let err = fire("test.once").unwrap_err();
        assert_eq!(err.site, "test.once");
        assert_eq!(err.to_string(), "injected fault at test.once");
        assert!(fire("test.once").is_ok());
        assert_eq!(armed(), 0, "fired once then disarmed");
        assert_eq!(hits("test.once"), 1);
        clear_all();
    }

    #[test]
    fn prob_is_seeded_and_deterministic() {
        let _g = locked();
        let run = || {
            set_seed(42);
            set("test.prob", FaultPolicy::Prob(0.5));
            let pattern: Vec<bool> = (0..64).map(|_| fire("test.prob").is_err()).collect();
            clear_all();
            pattern
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same schedule");
        let fails = a.iter().filter(|x| **x).count();
        assert!((10..=54).contains(&fails), "p=0.5 fired {fails}/64");
    }

    #[test]
    fn delay_injects_latency_not_failure() {
        let _g = locked();
        set("test.delay", FaultPolicy::DelayUs(2_000));
        let before = injected();
        let started = std::time::Instant::now();
        assert!(fire("test.delay").is_ok());
        assert!(started.elapsed() >= std::time::Duration::from_micros(1_500));
        assert_eq!(injected(), before + 1, "delays count as injections");
        clear_all();
    }

    #[test]
    fn configure_spec_round_trips() {
        let _g = locked();
        let n = configure("test.a=error_once, test.b=delay_us:1; test.c=off").unwrap();
        assert_eq!(n, 3);
        assert_eq!(armed(), 2, "off entries do not arm");
        assert!(configure("garbage").is_err());
        assert!(configure("test.x=warp_speed").is_err());
        clear_all();
    }
}
