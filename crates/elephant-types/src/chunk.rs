//! In-memory columnar chunks: typed vectors plus null bitmaps.
//!
//! A [`Column`] is the in-memory twin of one ELSNP001 snapshot *page*: the
//! same five encodings (`int` = raw i64, `float` = raw f64 bits, `bool`,
//! `text`, and a generic tagged-[`Value`] fallback for mixed or array
//! columns), the same null bitmap convention (bit `i` of byte `i/8`, LSB
//! first, a **set** bit marks NULL), and a byte-identical serialized form —
//! [`Column::encode_page`] produces exactly the page bytes the snapshot
//! writer has always emitted, and [`Column::decode_page`] reads them back.
//! Snapshots therefore load straight into executable chunks, and the
//! vectorized executor's working representation round-trips through
//! checkpoints without a conversion layer.
//!
//! Dense layout: the typed vectors hold one slot per row, with null
//! positions occupied by a type default (0, 0.0, false, "") so kernels can
//! iterate without branching on validity; nullness lives only in the
//! bitmap. The serialized page still stores non-null cells only, exactly as
//! before.
//!
//! A [`ColumnChunk`] is a batch of rows as a set of reference-counted
//! columns — the unit the batch-at-a-time executor passes between
//! operators. `Rc` makes column-preserving operators (projection of a bare
//! column reference, filters that keep a column untouched) free.

use crate::binary::{put_f64, put_i64, put_str, put_value};
use crate::error::{Error, Result};
use crate::{ByteReader, Value};
use std::rc::Rc;

/// Page-encoding tags shared with the ELSNP001 snapshot format.
pub mod page_tag {
    /// Tagged [`crate::Value`] cells (mixed, array, or all-null columns).
    pub const GENERIC: u8 = 0;
    /// Raw little-endian i64 cells.
    pub const INT: u8 = 1;
    /// Raw little-endian f64 bit patterns.
    pub const FLOAT: u8 = 2;
    /// One byte per cell (0 or 1).
    pub const BOOL: u8 = 3;
    /// u32-length-prefixed UTF-8 cells.
    pub const TEXT: u8 = 4;
}

/// Null bitmap of one column: bit `i` of byte `i/8` (LSB first), **set**
/// means NULL — the exact on-disk convention of ELSNP001 pages.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NullBitmap {
    bytes: Vec<u8>,
    len: usize,
    nulls: usize,
}

impl NullBitmap {
    /// An all-valid bitmap covering `len` rows.
    pub fn new_valid(len: usize) -> NullBitmap {
        NullBitmap {
            bytes: vec![0u8; len.div_ceil(8)],
            len,
            nulls: 0,
        }
    }

    /// Rebuild from raw page bytes (must span `ceil(len/8)` bytes).
    pub fn from_bytes(bytes: Vec<u8>, len: usize) -> NullBitmap {
        let nulls = (0..len)
            .filter(|i| bytes[i / 8] & (1 << (i % 8)) != 0)
            .count();
        NullBitmap { bytes, len, nulls }
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when row `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.bytes[i / 8] & (1 << (i % 8)) != 0
    }

    /// Mark row `i` NULL.
    #[inline]
    pub fn set_null(&mut self, i: usize) {
        let mask = 1 << (i % 8);
        if self.bytes[i / 8] & mask == 0 {
            self.bytes[i / 8] |= mask;
            self.nulls += 1;
        }
    }

    /// Number of NULL rows (kernels skip the null branch when this is 0).
    pub fn null_count(&self) -> usize {
        self.nulls
    }

    /// True when no row is NULL.
    pub fn all_valid(&self) -> bool {
        self.nulls == 0
    }

    /// The raw bitmap bytes, as stored in a snapshot page.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// The typed cell storage of one [`Column`], dense (one slot per row, null
/// positions hold a type default). Variants map 1:1 onto the snapshot page
/// tags in [`page_tag`].
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// All non-null cells are `Value::Int`.
    Int(Vec<i64>),
    /// All non-null cells are `Value::Float`.
    Float(Vec<f64>),
    /// All non-null cells are `Value::Bool`.
    Bool(Vec<bool>),
    /// All non-null cells are `Value::Text`.
    Text(Vec<String>),
    /// Mixed, array-typed, or all-null cells, stored as tagged values.
    Generic(Vec<Value>),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Text(v) => v.len(),
            ColumnData::Generic(v) => v.len(),
        }
    }

    /// The snapshot page tag this storage serializes under.
    pub fn tag(&self) -> u8 {
        match self {
            ColumnData::Int(_) => page_tag::INT,
            ColumnData::Float(_) => page_tag::FLOAT,
            ColumnData::Bool(_) => page_tag::BOOL,
            ColumnData::Text(_) => page_tag::TEXT,
            ColumnData::Generic(_) => page_tag::GENERIC,
        }
    }
}

/// One column of a batch: dense typed storage plus a null bitmap.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: ColumnData,
    nulls: NullBitmap,
}

impl Column {
    /// Build from explicit storage and bitmap (lengths must agree).
    pub fn new(data: ColumnData, nulls: NullBitmap) -> Column {
        debug_assert_eq!(data.len(), nulls.len());
        Column { data, nulls }
    }

    /// Build column `col` from row-major `rows`, choosing the densest
    /// typed representation every non-null cell fits — the same choice the
    /// snapshot writer makes (arrays or mixed types fall back to generic;
    /// an all-null column is generic).
    pub fn from_rows(rows: &[Vec<Value>], col: usize) -> Column {
        Column::from_cells(rows.len(), |i| &rows[i][col])
    }

    /// Build from a slice of cells (one column already extracted).
    pub fn from_values(cells: &[Value]) -> Column {
        Column::from_cells(cells.len(), |i| &cells[i])
    }

    fn from_cells<'a>(len: usize, cell: impl Fn(usize) -> &'a Value) -> Column {
        // Mirror the snapshot writer's pick_page_tag: first non-null cell
        // proposes a tag, any disagreement (or an array) forces generic.
        let mut tag: Option<u8> = None;
        for i in 0..len {
            let want = match cell(i) {
                Value::Null => continue,
                Value::Int(_) => page_tag::INT,
                Value::Float(_) => page_tag::FLOAT,
                Value::Bool(_) => page_tag::BOOL,
                Value::Text(_) => page_tag::TEXT,
                Value::Array(_) => {
                    tag = Some(page_tag::GENERIC);
                    break;
                }
            };
            match tag {
                None => tag = Some(want),
                Some(t) if t == want => {}
                Some(_) => {
                    tag = Some(page_tag::GENERIC);
                    break;
                }
            }
        }
        let tag = tag.unwrap_or(page_tag::GENERIC);
        let mut nulls = NullBitmap::new_valid(len);
        let data = match tag {
            page_tag::INT => {
                let mut v = Vec::with_capacity(len);
                for i in 0..len {
                    match cell(i) {
                        Value::Int(x) => v.push(*x),
                        _ => {
                            nulls.set_null(i);
                            v.push(0);
                        }
                    }
                }
                ColumnData::Int(v)
            }
            page_tag::FLOAT => {
                let mut v = Vec::with_capacity(len);
                for i in 0..len {
                    match cell(i) {
                        Value::Float(x) => v.push(*x),
                        _ => {
                            nulls.set_null(i);
                            v.push(0.0);
                        }
                    }
                }
                ColumnData::Float(v)
            }
            page_tag::BOOL => {
                let mut v = Vec::with_capacity(len);
                for i in 0..len {
                    match cell(i) {
                        Value::Bool(x) => v.push(*x),
                        _ => {
                            nulls.set_null(i);
                            v.push(false);
                        }
                    }
                }
                ColumnData::Bool(v)
            }
            page_tag::TEXT => {
                let mut v = Vec::with_capacity(len);
                for i in 0..len {
                    match cell(i) {
                        Value::Text(x) => v.push(x.clone()),
                        _ => {
                            nulls.set_null(i);
                            v.push(String::new());
                        }
                    }
                }
                ColumnData::Text(v)
            }
            _ => {
                let mut v = Vec::with_capacity(len);
                for i in 0..len {
                    let c = cell(i);
                    if c.is_null() {
                        nulls.set_null(i);
                    }
                    v.push(c.clone());
                }
                ColumnData::Generic(v)
            }
        };
        Column { data, nulls }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.nulls.len()
    }

    /// True when the column holds zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The typed storage.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The null bitmap.
    pub fn nulls(&self) -> &NullBitmap {
        &self.nulls
    }

    /// True when row `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.nulls.is_null(i)
    }

    /// Materialize cell `i` as a [`Value`] (NULL positions yield
    /// `Value::Null` regardless of the dense slot's default).
    pub fn get(&self, i: usize) -> Value {
        if self.nulls.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Text(v) => Value::Text(v[i].clone()),
            ColumnData::Generic(v) => v[i].clone(),
        }
    }

    /// Serialize as one ELSNP001 snapshot page: tag byte, null bitmap,
    /// then non-null cells only — byte-identical to the snapshot writer's
    /// historical output.
    pub fn encode_page(&self, buf: &mut Vec<u8>) {
        buf.push(self.data.tag());
        buf.extend_from_slice(self.nulls.as_bytes());
        match &self.data {
            ColumnData::Int(v) => {
                for (i, x) in v.iter().enumerate() {
                    if !self.nulls.is_null(i) {
                        put_i64(buf, *x);
                    }
                }
            }
            ColumnData::Float(v) => {
                for (i, x) in v.iter().enumerate() {
                    if !self.nulls.is_null(i) {
                        put_f64(buf, *x);
                    }
                }
            }
            ColumnData::Bool(v) => {
                for (i, x) in v.iter().enumerate() {
                    if !self.nulls.is_null(i) {
                        buf.push(*x as u8);
                    }
                }
            }
            ColumnData::Text(v) => {
                for (i, x) in v.iter().enumerate() {
                    if !self.nulls.is_null(i) {
                        put_str(buf, x);
                    }
                }
            }
            ColumnData::Generic(v) => {
                for (i, x) in v.iter().enumerate() {
                    if !self.nulls.is_null(i) {
                        put_value(buf, x);
                    }
                }
            }
        }
    }

    /// Decode one snapshot page spanning `nrows` rows.
    pub fn decode_page(r: &mut ByteReader<'_>, nrows: usize) -> Result<Column> {
        let tag = r.u8()?;
        let bitmap = r.bytes(nrows.div_ceil(8))?.to_vec();
        let nulls = NullBitmap::from_bytes(bitmap, nrows);
        let data = match tag {
            page_tag::INT => {
                let mut v = Vec::with_capacity(nrows);
                for i in 0..nrows {
                    v.push(if nulls.is_null(i) { 0 } else { r.i64()? });
                }
                ColumnData::Int(v)
            }
            page_tag::FLOAT => {
                let mut v = Vec::with_capacity(nrows);
                for i in 0..nrows {
                    v.push(if nulls.is_null(i) { 0.0 } else { r.f64()? });
                }
                ColumnData::Float(v)
            }
            page_tag::BOOL => {
                let mut v = Vec::with_capacity(nrows);
                for i in 0..nrows {
                    v.push(if nulls.is_null(i) {
                        false
                    } else {
                        r.u8()? != 0
                    });
                }
                ColumnData::Bool(v)
            }
            page_tag::TEXT => {
                let mut v = Vec::with_capacity(nrows);
                for i in 0..nrows {
                    v.push(if nulls.is_null(i) {
                        String::new()
                    } else {
                        r.str()?
                    });
                }
                ColumnData::Text(v)
            }
            page_tag::GENERIC => {
                let mut v = Vec::with_capacity(nrows);
                for i in 0..nrows {
                    v.push(if nulls.is_null(i) {
                        Value::Null
                    } else {
                        r.value()?
                    });
                }
                ColumnData::Generic(v)
            }
            other => return Err(Error::Codec(format!("unknown page tag {other}"))),
        };
        Ok(Column { data, nulls })
    }
}

/// A batch of rows as reference-counted columns — the unit of work of the
/// vectorized executor.
#[derive(Debug, Clone, Default)]
pub struct ColumnChunk {
    columns: Vec<Rc<Column>>,
    len: usize,
}

impl ColumnChunk {
    /// Build from shared columns (all must have the same length; a
    /// zero-column chunk carries `len` as its row count).
    pub fn new(columns: Vec<Rc<Column>>, len: usize) -> ColumnChunk {
        debug_assert!(columns.iter().all(|c| c.len() == len));
        ColumnChunk { columns, len }
    }

    /// Columnarize `width` columns of row-major `rows`.
    pub fn from_rows(rows: &[Vec<Value>], width: usize) -> ColumnChunk {
        let columns = (0..width)
            .map(|c| Rc::new(Column::from_rows(rows, c)))
            .collect();
        ColumnChunk {
            columns,
            len: rows.len(),
        }
    }

    /// Number of rows in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the batch holds zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Column `i`.
    pub fn column(&self, i: usize) -> &Rc<Column> {
        &self.columns[i]
    }

    /// All columns, in order.
    pub fn columns(&self) -> &[Rc<Column>] {
        &self.columns
    }

    /// Materialize row `i` as a `Vec<Value>`.
    pub fn get_row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// Materialize the whole batch row-major (the fallback bridge).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.len).map(|i| self.get_row(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(cells: &[Value]) -> Column {
        let col = Column::from_values(cells);
        let mut buf = Vec::new();
        col.encode_page(&mut buf);
        let mut r = ByteReader::new(&buf);
        let back = Column::decode_page(&mut r, cells.len()).unwrap();
        assert!(r.is_empty());
        assert_eq!(col, back);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(&back.get(i), c);
        }
        back
    }

    #[test]
    fn typed_columns_round_trip() {
        let ints = roundtrip(&[Value::Int(1), Value::Null, Value::Int(-3)]);
        assert_eq!(ints.data().tag(), page_tag::INT);
        assert_eq!(ints.nulls().null_count(), 1);

        let floats = roundtrip(&[Value::Float(-0.0), Value::Float(1.5), Value::Null]);
        assert_eq!(floats.data().tag(), page_tag::FLOAT);
        // -0.0 survives bit-exactly.
        match floats.data() {
            ColumnData::Float(v) => assert!(v[0].is_sign_negative()),
            other => panic!("expected float storage, got {other:?}"),
        }

        let bools = roundtrip(&[Value::Bool(true), Value::Bool(false)]);
        assert_eq!(bools.data().tag(), page_tag::BOOL);

        let texts = roundtrip(&[Value::text("a"), Value::Null, Value::text("")]);
        assert_eq!(texts.data().tag(), page_tag::TEXT);
    }

    #[test]
    fn mixed_and_all_null_columns_are_generic() {
        let mixed = roundtrip(&[Value::Int(1), Value::text("two")]);
        assert_eq!(mixed.data().tag(), page_tag::GENERIC);

        let arrays = roundtrip(&[Value::Array(vec![Value::Int(3)])]);
        assert_eq!(arrays.data().tag(), page_tag::GENERIC);

        let nulls = roundtrip(&[Value::Null, Value::Null]);
        assert_eq!(nulls.data().tag(), page_tag::GENERIC);
        assert_eq!(nulls.nulls().null_count(), 2);

        roundtrip(&[]);
    }

    #[test]
    fn chunk_round_trips_rows() {
        let rows = vec![
            vec![Value::Int(1), Value::text("a"), Value::Null],
            vec![Value::Int(2), Value::Null, Value::Float(0.5)],
        ];
        let chunk = ColumnChunk::from_rows(&rows, 3);
        assert_eq!(chunk.len(), 2);
        assert_eq!(chunk.width(), 3);
        assert_eq!(chunk.get_row(1), rows[1]);
        assert_eq!(chunk.to_rows(), rows);
    }

    #[test]
    fn bitmap_counts_and_flags() {
        let mut b = NullBitmap::new_valid(10);
        assert!(b.all_valid());
        b.set_null(3);
        b.set_null(3);
        b.set_null(9);
        assert_eq!(b.null_count(), 2);
        assert!(b.is_null(3) && b.is_null(9) && !b.is_null(0));
        let rebuilt = NullBitmap::from_bytes(b.as_bytes().to_vec(), 10);
        assert_eq!(rebuilt, b);
    }
}
