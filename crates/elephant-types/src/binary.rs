//! Binary encoding of [`Value`] and [`DataType`] cells.
//!
//! The durable storage layer (`elephant-store`) serializes cells into WAL
//! records and snapshot pages; both sides of that pipe live here so every
//! crate agrees on one byte format. The encoding is little-endian,
//! tag-prefixed, and self-describing per value:
//!
//! ```text
//! value   := tag:u8 payload
//! tag 0   : NULL                (no payload)
//! tag 1   : Bool                u8 (0/1)
//! tag 2   : Int                 i64 LE
//! tag 3   : Float               f64 bit pattern LE (NaN payloads preserved)
//! tag 4   : Text                u32 LE byte length + UTF-8 bytes
//! tag 5   : Array               u32 LE element count + elements
//!
//! dtype   := tag:u8 [elem-dtype when tag = 5]
//! tag 0..4: Int Float Text Bool Serial ; tag 5: Array(elem)
//! ```

use crate::{DataType, Error, Result, Value};

/// Append a `u32` little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `i64` little-endian.
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its IEEE-754 bit pattern (round-trips NaN payloads
/// and signed zeros exactly).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Append one tagged [`Value`].
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Bool(b) => {
            buf.push(1);
            buf.push(*b as u8);
        }
        Value::Int(i) => {
            buf.push(2);
            put_i64(buf, *i);
        }
        Value::Float(f) => {
            buf.push(3);
            put_f64(buf, *f);
        }
        Value::Text(s) => {
            buf.push(4);
            put_str(buf, s);
        }
        Value::Array(items) => {
            buf.push(5);
            put_u32(buf, items.len() as u32);
            for item in items {
                put_value(buf, item);
            }
        }
    }
}

/// Append one tagged [`DataType`].
pub fn put_datatype(buf: &mut Vec<u8>, t: &DataType) {
    match t {
        DataType::Int => buf.push(0),
        DataType::Float => buf.push(1),
        DataType::Text => buf.push(2),
        DataType::Bool => buf.push(3),
        DataType::Serial => buf.push(4),
        DataType::Array(elem) => {
            buf.push(5);
            put_datatype(buf, elem);
        }
    }
}

/// A bounds-checked reader over an encoded byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn truncated(what: &'static str) -> Error {
    Error::Codec(format!("truncated input reading {what}"))
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(truncated(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a `u32` little-endian.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Read a `u64` little-endian.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read an `i64` little-endian.
    pub fn i64(&mut self) -> Result<i64> {
        let b = self.take(8, "i64")?;
        Ok(i64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64> {
        let b = self.take(8, "f64")?;
        Ok(f64::from_bits(u64::from_le_bytes(
            b.try_into().expect("8 bytes"),
        )))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let b = self.take(n, "string payload")?;
        String::from_utf8(b.to_vec()).map_err(|_| Error::Codec("string is not UTF-8".into()))
    }

    /// Read a raw byte slice of length `n`.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n, "byte run")
    }

    /// Read one tagged [`Value`].
    pub fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.u8()? != 0),
            2 => Value::Int(self.i64()?),
            3 => Value::Float(self.f64()?),
            4 => Value::Text(self.str()?),
            5 => {
                let n = self.u32()? as usize;
                if n > self.remaining() {
                    // Each element takes at least a tag byte; a count larger
                    // than the remaining bytes is corruption, not a huge array.
                    return Err(Error::Codec(format!("array count {n} exceeds input")));
                }
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.value()?);
                }
                Value::Array(items)
            }
            t => return Err(Error::Codec(format!("unknown value tag {t}"))),
        })
    }

    /// Read one tagged [`DataType`].
    pub fn datatype(&mut self) -> Result<DataType> {
        Ok(match self.u8()? {
            0 => DataType::Int,
            1 => DataType::Float,
            2 => DataType::Text,
            3 => DataType::Bool,
            4 => DataType::Serial,
            5 => DataType::Array(Box::new(self.datatype()?)),
            t => return Err(Error::Codec(format!("unknown datatype tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) -> Value {
        let mut buf = Vec::new();
        put_value(&mut buf, v);
        let mut r = ByteReader::new(&buf);
        let out = r.value().unwrap();
        assert!(r.is_empty(), "trailing bytes after {v:?}");
        out
    }

    #[test]
    fn values_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(-0.0),
            Value::Float(f64::INFINITY),
            Value::text(""),
            Value::text("o'brien — naïve"),
            Value::Array(vec![Value::Int(1), Value::Null, Value::text("x")]),
        ] {
            assert_eq!(round_trip(&v), v);
        }
    }

    #[test]
    fn nan_bit_pattern_preserved() {
        let nan = f64::from_bits(0x7ff8_0000_0000_1234);
        let mut buf = Vec::new();
        put_value(&mut buf, &Value::Float(nan));
        let got = ByteReader::new(&buf).value().unwrap();
        match got {
            Value::Float(f) => assert_eq!(f.to_bits(), nan.to_bits()),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn datatypes_round_trip() {
        for t in [
            DataType::Int,
            DataType::Float,
            DataType::Text,
            DataType::Bool,
            DataType::Serial,
            DataType::Array(Box::new(DataType::Array(Box::new(DataType::Text)))),
        ] {
            let mut buf = Vec::new();
            put_datatype(&mut buf, &t);
            assert_eq!(ByteReader::new(&buf).datatype().unwrap(), t);
        }
    }

    #[test]
    fn truncated_and_bad_tags_error() {
        assert!(ByteReader::new(&[]).value().is_err());
        assert!(ByteReader::new(&[2, 1, 2]).value().is_err()); // short i64
        assert!(ByteReader::new(&[9]).value().is_err()); // unknown tag
        let mut buf = Vec::new();
        put_str(&mut buf, "hello");
        assert!(ByteReader::new(&buf[..4]).str().is_err());
        // Array claiming more elements than bytes remain.
        assert!(ByteReader::new(&[5, 255, 255, 255, 255]).value().is_err());
    }
}
