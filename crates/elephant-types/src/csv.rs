//! Minimal CSV reader/writer with pandas-compatible type inference.
//!
//! Used by both the dataframe's `read_csv` and the SQL engine's
//! `COPY ... FROM ... WITH (FORMAT CSV)`. Supports RFC-4180 quoting, custom
//! delimiters, `na_values` (the paper's pipelines use `na_values='?'`), and
//! the "headerless first column is the pandas row number" convention that the
//! compas/adult datasets rely on (paper §6).

use crate::{DataType, Error, Result, Value};
use std::fs;
use std::path::Path;

/// Options controlling CSV parsing.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// First row is a header (default true).
    pub header: bool,
    /// Strings parsed as NULL in addition to the empty string.
    pub na_values: Vec<String>,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: ',',
            header: true,
            na_values: Vec::new(),
        }
    }
}

impl CsvOptions {
    /// Add an `na_values` entry, pandas style.
    pub fn with_na(mut self, na: impl Into<String>) -> Self {
        self.na_values.push(na.into());
        self
    }
}

/// A parsed CSV file: typed columns plus cells.
#[derive(Debug, Clone)]
pub struct CsvTable {
    /// Column names (synthesised as `column_0`.. when `header=false`, except
    /// that a headerless leading row-number column is named `index_`).
    pub columns: Vec<String>,
    /// Inferred column types.
    pub types: Vec<DataType>,
    /// Row-major cells.
    pub rows: Vec<Vec<Value>>,
}

/// Read and type-infer a CSV file from disk.
pub fn read_csv(path: impl AsRef<Path>, opts: &CsvOptions) -> Result<CsvTable> {
    let text = fs::read_to_string(path.as_ref())?;
    read_csv_str(&text, opts)
}

/// Read and type-infer CSV content from a string.
pub fn read_csv_str(text: &str, opts: &CsvOptions) -> Result<CsvTable> {
    let mut records = parse_records(text, opts.delimiter)?;
    if records.is_empty() {
        return Ok(CsvTable {
            columns: Vec::new(),
            types: Vec::new(),
            rows: Vec::new(),
        });
    }
    let mut columns: Vec<String>;
    if opts.header {
        let header = records.remove(0);
        columns = header;
        let width = records.iter().map(Vec::len).max().unwrap_or(columns.len());
        // The mlinspect compas/adult CSVs carry an unnamed leading column of
        // pandas row numbers: the header has one fewer field than the data.
        if width == columns.len() + 1 {
            columns.insert(0, "index_".to_string());
        }
    } else {
        let width = records.iter().map(Vec::len).max().unwrap_or(0);
        columns = (0..width).map(|i| format!("column_{i}")).collect();
    }

    let ncols = columns.len();
    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(records.len());
    for rec in &records {
        if rec.len() != ncols {
            return Err(Error::Csv(format!(
                "row has {} fields, expected {ncols}",
                rec.len()
            )));
        }
        let row = rec
            .iter()
            .map(|field| raw_value(field, opts))
            .collect::<Vec<_>>();
        rows.push(row);
    }

    let types = infer_types(&rows, ncols);
    for row in &mut rows {
        for (cell, ty) in row.iter_mut().zip(&types) {
            *cell = coerce(cell, ty);
        }
    }
    Ok(CsvTable {
        columns,
        types,
        rows,
    })
}

/// Serialize rows back to CSV text (used by datagen and test fixtures).
pub fn write_csv(columns: &[String], rows: &[Vec<Value>], delimiter: char) -> String {
    let mut out = String::new();
    let escape = |s: &str| -> String {
        if s.contains(delimiter) || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    for (i, c) in columns.iter().enumerate() {
        if i > 0 {
            out.push(delimiter);
        }
        out.push_str(&escape(c));
    }
    out.push('\n');
    for row in rows {
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                out.push(delimiter);
            }
            match v {
                Value::Null => {}
                other => out.push_str(&escape(&other.to_string())),
            }
        }
        out.push('\n');
    }
    out
}

fn raw_value(field: &str, opts: &CsvOptions) -> Value {
    if field.is_empty() || opts.na_values.iter().any(|na| na == field) {
        Value::Null
    } else {
        Value::Text(field.to_string())
    }
}

fn infer_types(rows: &[Vec<Value>], ncols: usize) -> Vec<DataType> {
    (0..ncols)
        .map(|c| {
            let mut saw_any = false;
            let mut all_int = true;
            let mut all_float = true;
            for row in rows {
                let Value::Text(s) = &row[c] else { continue };
                saw_any = true;
                let t = s.trim();
                if t.parse::<i64>().is_err() {
                    all_int = false;
                }
                if t.parse::<f64>().is_err() {
                    all_float = false;
                    break;
                }
            }
            if !saw_any {
                DataType::Text
            } else if all_int {
                DataType::Int
            } else if all_float {
                DataType::Float
            } else {
                DataType::Text
            }
        })
        .collect()
}

fn coerce(v: &Value, ty: &DataType) -> Value {
    match v {
        Value::Text(s) => match ty {
            DataType::Int => Value::Int(s.trim().parse().unwrap_or_default()),
            DataType::Float => Value::Float(s.trim().parse().unwrap_or_default()),
            _ => v.clone(),
        },
        other => other.clone(),
    }
}

fn parse_records(text: &str, delim: char) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut saw_anything = false;

    while let Some(ch) = chars.next() {
        saw_anything = true;
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                c => field.push(c),
            }
        } else {
            match ch {
                '"' => in_quotes = true,
                c if c == delim => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {}
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                c => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(Error::Csv("unterminated quoted field".to_string()));
    }
    if saw_anything && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infers_int_float_text() {
        let t = read_csv_str("a,b,c\n1,1.5,x\n2,2.5,y\n", &CsvOptions::default()).unwrap();
        assert_eq!(
            t.types,
            vec![DataType::Int, DataType::Float, DataType::Text]
        );
        assert_eq!(
            t.rows[0],
            vec![Value::Int(1), Value::Float(1.5), "x".into()]
        );
    }

    #[test]
    fn na_values_become_null() {
        let opts = CsvOptions::default().with_na("?");
        let t = read_csv_str("a,b\n?,1\n,2\n", &opts).unwrap();
        assert_eq!(t.rows[0][0], Value::Null);
        assert_eq!(t.rows[1][0], Value::Null);
        // Column of all-null infers Text.
        assert_eq!(t.types[0], DataType::Text);
    }

    #[test]
    fn nulls_do_not_break_numeric_inference() {
        let opts = CsvOptions::default().with_na("?");
        let t = read_csv_str("a\n1\n?\n3\n", &opts).unwrap();
        assert_eq!(t.types[0], DataType::Int);
        assert_eq!(t.rows[1][0], Value::Null);
    }

    #[test]
    fn quoted_fields_with_delimiters() {
        let t = read_csv_str(
            "name,notes\n\"Doe, John\",\"said \"\"hi\"\"\"\n",
            &CsvOptions::default(),
        )
        .unwrap();
        assert_eq!(t.rows[0][0], "Doe, John".into());
        assert_eq!(t.rows[0][1], "said \"hi\"".into());
    }

    #[test]
    fn headerless_row_number_column_detected() {
        // compas/adult style: 2-field header, 3-field rows.
        let t = read_csv_str("age,sex\n0,25,m\n1,31,f\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.columns, vec!["index_", "age", "sex"]);
        assert_eq!(t.rows[1], vec![Value::Int(1), Value::Int(31), "f".into()]);
    }

    #[test]
    fn round_trip_write_read() {
        let cols = vec!["a".to_string(), "b".to_string()];
        let rows = vec![
            vec![Value::Int(1), Value::text("x,y")],
            vec![Value::Null, Value::text("plain")],
        ];
        let text = write_csv(&cols, &rows, ',');
        let t = read_csv_str(&text, &CsvOptions::default()).unwrap();
        assert_eq!(t.rows[0][1], "x,y".into());
        assert_eq!(t.rows[1][0], Value::Null);
    }

    #[test]
    fn ragged_row_is_error() {
        assert!(read_csv_str("a,b\n1\n", &CsvOptions::default()).is_err());
    }

    #[test]
    fn no_header_mode() {
        let opts = CsvOptions {
            header: false,
            ..Default::default()
        };
        let t = read_csv_str("1,2\n3,4\n", &opts).unwrap();
        assert_eq!(t.columns, vec!["column_0", "column_1"]);
        assert_eq!(t.rows.len(), 2);
    }
}
