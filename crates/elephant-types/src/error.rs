//! Error type shared across the workspace's substrate layers.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the shared type layer (value coercion, CSV I/O).
#[derive(Debug)]
pub enum Error {
    /// A value could not be coerced to the requested type.
    TypeMismatch {
        /// What the operation expected.
        expected: &'static str,
        /// Human-readable rendering of what it got.
        got: String,
    },
    /// Malformed CSV input.
    Csv(String),
    /// Malformed binary encoding (WAL records, snapshot pages).
    Codec(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            Error::Csv(msg) => write!(f, "csv error: {msg}"),
            Error::Codec(msg) => write!(f, "codec error: {msg}"),
            Error::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}
