//! The scalar cell type.

use crate::{DataType, Error, Result};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single cell of a relation or dataframe.
///
/// `Value` implements *total* equality, ordering and hashing so it can serve
/// directly as a group-by / join / sort key: `Null == Null` and NaN floats
/// compare equal to themselves. SQL's three-valued comparison semantics are
/// implemented on top of this in the expression evaluators, not here.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL / pandas NaN-as-missing.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Text(String),
    /// Array value (tuple-identifier aggregation, one-hot vectors).
    Array(Vec<Value>),
}

impl Value {
    /// Text constructor accepting anything string-like.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value's runtime type, or `None` for NULL (which is untyped).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Array(items) => {
                let elem = items
                    .iter()
                    .find_map(Value::data_type)
                    .unwrap_or(DataType::Int);
                Some(DataType::Array(Box::new(elem)))
            }
        }
    }

    /// Numeric view as f64 (ints upcast; bools count as 0/1 like pandas).
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            Value::Bool(b) => Ok(if *b { 1.0 } else { 0.0 }),
            other => Err(Error::TypeMismatch {
                expected: "numeric",
                got: other.to_string(),
            }),
        }
    }

    /// Integer view (floats must be integral).
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Bool(b) => Ok(*b as i64),
            Value::Float(f) if f.fract() == 0.0 => Ok(*f as i64),
            other => Err(Error::TypeMismatch {
                expected: "integer",
                got: other.to_string(),
            }),
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::TypeMismatch {
                expected: "boolean",
                got: other.to_string(),
            }),
        }
    }

    /// String view.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Text(s) => Ok(s),
            other => Err(Error::TypeMismatch {
                expected: "text",
                got: other.to_string(),
            }),
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Result<&[Value]> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(Error::TypeMismatch {
                expected: "array",
                got: other.to_string(),
            }),
        }
    }

    /// Cast to a target [`DataType`], SQL-style. NULL casts to NULL.
    pub fn cast(&self, target: &DataType) -> Result<Value> {
        if self.is_null() {
            return Ok(Value::Null);
        }
        Ok(match (self, target) {
            (v, DataType::Int | DataType::Serial) => Value::Int(match v {
                Value::Text(s) => s.trim().parse::<i64>().map_err(|_| Error::TypeMismatch {
                    expected: "integer literal",
                    got: s.clone(),
                })?,
                other => other.as_i64()?,
            }),
            (v, DataType::Float) => Value::Float(match v {
                Value::Text(s) => s.trim().parse::<f64>().map_err(|_| Error::TypeMismatch {
                    expected: "float literal",
                    got: s.clone(),
                })?,
                other => other.as_f64()?,
            }),
            (v, DataType::Text) => Value::Text(v.to_string()),
            (Value::Bool(b), DataType::Bool) => Value::Bool(*b),
            (Value::Int(i), DataType::Bool) => Value::Bool(*i != 0),
            (Value::Text(s), DataType::Bool) => match s.trim().to_ascii_lowercase().as_str() {
                "t" | "true" | "1" | "yes" => Value::Bool(true),
                "f" | "false" | "0" | "no" => Value::Bool(false),
                other => {
                    return Err(Error::TypeMismatch {
                        expected: "boolean literal",
                        got: other.to_string(),
                    })
                }
            },
            (Value::Array(items), DataType::Array(elem)) => Value::Array(
                items
                    .iter()
                    .map(|v| v.cast(elem))
                    .collect::<Result<Vec<_>>>()?,
            ),
            (v, t) => {
                return Err(Error::TypeMismatch {
                    expected: "castable value",
                    got: format!("{v} -> {t}"),
                })
            }
        })
    }

    /// SQL literal rendering (quotes text, `NULL` for null).
    pub fn sql_literal(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format_float(*f),
            Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
            Value::Array(items) => {
                let body: Vec<String> = items.iter().map(Value::sql_literal).collect();
                format!("ARRAY[{}]", body.join(", "))
            }
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Text(_) => 3,
            Value::Array(_) => 4,
        }
    }
}

fn format_float(f: f64) -> String {
    if f.is_nan() {
        "'NaN'".to_string()
    } else if f.is_infinite() {
        if f > 0.0 { "'Infinity'" } else { "'-Infinity'" }.to_string()
    } else if f.fract() == 0.0 && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: NULL first, then bools, numerics (int/float unified),
    /// text, arrays. NaN sorts after all other floats and equals itself.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Int(a), Float(b)) => cmp_f64(*a as f64, *b),
            (Float(a), Int(b)) => cmp_f64(*a, *b as f64),
            (Float(a), Float(b)) => cmp_f64(*a, *b),
            (Text(a), Text(b)) => a.cmp(b),
            (Array(a), Array(b)) => a.cmp(b),
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

fn cmp_f64(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Ints and integral floats must hash identically because they
            // compare equal (`1 == 1.0` as group keys).
            Value::Int(i) => {
                state.write_u8(2);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                state.write_u8(2);
                // Normalize -0.0 / NaN payloads.
                let f = if *f == 0.0 { 0.0 } else { *f };
                let f = if f.is_nan() { f64::NAN } else { f };
                f.to_bits().hash(state);
            }
            Value::Text(s) => {
                state.write_u8(3);
                s.hash(state);
            }
            Value::Array(items) => {
                state.write_u8(4);
                items.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Array(items) => {
                write!(f, "{{")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_equals_null_as_group_key() {
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(hash_of(&Value::Null), hash_of(&Value::Null));
    }

    #[test]
    fn int_float_cross_type_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Float(3.0)));
        assert!(Value::Int(3) < Value::Float(3.5));
    }

    #[test]
    fn nan_is_self_equal_and_sorts_last_among_floats() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, nan.clone());
        assert!(Value::Float(f64::INFINITY) < nan);
    }

    #[test]
    fn total_order_ranks_types() {
        let mut vs = vec![
            Value::text("z"),
            Value::Int(1),
            Value::Null,
            Value::Bool(true),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Int(1),
                Value::text("z")
            ]
        );
    }

    #[test]
    fn casts() {
        assert_eq!(
            Value::text("42").cast(&DataType::Int).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            Value::Int(1).cast(&DataType::Bool).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(Value::Null.cast(&DataType::Float).unwrap(), Value::Null);
        assert!(Value::text("abc").cast(&DataType::Int).is_err());
    }

    #[test]
    fn sql_literals_escape() {
        assert_eq!(Value::text("o'brien").sql_literal(), "'o''brien'");
        assert_eq!(Value::Float(2.0).sql_literal(), "2.0");
        assert_eq!(
            Value::Array(vec![Value::Int(1), Value::Int(2)]).sql_literal(),
            "ARRAY[1, 2]"
        );
    }

    #[test]
    fn as_views() {
        assert_eq!(Value::Bool(true).as_f64().unwrap(), 1.0);
        assert_eq!(Value::Float(4.0).as_i64().unwrap(), 4);
        assert!(Value::Float(4.5).as_i64().is_err());
        assert_eq!(Value::text("hi").as_str().unwrap(), "hi");
    }
}
