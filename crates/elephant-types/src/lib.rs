#![warn(missing_docs)]
//! Shared scalar types for the Blue Elephants workspace.
//!
//! Every layer of the system — the pandas-like `dataframe` baseline, the
//! SQL engine, the scikit-learn re-implementation and the mlinspect core —
//! speaks the same scalar language: [`Value`] cells typed by [`DataType`],
//! with SQL-style null semantics. This crate also owns the CSV reader/writer
//! used both by the `pandas.read_csv` emulation and by the engine's `COPY`.

pub mod binary;
pub mod chunk;
pub mod csv;
pub mod datatype;
pub mod error;
pub mod fault;
pub mod rng;
pub mod span;
pub mod value;

pub use binary::ByteReader;
pub use chunk::{Column, ColumnChunk, ColumnData, NullBitmap};
pub use csv::{read_csv, read_csv_str, write_csv, CsvOptions, CsvTable};
pub use datatype::DataType;
pub use error::{Error, Result};
pub use rng::Prng;
pub use span::{
    bucket_index, next_span_id, Histogram, SharedSpanRing, Span, SpanKind, SpanRecord, SpanRing,
    TraceContext, HIST_BUCKETS,
};
pub use value::Value;
