//! Logical column types.

use std::fmt;

/// The logical type of a column, shared between the dataframe library and the
/// SQL engine's catalog.
///
/// The set mirrors what the paper's pipelines need: PostgreSQL's
/// `int`/`double precision`/`text`/`boolean`/`serial` plus arrays (used for
/// `array_agg`-ed tuple identifiers and one-hot vectors).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (`int`/`bigint`).
    Int,
    /// 64-bit IEEE float (`double precision`).
    Float,
    /// UTF-8 string (`text`).
    Text,
    /// Boolean.
    Bool,
    /// Auto-incrementing integer used for pandas-style row numbers
    /// (`add_mlinspect_serial`, paper §5.1.8).
    Serial,
    /// Array of an element type (`int[]`, used by `array_agg`/one-hot).
    Array(Box<DataType>),
}

impl DataType {
    /// The SQL spelling used when generating `CREATE TABLE` statements.
    pub fn sql_name(&self) -> String {
        match self {
            DataType::Int => "INT".to_string(),
            DataType::Float => "DOUBLE PRECISION".to_string(),
            DataType::Text => "TEXT".to_string(),
            DataType::Bool => "BOOLEAN".to_string(),
            DataType::Serial => "SERIAL".to_string(),
            DataType::Array(inner) => format!("{}[]", inner.sql_name()),
        }
    }

    /// True for `Int`, `Float` and `Serial`.
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Int | DataType::Float | DataType::Serial)
    }

    /// The common type two operands coerce to in arithmetic, if any.
    ///
    /// Mirrors both pandas' upcasting and SQL numeric type inference:
    /// `Int op Float -> Float`, `Serial` behaves as `Int`.
    pub fn unify(&self, other: &DataType) -> Option<DataType> {
        use DataType::*;
        let a = if *self == Serial { Int } else { self.clone() };
        let b = if *other == Serial { Int } else { other.clone() };
        match (a, b) {
            (x, y) if x == y => Some(x),
            (Int, Float) | (Float, Int) => Some(Float),
            // Comparisons/joins between bools and ints appear in label columns.
            (Bool, Int) | (Int, Bool) => Some(Int),
            _ => None,
        }
    }

    /// Parse a PostgreSQL type name as used in generated DDL.
    pub fn parse_sql(name: &str) -> Option<DataType> {
        let lower = name.trim().to_ascii_lowercase();
        if let Some(elem) = lower.strip_suffix("[]") {
            return DataType::parse_sql(elem).map(|d| DataType::Array(Box::new(d)));
        }
        match lower.as_str() {
            "int" | "integer" | "bigint" | "int4" | "int8" | "smallint" => Some(DataType::Int),
            "float" | "double precision" | "double" | "real" | "numeric" | "float8" => {
                Some(DataType::Float)
            }
            "text" | "varchar" | "char" | "string" => Some(DataType::Text),
            "bool" | "boolean" => Some(DataType::Bool),
            "serial" => Some(DataType::Serial),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.sql_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_names_round_trip() {
        for dt in [
            DataType::Int,
            DataType::Float,
            DataType::Text,
            DataType::Bool,
            DataType::Serial,
            DataType::Array(Box::new(DataType::Int)),
        ] {
            assert_eq!(
                DataType::parse_sql(&dt.sql_name()),
                Some(dt.clone()),
                "{dt}"
            );
        }
    }

    #[test]
    fn unify_numeric_upcasts() {
        assert_eq!(DataType::Int.unify(&DataType::Float), Some(DataType::Float));
        assert_eq!(DataType::Serial.unify(&DataType::Int), Some(DataType::Int));
        assert_eq!(DataType::Text.unify(&DataType::Int), None);
    }

    #[test]
    fn parse_unknown_is_none() {
        assert_eq!(DataType::parse_sql("json"), None);
    }
}
