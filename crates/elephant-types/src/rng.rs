//! A tiny deterministic PRNG shared by the whole workspace.
//!
//! The repository must build and test fully offline, so nothing may depend
//! on the external `rand` crate. Every layer that needs randomness — the
//! synthetic dataset generators, `train_test_split`, model weight
//! initialization, property-style tests — uses this one implementation:
//! an xorshift* core (the exact generator `datagen` has always used, so
//! dataset bytes stay stable across releases) with a SplitMix64 stream
//! deriver for splitting one seed into independent substreams.
//!
//! Not cryptographically secure; strictly for reproducible simulation.

/// Deterministic xorshift* generator.
///
/// Same seed → same sequence, forever. Seed 0 is remapped to a fixed
/// odd constant because xorshift has an all-zero fixed point.
#[derive(Debug, Clone)]
pub struct Prng(u64);

/// SplitMix64 step: mixes a counter into a well-distributed 64-bit value.
/// Used to derive independent substream seeds from one master seed.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Prng {
    /// Seeded constructor; seed 0 is remapped to a fixed constant.
    pub fn new(seed: u64) -> Prng {
        Prng(if seed == 0 { 0x9E3779B97F4A7C15 } else { seed })
    }

    /// Substream `stream` of master seed `seed`: two SplitMix64 steps give
    /// independent sequences even for adjacent seeds/streams.
    pub fn from_stream(seed: u64, stream: u64) -> Prng {
        let mut s = seed ^ stream.wrapping_mul(0xA0761D6478BD642F);
        let mixed = splitmix64(&mut s) ^ splitmix64(&mut s);
        Prng::new(mixed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        if hi <= lo {
            return lo;
        }
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    /// Weighted choice: returns an index with probability proportional to
    /// `weights[i]`.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        let mut target = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            if target < *w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prng_is_deterministic() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn weighted_respects_zero_weight() {
        let mut p = Prng::new(1);
        for _ in 0..100 {
            assert_ne!(p.weighted(&[0.0, 1.0, 0.0]), 0);
        }
    }

    #[test]
    fn unit_in_range() {
        let mut p = Prng::new(3);
        for _ in 0..1000 {
            let u = p.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn streams_are_independent() {
        let mut a = Prng::from_stream(7, 0);
        let mut b = Prng::from_stream(7, 1);
        let same = (0..50).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut p = Prng::new(9);
        let mut xs: Vec<usize> = (0..100).collect();
        p.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, sorted);
    }

    #[test]
    fn range_bounds_hold() {
        let mut p = Prng::new(11);
        for _ in 0..500 {
            let f = p.range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = p.range_i64(-5, 5);
            assert!((-5..5).contains(&i));
        }
    }
}
