//! Parser error type with source positions.

use std::fmt;

/// Result alias for parsing.
pub type Result<T> = std::result::Result<T, ParseError>;

/// A lexing or parsing failure, carrying the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line where the problem was detected.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}
