#![warn(missing_docs)]
//! A small Python parser covering the ML-pipeline subset of the language.
//!
//! The paper captures pipeline operations by monkey-patching a live CPython
//! interpreter. We reproduce the same *call stream* statically: this crate
//! parses the pipeline source into an AST which `mlinspect`'s capture layer
//! abstract-interprets, replaying exactly the pandas / scikit-learn calls the
//! monkey patches would have intercepted.
//!
//! Supported syntax (everything the mlinspect example pipelines use):
//! imports, assignments (including subscript targets and tuple unpacking),
//! expression statements, calls with positional + keyword arguments,
//! attribute chains, subscripts, lists/tuples/dicts, string/number/bool/None
//! literals, and the Python operator-precedence ladder for arithmetic,
//! comparison, bitwise (`&`, `|`) and `not`/`~`/unary-minus operators.

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::{Arg, BinOp, Expr, Module, Stmt, UnaryOp};
pub use error::{ParseError, Result};
pub use parser::parse_module;

/// Parse a complete pipeline source file.
///
/// ```
/// let module = pyparser::parse("data = patients.merge(histories, on=['ssn'])").unwrap();
/// assert_eq!(module.stmts.len(), 1);
/// ```
pub fn parse(source: &str) -> Result<Module> {
    parse_module(source)
}
