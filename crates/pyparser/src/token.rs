//! Token vocabulary for the Python subset.

use std::fmt;

/// A lexical token plus its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

/// The kinds of token the pipeline subset uses.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword other than the ones below.
    Name(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes removed, escapes resolved).
    Str(String),
    /// `True` / `False`.
    Bool(bool),
    /// `None`.
    NoneLit,
    /// Keywords that matter structurally.
    /// `import`
    Import,
    /// `from`
    From,
    /// `as`
    As,
    /// `not`
    Not,
    /// `in`
    In,
    /// `and`
    And,
    /// `or`
    Or,

    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `//`
    DoubleSlash,
    /// `%`
    Percent,
    /// `**`
    DoubleStar,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `~`
    Tilde,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,

    /// Logical end of statement (newline at paren depth zero).
    Newline,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            Name(s) => write!(f, "{s}"),
            Int(i) => write!(f, "{i}"),
            Float(x) => write!(f, "{x}"),
            Str(s) => write!(f, "'{s}'"),
            Bool(b) => write!(f, "{}", if *b { "True" } else { "False" }),
            NoneLit => write!(f, "None"),
            Import => write!(f, "import"),
            From => write!(f, "from"),
            As => write!(f, "as"),
            Not => write!(f, "not"),
            In => write!(f, "in"),
            And => write!(f, "and"),
            Or => write!(f, "or"),
            LParen => write!(f, "("),
            RParen => write!(f, ")"),
            LBracket => write!(f, "["),
            RBracket => write!(f, "]"),
            LBrace => write!(f, "{{"),
            RBrace => write!(f, "}}"),
            Comma => write!(f, ","),
            Colon => write!(f, ":"),
            Dot => write!(f, "."),
            Assign => write!(f, "="),
            Plus => write!(f, "+"),
            Minus => write!(f, "-"),
            Star => write!(f, "*"),
            Slash => write!(f, "/"),
            DoubleSlash => write!(f, "//"),
            Percent => write!(f, "%"),
            DoubleStar => write!(f, "**"),
            Amp => write!(f, "&"),
            Pipe => write!(f, "|"),
            Tilde => write!(f, "~"),
            Lt => write!(f, "<"),
            Gt => write!(f, ">"),
            Le => write!(f, "<="),
            Ge => write!(f, ">="),
            EqEq => write!(f, "=="),
            NotEq => write!(f, "!="),
            Newline => write!(f, "<newline>"),
            Eof => write!(f, "<eof>"),
        }
    }
}
