//! Hand-written lexer for the Python pipeline subset.
//!
//! Python's significant indentation is irrelevant to straight-line pipeline
//! scripts, so the lexer only tracks *logical* lines: newlines inside
//! brackets, or after an explicit `\` continuation, are ignored, matching how
//! the mlinspect pipelines wrap long calls over several physical lines.

use crate::error::{ParseError, Result};
use crate::token::{Token, TokenKind};

/// Tokenize a complete source file.
pub fn tokenize(source: &str) -> Result<Vec<Token>> {
    let mut lexer = Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        depth: 0,
        tokens: Vec::new(),
    };
    lexer.run()?;
    Ok(lexer.tokens)
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    depth: usize,
    tokens: Vec<Token>,
}

impl Lexer {
    fn run(&mut self) -> Result<()> {
        while let Some(c) = self.peek() {
            match c {
                ' ' | '\t' => {
                    self.bump();
                }
                '\r' => {
                    self.bump();
                }
                '\n' => {
                    self.bump();
                    self.line += 1;
                    if self.depth == 0 {
                        self.emit_newline();
                    }
                }
                '\\' => {
                    // Explicit line continuation: swallow the backslash and
                    // the following newline without emitting Newline.
                    self.bump();
                    while matches!(self.peek(), Some(' ' | '\t' | '\r')) {
                        self.bump();
                    }
                    if self.peek() == Some('\n') {
                        self.bump();
                        self.line += 1;
                    } else {
                        return Err(ParseError::new(self.line, "stray backslash"));
                    }
                }
                '#' => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                '\'' | '"' => self.string(c)?,
                c if c.is_ascii_digit() => self.number()?,
                c if c.is_alphabetic() || c == '_' => self.name(),
                _ => self.operator()?,
            }
        }
        self.emit_newline();
        self.push(TokenKind::Eof);
        Ok(())
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        self.pos += 1;
        c
    }

    fn push(&mut self, kind: TokenKind) {
        self.tokens.push(Token {
            kind,
            line: self.line,
        });
    }

    fn emit_newline(&mut self) {
        // Collapse runs of blank lines into a single Newline token.
        if matches!(
            self.tokens.last().map(|t| &t.kind),
            Some(TokenKind::Newline) | None
        ) {
            return;
        }
        self.push(TokenKind::Newline);
    }

    fn string(&mut self, quote: char) -> Result<()> {
        let start_line = self.line;
        self.bump();
        // Triple-quoted strings appear in docstrings; support them.
        let triple = self.peek() == Some(quote) && self.peek2() == Some(quote);
        if triple {
            self.bump();
            self.bump();
        }
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(ParseError::new(start_line, "unterminated string")),
                Some('\n') => {
                    self.line += 1;
                    if triple {
                        out.push('\n');
                    } else {
                        return Err(ParseError::new(start_line, "unterminated string"));
                    }
                }
                Some('\\') => match self.bump() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('\\') => out.push('\\'),
                    Some('\'') => out.push('\''),
                    Some('"') => out.push('"'),
                    Some(other) => {
                        out.push('\\');
                        out.push(other);
                    }
                    None => return Err(ParseError::new(start_line, "unterminated string")),
                },
                Some(c) if c == quote => {
                    if !triple {
                        break;
                    }
                    if self.peek() == Some(quote) && self.peek2() == Some(quote) {
                        self.bump();
                        self.bump();
                        break;
                    }
                    out.push(c);
                }
                Some(c) => out.push(c),
            }
        }
        self.push(TokenKind::Str(out));
        Ok(())
    }

    fn number(&mut self) -> Result<()> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == '_') {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some('.') && matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == '_') {
                self.bump();
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            let save = self.pos;
            self.bump();
            if matches!(self.peek(), Some('+' | '-')) {
                self.bump();
            }
            if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
            } else {
                self.pos = save;
            }
        }
        let text: String = self.chars[start..self.pos]
            .iter()
            .filter(|c| **c != '_')
            .collect();
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| ParseError::new(self.line, format!("bad float literal {text}")))?;
            self.push(TokenKind::Float(v));
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| ParseError::new(self.line, format!("bad int literal {text}")))?;
            self.push(TokenKind::Int(v));
        }
        Ok(())
    }

    fn name(&mut self) {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_') {
            self.bump();
        }
        let word: String = self.chars[start..self.pos].iter().collect();
        let kind = match word.as_str() {
            "import" => TokenKind::Import,
            "from" => TokenKind::From,
            "as" => TokenKind::As,
            "not" => TokenKind::Not,
            "in" => TokenKind::In,
            "and" => TokenKind::And,
            "or" => TokenKind::Or,
            "True" => TokenKind::Bool(true),
            "False" => TokenKind::Bool(false),
            "None" => TokenKind::NoneLit,
            _ => TokenKind::Name(word),
        };
        self.push(kind);
    }

    fn operator(&mut self) -> Result<()> {
        let c = self.bump().expect("operator called at end of input");
        let kind = match c {
            '(' => {
                self.depth += 1;
                TokenKind::LParen
            }
            ')' => {
                self.depth = self.depth.saturating_sub(1);
                TokenKind::RParen
            }
            '[' => {
                self.depth += 1;
                TokenKind::LBracket
            }
            ']' => {
                self.depth = self.depth.saturating_sub(1);
                TokenKind::RBracket
            }
            '{' => {
                self.depth += 1;
                TokenKind::LBrace
            }
            '}' => {
                self.depth = self.depth.saturating_sub(1);
                TokenKind::RBrace
            }
            ',' => TokenKind::Comma,
            ':' => TokenKind::Colon,
            '.' => TokenKind::Dot,
            '+' => TokenKind::Plus,
            '-' => TokenKind::Minus,
            '%' => TokenKind::Percent,
            '&' => TokenKind::Amp,
            '|' => TokenKind::Pipe,
            '~' => TokenKind::Tilde,
            '*' => {
                if self.peek() == Some('*') {
                    self.bump();
                    TokenKind::DoubleStar
                } else {
                    TokenKind::Star
                }
            }
            '/' => {
                if self.peek() == Some('/') {
                    self.bump();
                    TokenKind::DoubleSlash
                } else {
                    TokenKind::Slash
                }
            }
            '<' => {
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::Le
                } else {
                    TokenKind::Lt
                }
            }
            '>' => {
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            '=' => {
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::EqEq
                } else {
                    TokenKind::Assign
                }
            }
            '!' => {
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::NotEq
                } else {
                    return Err(ParseError::new(self.line, "unexpected '!'"));
                }
            }
            other => {
                return Err(ParseError::new(
                    self.line,
                    format!("unexpected character {other:?}"),
                ))
            }
        };
        self.push(kind);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind::*;

    fn kinds(src: &str) -> Vec<crate::token::TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_assignment() {
        assert_eq!(
            kinds("x = 1.5"),
            vec![Name("x".into()), Assign, Float(1.5), Newline, Eof]
        );
    }

    #[test]
    fn newlines_inside_brackets_are_transparent() {
        let ks = kinds("f(a,\n  b)\n");
        assert!(!ks[..ks.len() - 2].contains(&Newline));
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("x = 1 # comment\ny = 2"),
            vec![
                Name("x".into()),
                Assign,
                Int(1),
                Newline,
                Name("y".into()),
                Assign,
                Int(2),
                Newline,
                Eof
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(kinds(r#"s = 'a\'b'"#)[2], Str("a'b".into()));
        assert_eq!(kinds(r#"s = "x\ny""#)[2], Str("x\ny".into()));
    }

    #[test]
    fn triple_quoted_strings() {
        assert_eq!(
            kinds("s = '''line1\nline2'''")[2],
            Str("line1\nline2".into())
        );
    }

    #[test]
    fn line_continuation() {
        let ks = kinds("x = 1 + \\\n    2\n");
        assert_eq!(ks.iter().filter(|k| **k == Newline).count(), 1);
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("a <= b >= c != d == e ** f // g"),
            vec![
                Name("a".into()),
                Le,
                Name("b".into()),
                Ge,
                Name("c".into()),
                NotEq,
                Name("d".into()),
                EqEq,
                Name("e".into()),
                DoubleStar,
                Name("f".into()),
                DoubleSlash,
                Name("g".into()),
                Newline,
                Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("s = 'abc").is_err());
        assert!(tokenize("s = 'abc\nd'").is_err());
    }

    #[test]
    fn keywords_vs_names() {
        assert_eq!(
            kinds("from x import y as z"),
            vec![
                From,
                Name("x".into()),
                Import,
                Name("y".into()),
                As,
                Name("z".into()),
                Newline,
                Eof
            ]
        );
        assert_eq!(kinds("importx")[0], Name("importx".into()));
    }

    #[test]
    fn numeric_underscores_and_exponent() {
        assert_eq!(kinds("x = 1_000")[2], Int(1000));
        assert_eq!(kinds("x = 1e3")[2], Float(1000.0));
    }
}
