//! Recursive-descent parser with Python's operator precedence.

use crate::ast::{Arg, BinOp, Expr, Module, Stmt, UnaryOp};
use crate::error::{ParseError, Result};
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};

/// Parse a complete module.
pub fn parse_module(source: &str) -> Result<Module> {
    let tokens = tokenize(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    loop {
        p.skip_newlines();
        if p.at(&TokenKind::Eof) {
            break;
        }
        stmts.push(p.statement()?);
    }
    Ok(Module { stmts })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(ParseError::new(
                self.line(),
                format!("expected {kind}, found {}", self.peek()),
            ))
        }
    }

    fn skip_newlines(&mut self) {
        while self.at(&TokenKind::Newline) {
            self.bump();
        }
    }

    fn end_statement(&mut self) -> Result<()> {
        if self.at(&TokenKind::Eof) || self.eat(&TokenKind::Newline) {
            Ok(())
        } else {
            Err(ParseError::new(
                self.line(),
                format!("expected end of statement, found {}", self.peek()),
            ))
        }
    }

    fn statement(&mut self) -> Result<Stmt> {
        let line = self.line();
        match self.peek() {
            TokenKind::Import => {
                self.bump();
                let module = self.dotted_name()?;
                let alias = if self.eat(&TokenKind::As) {
                    Some(self.plain_name()?)
                } else {
                    None
                };
                self.end_statement()?;
                Ok(Stmt::Import {
                    line,
                    module: module.clone(),
                    names: vec![(module, alias)],
                    is_from: false,
                })
            }
            TokenKind::From => {
                self.bump();
                let module = self.dotted_name()?;
                self.expect(&TokenKind::Import)?;
                let mut names = Vec::new();
                loop {
                    let name = self.plain_name()?;
                    let alias = if self.eat(&TokenKind::As) {
                        Some(self.plain_name()?)
                    } else {
                        None
                    };
                    names.push((name, alias));
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.end_statement()?;
                Ok(Stmt::Import {
                    line,
                    module,
                    names,
                    is_from: true,
                })
            }
            _ => {
                let first = self.expression()?;
                if self.at(&TokenKind::Comma) {
                    // Tuple-unpacking assignment: a, b = expr
                    let mut targets = vec![first];
                    while self.eat(&TokenKind::Comma) {
                        targets.push(self.expression()?);
                    }
                    self.expect(&TokenKind::Assign)?;
                    let value = self.expression()?;
                    self.end_statement()?;
                    Ok(Stmt::Assign {
                        line,
                        targets,
                        value,
                    })
                } else if self.eat(&TokenKind::Assign) {
                    let value = self.expression()?;
                    self.end_statement()?;
                    Ok(Stmt::Assign {
                        line,
                        targets: vec![first],
                        value,
                    })
                } else {
                    self.end_statement()?;
                    Ok(Stmt::ExprStmt { line, value: first })
                }
            }
        }
    }

    fn dotted_name(&mut self) -> Result<String> {
        let mut name = self.plain_name()?;
        while self.eat(&TokenKind::Dot) {
            name.push('.');
            name.push_str(&self.plain_name()?);
        }
        Ok(name)
    }

    fn plain_name(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Name(n) => {
                self.bump();
                Ok(n)
            }
            other => Err(ParseError::new(
                self.line(),
                format!("expected name, found {other}"),
            )),
        }
    }

    /// Entry point of the precedence ladder (Python: `or` is lowest).
    fn expression(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat(&TokenKind::Or) {
            let right = self.and_expr()?;
            left = bin(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat(&TokenKind::And) {
            let right = self.not_expr()?;
            left = bin(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Not) {
            let operand = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(operand),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.bitor()?;
        let op = match self.peek() {
            TokenKind::Lt => Some(BinOp::Lt),
            TokenKind::Gt => Some(BinOp::Gt),
            TokenKind::Le => Some(BinOp::Le),
            TokenKind::Ge => Some(BinOp::Ge),
            TokenKind::EqEq => Some(BinOp::Eq),
            TokenKind::NotEq => Some(BinOp::NotEq),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.bitor()?;
            return Ok(bin(op, left, right));
        }
        Ok(left)
    }

    fn bitor(&mut self) -> Result<Expr> {
        let mut left = self.bitand()?;
        while self.eat(&TokenKind::Pipe) {
            let right = self.bitand()?;
            left = bin(BinOp::BitOr, left, right);
        }
        Ok(left)
    }

    fn bitand(&mut self) -> Result<Expr> {
        let mut left = self.additive()?;
        while self.eat(&TokenKind::Amp) {
            let right = self.additive()?;
            left = bin(BinOp::BitAnd, left, right);
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.multiplicative()?;
            left = bin(op, left, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::DoubleSlash => BinOp::FloorDiv,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.unary()?;
            left = bin(op, left, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        let op = match self.peek() {
            TokenKind::Minus => Some(UnaryOp::Neg),
            TokenKind::Tilde => Some(UnaryOp::Invert),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary()?;
            return Ok(Expr::Unary {
                op,
                operand: Box::new(operand),
            });
        }
        self.power()
    }

    fn power(&mut self) -> Result<Expr> {
        let base = self.postfix()?;
        if self.eat(&TokenKind::DoubleStar) {
            // Right-associative.
            let exp = self.unary()?;
            return Ok(bin(BinOp::Pow, base, exp));
        }
        Ok(base)
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut expr = self.atom()?;
        loop {
            match self.peek() {
                TokenKind::Dot => {
                    self.bump();
                    let attr = self.plain_name()?;
                    expr = Expr::Attribute {
                        value: Box::new(expr),
                        attr,
                    };
                }
                TokenKind::LParen => {
                    self.bump();
                    let args = self.call_args()?;
                    expr = Expr::Call {
                        func: Box::new(expr),
                        args,
                    };
                }
                TokenKind::LBracket => {
                    self.bump();
                    let index = self.expression()?;
                    self.expect(&TokenKind::RBracket)?;
                    expr = Expr::Subscript {
                        value: Box::new(expr),
                        index: Box::new(index),
                    };
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn call_args(&mut self) -> Result<Vec<Arg>> {
        let mut args = Vec::new();
        if self.eat(&TokenKind::RParen) {
            return Ok(args);
        }
        loop {
            // Keyword argument: NAME '=' expr (but NAME could also start a
            // positional expression, so look ahead).
            let arg = if let TokenKind::Name(n) = self.peek().clone() {
                if self.tokens[self.pos + 1].kind == TokenKind::Assign {
                    self.bump();
                    self.bump();
                    Arg::kw(n, self.expression()?)
                } else {
                    Arg::pos(self.expression()?)
                }
            } else {
                Arg::pos(self.expression()?)
            };
            args.push(arg);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
            // Allow trailing comma.
            if self.at(&TokenKind::RParen) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(args)
    }

    fn atom(&mut self) -> Result<Expr> {
        match self.bump() {
            TokenKind::Name(n) => Ok(Expr::Name(n)),
            TokenKind::Int(i) => Ok(Expr::Int(i)),
            TokenKind::Float(f) => Ok(Expr::Float(f)),
            TokenKind::Str(s) => {
                // Adjacent string literals concatenate, as in Python.
                let mut out = s;
                while let TokenKind::Str(next) = self.peek().clone() {
                    self.bump();
                    out.push_str(&next);
                }
                Ok(Expr::Str(out))
            }
            TokenKind::Bool(b) => Ok(Expr::Bool(b)),
            TokenKind::NoneLit => Ok(Expr::NoneLit),
            TokenKind::LParen => {
                if self.eat(&TokenKind::RParen) {
                    return Ok(Expr::Tuple(Vec::new()));
                }
                let first = self.expression()?;
                if self.at(&TokenKind::Comma) {
                    let mut items = vec![first];
                    while self.eat(&TokenKind::Comma) {
                        if self.at(&TokenKind::RParen) {
                            break;
                        }
                        items.push(self.expression()?);
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Tuple(items))
                } else {
                    self.expect(&TokenKind::RParen)?;
                    Ok(first)
                }
            }
            TokenKind::LBracket => {
                let mut items = Vec::new();
                if !self.eat(&TokenKind::RBracket) {
                    loop {
                        items.push(self.expression()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                        if self.at(&TokenKind::RBracket) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RBracket)?;
                }
                Ok(Expr::List(items))
            }
            TokenKind::LBrace => {
                let mut items = Vec::new();
                if !self.eat(&TokenKind::RBrace) {
                    loop {
                        let key = self.expression()?;
                        self.expect(&TokenKind::Colon)?;
                        let value = self.expression()?;
                        items.push((key, value));
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                        if self.at(&TokenKind::RBrace) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RBrace)?;
                }
                Ok(Expr::Dict(items))
            }
            other => Err(ParseError::new(
                self.tokens[self.pos.saturating_sub(1)].line,
                format!("unexpected token {other}"),
            )),
        }
    }
}

fn bin(op: BinOp, left: Expr, right: Expr) -> Expr {
    Expr::Binary {
        op,
        left: Box::new(left),
        right: Box::new(right),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(src: &str) -> Stmt {
        let m = parse_module(src).unwrap();
        assert_eq!(m.stmts.len(), 1, "{src}");
        m.stmts.into_iter().next().unwrap()
    }

    #[test]
    fn parses_healthcare_merge_line() {
        let s = one("data = patients.merge(histories, on=['ssn'])");
        let Stmt::Assign { targets, value, .. } = s else {
            panic!("expected assign")
        };
        assert_eq!(targets, vec![Expr::Name("data".into())]);
        let Expr::Call { func, args } = value else {
            panic!("expected call")
        };
        assert_eq!(func.dotted_path().as_deref(), Some("patients.merge"));
        assert_eq!(args.len(), 2);
        assert_eq!(args[1].name.as_deref(), Some("on"));
        assert_eq!(args[1].value, Expr::List(vec![Expr::Str("ssn".into())]));
    }

    #[test]
    fn pandas_amp_binds_tighter_than_comparison_parens() {
        // pandas idiom requires explicit parens; check & precedence matches
        // Python (& above comparisons): `a > 1 & b` is `a > (1 & b)`.
        let s = one("x = a > 1 & b");
        let Stmt::Assign { value, .. } = s else {
            panic!()
        };
        let Expr::Binary { op, right, .. } = value else {
            panic!()
        };
        assert_eq!(op, BinOp::Gt);
        assert!(matches!(
            *right,
            Expr::Binary {
                op: BinOp::BitAnd,
                ..
            }
        ));
    }

    #[test]
    fn parenthesised_filter_condition() {
        let s = one("t = t[(t['d'] <= 30) & (t['d'] >= -30)]");
        let Stmt::Assign { value, .. } = s else {
            panic!()
        };
        let Expr::Subscript { index, .. } = value else {
            panic!()
        };
        let Expr::Binary { op, .. } = *index else {
            panic!()
        };
        assert_eq!(op, BinOp::BitAnd);
    }

    #[test]
    fn subscript_assignment_target() {
        let s = one("data['label'] = data['complications'] > 1.2 * data['mean_complications']");
        let Stmt::Assign { targets, value, .. } = s else {
            panic!()
        };
        assert!(matches!(targets[0], Expr::Subscript { .. }));
        let Expr::Binary { op, right, .. } = value else {
            panic!()
        };
        assert_eq!(op, BinOp::Gt);
        // 1.2 * data[...] groups under Mul.
        assert!(matches!(*right, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn tuple_unpacking_assignment() {
        let s = one("train, test = train_test_split(data)");
        let Stmt::Assign { targets, .. } = s else {
            panic!()
        };
        assert_eq!(targets.len(), 2);
    }

    #[test]
    fn groupby_agg_kwarg_tuple() {
        let s = one(
            "complications = data.groupby('age_group').agg(mean_complications=('complications', 'mean'))",
        );
        let Stmt::Assign { value, .. } = s else {
            panic!()
        };
        let Expr::Call { func, args } = value else {
            panic!()
        };
        let Expr::Attribute { attr, .. } = *func else {
            panic!()
        };
        assert_eq!(attr, "agg");
        assert_eq!(args[0].name.as_deref(), Some("mean_complications"));
        assert!(matches!(args[0].value, Expr::Tuple(_)));
    }

    #[test]
    fn imports() {
        let m = parse_module(
            "import pandas as pd\nfrom sklearn.preprocessing import OneHotEncoder, StandardScaler\n",
        )
        .unwrap();
        assert_eq!(m.stmts.len(), 2);
        let Stmt::Import { names, is_from, .. } = &m.stmts[1] else {
            panic!()
        };
        assert!(is_from);
        assert_eq!(names.len(), 2);
    }

    #[test]
    fn multiline_call() {
        let s = one("p = Pipeline([\n  ('impute', SimpleImputer(strategy='most_frequent')),\n  ('encode', OneHotEncoder()),\n])");
        let Stmt::Assign { value, .. } = s else {
            panic!()
        };
        let Expr::Call { args, .. } = value else {
            panic!()
        };
        let Expr::List(items) = &args[0].value else {
            panic!()
        };
        assert_eq!(items.len(), 2);
    }

    #[test]
    fn unary_and_not() {
        let s = one("m = ~data['x'].isin(xs)");
        let Stmt::Assign { value, .. } = s else {
            panic!()
        };
        assert!(matches!(
            value,
            Expr::Unary {
                op: UnaryOp::Invert,
                ..
            }
        ));
    }

    #[test]
    fn chained_method_and_subscript() {
        let s = one("x = df.groupby('a')['b'].agg('mean')");
        let Stmt::Assign { value, .. } = s else {
            panic!()
        };
        assert!(matches!(value, Expr::Call { .. }));
    }

    #[test]
    fn dict_literal() {
        let s = one("d = {'a': 1, 'b': 2}");
        let Stmt::Assign { value, .. } = s else {
            panic!()
        };
        let Expr::Dict(items) = value else { panic!() };
        assert_eq!(items.len(), 2);
    }

    #[test]
    fn adjacent_string_concatenation() {
        let s = one("s = 'abc' 'def'");
        let Stmt::Assign { value, .. } = s else {
            panic!()
        };
        assert_eq!(value, Expr::Str("abcdef".into()));
    }

    #[test]
    fn error_reports_line() {
        let err = parse_module("x = 1\ny = ]").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn expression_statement() {
        let s = one("print(model.score(test, labels))");
        assert!(matches!(s, Stmt::ExprStmt { .. }));
    }
}
