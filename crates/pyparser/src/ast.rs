//! AST for the Python pipeline subset.

use std::fmt;

/// A parsed source file.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Top-level statements, in source order.
    pub stmts: Vec<Stmt>,
}

/// A top-level statement. Pipeline scripts are straight-line code, so there
/// is no control flow.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `import pandas as pd` / `from sklearn.pipeline import Pipeline` —
    /// recorded (for alias resolution) but semantically inert.
    Import {
        /// 1-based source line.
        line: usize,
        /// Dotted module path, e.g. `sklearn.pipeline`.
        module: String,
        /// Imported names with optional aliases: `(name, alias)`.
        names: Vec<(String, Option<String>)>,
        /// True for `from m import a, b` form.
        is_from: bool,
    },
    /// `target = value`, `target['col'] = value`, or `a, b = value`.
    Assign {
        /// 1-based source line.
        line: usize,
        /// One target, or several for tuple unpacking.
        targets: Vec<Expr>,
        /// Right-hand side.
        value: Expr,
    },
    /// A bare expression, e.g. `pipeline.fit(x, y)` or `print(score)`.
    ExprStmt {
        /// 1-based source line.
        line: usize,
        /// The expression.
        value: Expr,
    },
}

impl Stmt {
    /// The statement's 1-based source line (the paper maps one source line to
    /// one CTE/view, so lines matter).
    pub fn line(&self) -> usize {
        match self {
            Stmt::Import { line, .. } | Stmt::Assign { line, .. } | Stmt::ExprStmt { line, .. } => {
                *line
            }
        }
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Identifier reference.
    Name(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `True` / `False`.
    Bool(bool),
    /// `None`.
    NoneLit,
    /// `[a, b, c]`.
    List(Vec<Expr>),
    /// `(a, b)`.
    Tuple(Vec<Expr>),
    /// `{'k': v}`.
    Dict(Vec<(Expr, Expr)>),
    /// `obj.attr`.
    Attribute {
        /// Receiver expression.
        value: Box<Expr>,
        /// Attribute name.
        attr: String,
    },
    /// `obj[index]`.
    Subscript {
        /// Receiver expression.
        value: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// `f(a, b, kw=c)`.
    Call {
        /// Callee expression (name, attribute chain, ...).
        func: Box<Expr>,
        /// Arguments in source order.
        args: Vec<Arg>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
}

/// One call argument, positional or keyword.
#[derive(Debug, Clone, PartialEq)]
pub struct Arg {
    /// Keyword name for `kw=value` arguments, `None` for positional.
    pub name: Option<String>,
    /// Argument value.
    pub value: Expr,
}

impl Arg {
    /// Positional argument constructor.
    pub fn pos(value: Expr) -> Arg {
        Arg { name: None, value }
    }

    /// Keyword argument constructor.
    pub fn kw(name: impl Into<String>, value: Expr) -> Arg {
        Arg {
            name: Some(name.into()),
            value,
        }
    }
}

/// Binary operators, in the pandas-relevant subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `//`
    FloorDiv,
    /// `%`
    Mod,
    /// `**`
    Pow,
    /// Element-wise and (`&` in pandas).
    BitAnd,
    /// Element-wise or (`|` in pandas).
    BitOr,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    NotEq,
    /// `and` keyword (scalar contexts).
    And,
    /// `or` keyword (scalar contexts).
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// `not` keyword.
    Not,
    /// `~` — element-wise not in pandas.
    Invert,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::FloorDiv => "//",
            BinOp::Mod => "%",
            BinOp::Pow => "**",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
            BinOp::Le => "<=",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::NotEq => "!=",
            BinOp::And => "and",
            BinOp::Or => "or",
        };
        write!(f, "{s}")
    }
}

impl Expr {
    /// Render the callee chain as a dotted path if it is one
    /// (`pd.read_csv` → `Some("pd.read_csv")`).
    pub fn dotted_path(&self) -> Option<String> {
        match self {
            Expr::Name(n) => Some(n.clone()),
            Expr::Attribute { value, attr } => Some(format!("{}.{}", value.dotted_path()?, attr)),
            _ => None,
        }
    }
}
