//! `StandardScaler` (paper §5.2.3).

use crate::error::{Result, SkError};
use crate::pipeline::Transformer;
use etypes::Value;

/// Standardizes numeric columns: `z = (x - mean) / stddev_pop`, with mean and
/// population standard deviation learned at fit time (Listing 17's SQL uses
/// `AVG` and `STDDEV_POP` for exactly this reason).
#[derive(Debug, Clone, Default)]
pub struct StandardScaler {
    params: Option<Vec<(f64, f64)>>,
}

impl StandardScaler {
    /// New unfitted scaler.
    pub fn new() -> StandardScaler {
        StandardScaler::default()
    }

    /// Fitted `(mean, stddev_pop)` per column.
    pub fn params(&self) -> Option<&[(f64, f64)]> {
        self.params.as_deref()
    }
}

impl Transformer for StandardScaler {
    fn fit(&mut self, columns: &[Vec<Value>]) -> Result<()> {
        let mut params = Vec::with_capacity(columns.len());
        for col in columns {
            let nums: Vec<f64> = col
                .iter()
                .filter(|v| !v.is_null())
                .map(|v| v.as_f64())
                .collect::<etypes::Result<_>>()?;
            if nums.is_empty() {
                params.push((0.0, 1.0));
                continue;
            }
            let n = nums.len() as f64;
            let mean = nums.iter().sum::<f64>() / n;
            let var = nums.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
            let std = var.sqrt();
            // sklearn keeps zero-variance columns untouched by dividing by 1.
            params.push((mean, if std == 0.0 { 1.0 } else { std }));
        }
        self.params = Some(params);
        Ok(())
    }

    fn transform(&self, columns: &[Vec<Value>]) -> Result<Vec<Vec<Value>>> {
        let params = self
            .params
            .as_ref()
            .ok_or(SkError::NotFitted("StandardScaler"))?;
        if params.len() != columns.len() {
            return Err(SkError::Shape(format!(
                "scaler fitted on {} columns, given {}",
                params.len(),
                columns.len()
            )));
        }
        columns
            .iter()
            .zip(params)
            .map(|(col, (mean, std))| {
                col.iter()
                    .map(|v| {
                        if v.is_null() {
                            Ok(Value::Null)
                        } else {
                            Ok(Value::Float((v.as_f64()? - mean) / std))
                        }
                    })
                    .collect::<Result<Vec<_>>>()
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "standard_scaler"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn floats(vals: &[f64]) -> Vec<Value> {
        vals.iter().map(|&f| Value::Float(f)).collect()
    }

    #[test]
    fn standardizes_to_zero_mean_unit_variance() {
        let mut sc = StandardScaler::new();
        let out = sc.fit_transform(&[floats(&[1.0, 2.0, 3.0, 4.0])]).unwrap();
        let zs: Vec<f64> = out[0].iter().map(|v| v.as_f64().unwrap()).collect();
        let mean: f64 = zs.iter().sum::<f64>() / 4.0;
        let var: f64 = zs.iter().map(|z| z * z).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn population_std_matches_sql_stddev_pop() {
        let mut sc = StandardScaler::new();
        sc.fit(&[floats(&[2.0, 4.0])]).unwrap();
        // Population std of {2,4} is 1 (sample std would be sqrt(2)).
        assert_eq!(sc.params().unwrap()[0], (3.0, 1.0));
    }

    #[test]
    fn zero_variance_column_passes_through_centred() {
        let mut sc = StandardScaler::new();
        let out = sc.fit_transform(&[floats(&[5.0, 5.0])]).unwrap();
        assert_eq!(out[0], floats(&[0.0, 0.0]));
    }

    #[test]
    fn test_set_uses_train_parameters() {
        let mut sc = StandardScaler::new();
        sc.fit(&[floats(&[0.0, 10.0])]).unwrap();
        let out = sc.transform(&[floats(&[5.0])]).unwrap();
        assert_eq!(out[0][0], Value::Float(0.0));
    }

    #[test]
    fn null_passes_through() {
        let mut sc = StandardScaler::new();
        let out = sc
            .fit_transform(&[vec![Value::Float(1.0), Value::Null, Value::Float(3.0)]])
            .unwrap();
        assert_eq!(out[0][1], Value::Null);
    }
}
