//! `OneHotEncoder` (paper §5.2.2).

use crate::error::{Result, SkError};
use crate::pipeline::Transformer;
use etypes::Value;

/// Encodes each categorical column as one 0/1 indicator column per category.
/// Categories are learned at fit time in sorted order — the same order the
/// SQL translation derives via `ROW_NUMBER() OVER (ORDER BY value)`.
/// Unknown values at transform time encode as all-zero rows
/// (`handle_unknown='ignore'`).
#[derive(Debug, Clone, Default)]
pub struct OneHotEncoder {
    categories: Option<Vec<Vec<Value>>>,
}

impl OneHotEncoder {
    /// New unfitted encoder.
    pub fn new() -> OneHotEncoder {
        OneHotEncoder::default()
    }

    /// Learned categories per input column.
    pub fn categories(&self) -> Option<&[Vec<Value>]> {
        self.categories.as_deref()
    }
}

impl Transformer for OneHotEncoder {
    fn fit(&mut self, columns: &[Vec<Value>]) -> Result<()> {
        let categories = columns
            .iter()
            .map(|col| {
                let mut cats: Vec<Value> = Vec::new();
                for v in col {
                    if !v.is_null() && !cats.contains(v) {
                        cats.push(v.clone());
                    }
                }
                cats.sort();
                cats
            })
            .collect();
        self.categories = Some(categories);
        Ok(())
    }

    fn transform(&self, columns: &[Vec<Value>]) -> Result<Vec<Vec<Value>>> {
        let categories = self
            .categories
            .as_ref()
            .ok_or(SkError::NotFitted("OneHotEncoder"))?;
        if categories.len() != columns.len() {
            return Err(SkError::Shape(format!(
                "encoder fitted on {} columns, given {}",
                categories.len(),
                columns.len()
            )));
        }
        let mut out = Vec::new();
        for (col, cats) in columns.iter().zip(categories) {
            for cat in cats {
                let indicator: Vec<Value> =
                    col.iter().map(|v| Value::Int((v == cat) as i64)).collect();
                out.push(indicator);
            }
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "one_hot_encoder"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_in_sorted_category_order() {
        let col = vec![Value::text("b"), Value::text("a"), Value::text("b")];
        let mut enc = OneHotEncoder::new();
        let out = enc.fit_transform(&[col]).unwrap();
        // Categories sorted: [a, b]; so column 0 is the 'a' indicator.
        assert_eq!(out[0], vec![Value::Int(0), Value::Int(1), Value::Int(0)]);
        assert_eq!(out[1], vec![Value::Int(1), Value::Int(0), Value::Int(1)]);
    }

    #[test]
    fn unknown_values_encode_all_zero() {
        let mut enc = OneHotEncoder::new();
        enc.fit(&[vec![Value::text("a"), Value::text("b")]])
            .unwrap();
        let out = enc.transform(&[vec![Value::text("zzz")]]).unwrap();
        assert_eq!(out[0][0], Value::Int(0));
        assert_eq!(out[1][0], Value::Int(0));
    }

    #[test]
    fn multiple_columns_expand_in_order() {
        let mut enc = OneHotEncoder::new();
        let out = enc
            .fit_transform(&[
                vec![Value::text("x"), Value::text("y")],
                vec![Value::Int(1), Value::Int(2)],
            ])
            .unwrap();
        // 2 categories + 2 categories = 4 output columns.
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn nulls_are_not_categories() {
        let mut enc = OneHotEncoder::new();
        enc.fit(&[vec![Value::Null, Value::text("a")]]).unwrap();
        assert_eq!(enc.categories().unwrap()[0].len(), 1);
    }

    #[test]
    fn not_fitted_is_error() {
        let enc = OneHotEncoder::new();
        assert!(matches!(
            enc.transform(&[vec![]]),
            Err(SkError::NotFitted(_))
        ));
    }
}
