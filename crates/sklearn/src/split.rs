//! `train_test_split`.

use crate::error::{Result, SkError};
use dataframe::DataFrame;
use etypes::Prng;

/// Substream id separating the splitter from the model RNGs that may share
/// the same user-facing seed.
const STREAM_SPLIT: u64 = 1;

/// Randomly split a frame into train and test parts (sklearn default
/// `test_size=0.25`). A fixed seed gives reproducible experiments; the
/// paper's accuracy table (Table 5) varies *because* the split and training
/// are stochastic, which callers reproduce by varying the seed.
pub fn train_test_split(
    df: &DataFrame,
    test_size: f64,
    seed: u64,
) -> Result<(DataFrame, DataFrame)> {
    if !(0.0..1.0).contains(&test_size) || test_size <= 0.0 {
        return Err(SkError::Invalid(format!(
            "test_size must be in (0, 1), got {test_size}"
        )));
    }
    let n = df.len();
    let mut indices: Vec<usize> = (0..n).collect();
    let mut rng = Prng::from_stream(seed, STREAM_SPLIT);
    rng.shuffle(&mut indices);
    let n_test = ((n as f64) * test_size).ceil() as usize;
    let n_test = n_test.min(n);
    let (test_idx, train_idx) = indices.split_at(n_test);
    Ok((df.take(train_idx), df.take(test_idx)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataframe::Series;
    use etypes::Value;

    fn frame(n: usize) -> DataFrame {
        DataFrame::from_columns(vec![Series::new(
            "v",
            (0..n as i64).map(Value::Int).collect(),
        )])
        .unwrap()
    }

    #[test]
    fn split_sizes() {
        let (train, test) = train_test_split(&frame(100), 0.25, 0).unwrap();
        assert_eq!(train.len(), 75);
        assert_eq!(test.len(), 25);
    }

    #[test]
    fn deterministic_per_seed_and_disjoint() {
        let (t1, s1) = train_test_split(&frame(20), 0.25, 42).unwrap();
        let (t2, s2) = train_test_split(&frame(20), 0.25, 42).unwrap();
        assert_eq!(t1, t2);
        assert_eq!(s1, s2);
        let mut all: Vec<i64> = t1
            .column("v")
            .unwrap()
            .values()
            .iter()
            .chain(s1.column("v").unwrap().values())
            .map(|v| v.as_i64().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn different_seed_differs() {
        let (t1, _) = train_test_split(&frame(50), 0.25, 1).unwrap();
        let (t2, _) = train_test_split(&frame(50), 0.25, 2).unwrap();
        assert_ne!(t1, t2);
    }

    #[test]
    fn invalid_test_size_rejected() {
        assert!(train_test_split(&frame(10), 0.0, 0).is_err());
        assert!(train_test_split(&frame(10), 1.0, 0).is_err());
    }
}
