//! A small feed-forward neural network (the Keras-classifier substitute).
//!
//! The paper's healthcare and adult-complex pipelines train a Keras neural
//! network. For the end-to-end experiments (Fig. 8, Table 5) any comparable
//! trainable model suffices; this single-hidden-layer MLP with SGD backprop
//! reproduces the *shape* of the results — training dominates the healthcare
//! runtime, and accuracy varies run-to-run with the stochastic split/init.

use crate::error::{Result, SkError};
use crate::matrix::Matrix;
use etypes::Prng;

/// Substream id for weight init + epoch shuffling (distinct from the
/// split/logreg streams so a shared user seed stays decorrelated).
const STREAM_MLP: u64 = 3;

/// One-hidden-layer binary classifier: `sigmoid(W2 · relu(W1 x + b1) + b2)`.
#[derive(Debug, Clone)]
pub struct MlpClassifier {
    /// Hidden layer width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Seed for weight init and shuffling.
    pub seed: u64,
    w1: Vec<Vec<f64>>,
    b1: Vec<f64>,
    w2: Vec<f64>,
    b2: f64,
    fitted: bool,
}

impl MlpClassifier {
    /// Comparable to the paper's small Keras net (two dense layers).
    pub fn new(hidden: usize) -> MlpClassifier {
        MlpClassifier {
            hidden,
            epochs: 30,
            learning_rate: 0.05,
            seed: 0,
            w1: Vec::new(),
            b1: Vec::new(),
            w2: Vec::new(),
            b2: 0.0,
            fitted: false,
        }
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Train on features and 0/1 labels.
    pub fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        if x.nrows() != y.len() {
            return Err(SkError::Shape(format!(
                "{} rows vs {} labels",
                x.nrows(),
                y.len()
            )));
        }
        if x.nrows() == 0 || self.hidden == 0 {
            return Err(SkError::Invalid("empty training set or zero hidden".into()));
        }
        let d = x.ncols();
        let mut rng = Prng::from_stream(self.seed, STREAM_MLP);
        let scale = (2.0 / d.max(1) as f64).sqrt();
        self.w1 = (0..self.hidden)
            .map(|_| (0..d).map(|_| rng.range_f64(-scale, scale)).collect())
            .collect();
        self.b1 = vec![0.0; self.hidden];
        let scale2 = (2.0 / self.hidden as f64).sqrt();
        self.w2 = (0..self.hidden)
            .map(|_| rng.range_f64(-scale2, scale2))
            .collect();
        self.b2 = 0.0;

        let mut order: Vec<usize> = (0..x.nrows()).collect();
        for _ in 0..self.epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                let row = x.row(i);
                // Forward.
                let mut h = vec![0.0; self.hidden];
                let mut hp = vec![0.0; self.hidden]; // relu'(pre-activation)
                for (j, (wj, bj)) in self.w1.iter().zip(&self.b1).enumerate() {
                    let z: f64 = wj.iter().zip(row).map(|(w, x)| w * x).sum::<f64>() + bj;
                    h[j] = z.max(0.0);
                    hp[j] = (z > 0.0) as i64 as f64;
                }
                let z2: f64 = self.w2.iter().zip(&h).map(|(w, a)| w * a).sum::<f64>() + self.b2;
                let p = sigmoid(z2);
                // Backward (cross-entropy).
                let dz2 = p - y[i];
                for (j, ((w2j, hj), hpj)) in self.w2.iter_mut().zip(&h).zip(&hp).enumerate() {
                    let dh = *w2j * dz2 * hpj;
                    *w2j -= self.learning_rate * dz2 * hj;
                    if dh != 0.0 {
                        for (w, &xi) in self.w1[j].iter_mut().zip(row) {
                            *w -= self.learning_rate * dh * xi;
                        }
                        self.b1[j] -= self.learning_rate * dh;
                    }
                }
                self.b2 -= self.learning_rate * dz2;
            }
        }
        self.fitted = true;
        Ok(())
    }

    /// P(class 1) per row.
    pub fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        if !self.fitted {
            return Err(SkError::NotFitted("MlpClassifier"));
        }
        if x.ncols() != self.w1.first().map_or(0, Vec::len) {
            return Err(SkError::Shape(format!(
                "model expects {} features, input has {}",
                self.w1.first().map_or(0, Vec::len),
                x.ncols()
            )));
        }
        Ok((0..x.nrows())
            .map(|i| {
                let row = x.row(i);
                let z2: f64 = self
                    .w1
                    .iter()
                    .zip(&self.b1)
                    .zip(&self.w2)
                    .map(|((wj, bj), w2j)| {
                        let z: f64 = wj.iter().zip(row).map(|(w, x)| w * x).sum::<f64>() + bj;
                        w2j * z.max(0.0)
                    })
                    .sum::<f64>()
                    + self.b2;
                sigmoid(z2)
            })
            .collect())
    }

    /// Hard 0/1 predictions.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        Ok(self
            .predict_proba(x)?
            .into_iter()
            .map(|p| (p >= 0.5) as i64 as f64)
            .collect())
    }

    /// Mean accuracy on a labelled set.
    pub fn score(&self, x: &Matrix, y: &[f64]) -> Result<f64> {
        let preds = self.predict(x)?;
        Ok(crate::metrics::accuracy(&preds, y))
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Matrix, Vec<f64>) {
        // XOR with jitter: not linearly separable, needs the hidden layer.
        let mut c0 = Vec::new();
        let mut c1 = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let a = (i / 2) % 2;
            let b = i % 2;
            let j = ((i * 31 % 17) as f64 / 17.0 - 0.5) * 0.2;
            c0.push(a as f64 + j);
            c1.push(b as f64 - j);
            y.push(((a ^ b) == 1) as i64 as f64);
        }
        (Matrix::from_columns(&[c0, c1]).unwrap(), y)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let mut m = MlpClassifier::new(16);
        m.epochs = 200;
        m.fit(&x, &y).unwrap();
        assert!(
            m.score(&x, &y).unwrap() > 0.9,
            "{}",
            m.score(&x, &y).unwrap()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = xor_data();
        let mut a = MlpClassifier::new(8).with_seed(3);
        let mut b = MlpClassifier::new(8).with_seed(3);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict_proba(&x).unwrap(), b.predict_proba(&x).unwrap());
    }

    #[test]
    fn seed_changes_results() {
        let (x, y) = xor_data();
        let mut a = MlpClassifier::new(8).with_seed(1);
        let mut b = MlpClassifier::new(8).with_seed(2);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_ne!(a.predict_proba(&x).unwrap(), b.predict_proba(&x).unwrap());
    }

    #[test]
    fn misuse_errors() {
        let m = MlpClassifier::new(4);
        assert!(m.predict(&Matrix::zeros(1, 1)).is_err());
        let mut m = MlpClassifier::new(0);
        assert!(m.fit(&Matrix::zeros(1, 1), &[0.0]).is_err());
    }
}
