//! `Binarizer` and `label_binarize` (paper §5.2.5).

use crate::error::{Result, SkError};
use crate::pipeline::Transformer;
use etypes::Value;

/// Encodes a numeric value as 1 when it meets a threshold, else 0 —
/// Listing 19's `CASE WHEN x >= t THEN 1 ELSE 0 END`.
#[derive(Debug, Clone)]
pub struct Binarizer {
    threshold: f64,
}

impl Binarizer {
    /// New binarizer with the given threshold.
    pub fn new(threshold: f64) -> Binarizer {
        Binarizer { threshold }
    }

    /// The threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl Transformer for Binarizer {
    fn fit(&mut self, _columns: &[Vec<Value>]) -> Result<()> {
        // Stateless: nothing to learn.
        Ok(())
    }

    fn transform(&self, columns: &[Vec<Value>]) -> Result<Vec<Vec<Value>>> {
        columns
            .iter()
            .map(|col| {
                col.iter()
                    .map(|v| {
                        if v.is_null() {
                            Ok(Value::Null)
                        } else {
                            Ok(Value::Int((v.as_f64()? >= self.threshold) as i64))
                        }
                    })
                    .collect::<Result<Vec<_>>>()
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "binarizer"
    }
}

/// sklearn's `label_binarize` for the two-class case used by the pipelines:
/// `classes[0]` maps to 1, `classes[1]` maps to 0... matching sklearn's
/// behaviour of indicating membership of the *positive* class (the first
/// listed class column of the indicator matrix, collapsed for binary
/// problems sklearn returns membership of classes[1]). We follow sklearn:
/// the output is 1 when the value equals `classes[1]`, 0 when it equals
/// `classes[0]`.
pub fn label_binarize(values: &[Value], classes: &[Value]) -> Result<Vec<i64>> {
    if classes.len() != 2 {
        return Err(SkError::Invalid(format!(
            "label_binarize supports exactly 2 classes, got {}",
            classes.len()
        )));
    }
    values
        .iter()
        .map(|v| {
            if *v == classes[1] {
                Ok(1)
            } else if *v == classes[0] {
                Ok(0)
            } else {
                Err(SkError::Invalid(format!(
                    "label {v} not in classes {classes:?}"
                )))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_inclusive() {
        let b = Binarizer::new(50.0);
        let out = b
            .transform(&[vec![Value::Int(49), Value::Int(50), Value::Int(51)]])
            .unwrap();
        assert_eq!(out[0], vec![Value::Int(0), Value::Int(1), Value::Int(1)]);
    }

    #[test]
    fn null_passes_through() {
        let b = Binarizer::new(0.0);
        let out = b.transform(&[vec![Value::Null]]).unwrap();
        assert_eq!(out[0][0], Value::Null);
    }

    #[test]
    fn label_binarize_two_classes() {
        // compas: classes=['High', 'Low'] -> 'Low' is the positive class.
        let out = label_binarize(
            &[Value::text("High"), Value::text("Low"), Value::text("High")],
            &[Value::text("High"), Value::text("Low")],
        )
        .unwrap();
        assert_eq!(out, vec![0, 1, 0]);
    }

    #[test]
    fn label_binarize_rejects_unknown_labels() {
        assert!(
            label_binarize(&[Value::text("???")], &[Value::text("a"), Value::text("b")]).is_err()
        );
        assert!(label_binarize(&[], &[Value::text("a")]).is_err());
    }
}
