//! `SimpleImputer` (paper §5.2.1).

use crate::error::{Result, SkError};
use crate::pipeline::Transformer;
use etypes::Value;
use std::collections::HashMap;

/// Replacement strategy for NULLs.
#[derive(Debug, Clone, PartialEq)]
pub enum ImputeStrategy {
    /// Column mean (numeric columns).
    Mean,
    /// Column median (numeric columns).
    Median,
    /// Most frequent value (ties broken by value order, as the SQL
    /// translation's `ORDER BY count(*) DESC, value LIMIT 1` does).
    MostFrequent,
    /// A constant fill value.
    Constant(Value),
}

impl ImputeStrategy {
    /// Parse the sklearn `strategy=` string.
    pub fn parse(s: &str) -> Option<ImputeStrategy> {
        Some(match s {
            "mean" => ImputeStrategy::Mean,
            "median" => ImputeStrategy::Median,
            "most_frequent" => ImputeStrategy::MostFrequent,
            _ => return None,
        })
    }
}

/// Replaces NULLs by a per-column statistic computed at fit time.
#[derive(Debug, Clone)]
pub struct SimpleImputer {
    strategy: ImputeStrategy,
    fills: Option<Vec<Value>>,
}

impl SimpleImputer {
    /// New unfitted imputer.
    pub fn new(strategy: ImputeStrategy) -> SimpleImputer {
        SimpleImputer {
            strategy,
            fills: None,
        }
    }

    /// The fitted fill values (one per column).
    pub fn fill_values(&self) -> Option<&[Value]> {
        self.fills.as_deref()
    }

    fn compute_fill(&self, column: &[Value]) -> Result<Value> {
        let non_null: Vec<&Value> = column.iter().filter(|v| !v.is_null()).collect();
        Ok(match &self.strategy {
            ImputeStrategy::Constant(v) => v.clone(),
            ImputeStrategy::Mean => {
                let nums: Vec<f64> = non_null
                    .iter()
                    .map(|v| v.as_f64())
                    .collect::<etypes::Result<_>>()?;
                if nums.is_empty() {
                    Value::Null
                } else {
                    Value::Float(nums.iter().sum::<f64>() / nums.len() as f64)
                }
            }
            ImputeStrategy::Median => {
                let mut nums: Vec<f64> = non_null
                    .iter()
                    .map(|v| v.as_f64())
                    .collect::<etypes::Result<_>>()?;
                if nums.is_empty() {
                    Value::Null
                } else {
                    nums.sort_by(f64::total_cmp);
                    let mid = nums.len() / 2;
                    if nums.len() % 2 == 1 {
                        Value::Float(nums[mid])
                    } else {
                        Value::Float((nums[mid - 1] + nums[mid]) / 2.0)
                    }
                }
            }
            ImputeStrategy::MostFrequent => {
                let mut counts: HashMap<&Value, usize> = HashMap::new();
                for v in &non_null {
                    *counts.entry(*v).or_insert(0) += 1;
                }
                counts
                    .into_iter()
                    // Max count; tie-break on the smaller value for
                    // determinism (matches the SQL `ORDER BY cnt DESC, v`).
                    .max_by(|(va, ca), (vb, cb)| ca.cmp(cb).then(vb.cmp(va)))
                    .map(|(v, _)| v.clone())
                    .unwrap_or(Value::Null)
            }
        })
    }
}

impl Transformer for SimpleImputer {
    fn fit(&mut self, columns: &[Vec<Value>]) -> Result<()> {
        let fills = columns
            .iter()
            .map(|c| self.compute_fill(c))
            .collect::<Result<Vec<_>>>()?;
        self.fills = Some(fills);
        Ok(())
    }

    fn transform(&self, columns: &[Vec<Value>]) -> Result<Vec<Vec<Value>>> {
        let fills = self
            .fills
            .as_ref()
            .ok_or(SkError::NotFitted("SimpleImputer"))?;
        if fills.len() != columns.len() {
            return Err(SkError::Shape(format!(
                "imputer fitted on {} columns, given {}",
                fills.len(),
                columns.len()
            )));
        }
        Ok(columns
            .iter()
            .zip(fills)
            .map(|(col, fill)| {
                col.iter()
                    .map(|v| if v.is_null() { fill.clone() } else { v.clone() })
                    .collect()
            })
            .collect())
    }

    fn name(&self) -> &'static str {
        "simple_imputer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(vals: &[Option<i64>]) -> Vec<Value> {
        vals.iter()
            .map(|v| v.map(Value::Int).unwrap_or(Value::Null))
            .collect()
    }

    #[test]
    fn mean_fill() {
        let mut imp = SimpleImputer::new(ImputeStrategy::Mean);
        let out = imp
            .fit_transform(&[ints(&[Some(1), None, Some(3)])])
            .unwrap();
        assert_eq!(out[0][1], Value::Float(2.0));
    }

    #[test]
    fn median_fill_even_and_odd() {
        let mut imp = SimpleImputer::new(ImputeStrategy::Median);
        imp.fit(&[ints(&[Some(1), Some(2), Some(10)])]).unwrap();
        assert_eq!(imp.fill_values().unwrap()[0], Value::Float(2.0));
        let mut imp = SimpleImputer::new(ImputeStrategy::Median);
        imp.fit(&[ints(&[Some(1), Some(2), Some(3), Some(10)])])
            .unwrap();
        assert_eq!(imp.fill_values().unwrap()[0], Value::Float(2.5));
    }

    #[test]
    fn most_frequent_with_deterministic_ties() {
        let mut imp = SimpleImputer::new(ImputeStrategy::MostFrequent);
        let col = vec![
            Value::text("b"),
            Value::text("a"),
            Value::Null,
            Value::text("b"),
        ];
        imp.fit(&[col]).unwrap();
        assert_eq!(imp.fill_values().unwrap()[0], Value::text("b"));

        // Tie between 'a' and 'b' -> smaller value wins.
        let mut imp = SimpleImputer::new(ImputeStrategy::MostFrequent);
        imp.fit(&[vec![Value::text("b"), Value::text("a")]])
            .unwrap();
        assert_eq!(imp.fill_values().unwrap()[0], Value::text("a"));
    }

    #[test]
    fn constant_fill_and_not_fitted() {
        let imp = SimpleImputer::new(ImputeStrategy::Constant(Value::Int(0)));
        assert!(matches!(
            imp.transform(&[ints(&[None])]),
            Err(SkError::NotFitted(_))
        ));
        let mut imp = SimpleImputer::new(ImputeStrategy::Constant(Value::Int(0)));
        let out = imp.fit_transform(&[ints(&[None, Some(5)])]).unwrap();
        assert_eq!(out[0][0], Value::Int(0));
    }

    #[test]
    fn column_count_mismatch_errors() {
        let mut imp = SimpleImputer::new(ImputeStrategy::Mean);
        imp.fit(&[ints(&[Some(1)])]).unwrap();
        assert!(imp
            .transform(&[ints(&[Some(1)]), ints(&[Some(2)])])
            .is_err());
    }

    #[test]
    fn strategy_parsing() {
        assert_eq!(
            ImputeStrategy::parse("most_frequent"),
            Some(ImputeStrategy::MostFrequent)
        );
        assert_eq!(ImputeStrategy::parse("bogus"), None);
    }
}
