//! Error type for preprocessing and models.

use std::fmt;

/// Result alias.
pub type Result<T> = std::result::Result<T, SkError>;

/// Errors from preprocessing and model training.
#[derive(Debug)]
pub enum SkError {
    /// Transformer used before `fit`.
    NotFitted(&'static str),
    /// Input shape problems.
    Shape(String),
    /// Bad argument.
    Invalid(String),
    /// Propagated value error.
    Value(etypes::Error),
    /// Propagated dataframe error.
    Frame(dataframe::DfError),
}

impl fmt::Display for SkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkError::NotFitted(what) => write!(f, "{what} used before fit()"),
            SkError::Shape(m) => write!(f, "shape error: {m}"),
            SkError::Invalid(m) => write!(f, "invalid argument: {m}"),
            SkError::Value(e) => write!(f, "{e}"),
            SkError::Frame(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SkError {}

impl From<etypes::Error> for SkError {
    fn from(e: etypes::Error) -> Self {
        SkError::Value(e)
    }
}

impl From<dataframe::DfError> for SkError {
    fn from(e: dataframe::DfError) -> Self {
        SkError::Frame(e)
    }
}
