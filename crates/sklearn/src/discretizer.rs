//! `KBinsDiscretizer` with the `uniform` strategy (paper §5.2.4).

use crate::error::{Result, SkError};
use crate::pipeline::Transformer;
use etypes::Value;

/// Splits a numeric range into `k` equal-width bins learned at fit time and
/// encodes each value by its (ordinal) bin index. Out-of-range values clamp
/// to the first/last bin via the `LEAST`/`GREATEST` logic of Listing 18.
#[derive(Debug, Clone)]
pub struct KBinsDiscretizer {
    k: usize,
    bounds: Option<Vec<(f64, f64)>>,
}

impl KBinsDiscretizer {
    /// New discretizer with `k` bins.
    pub fn new(k: usize) -> KBinsDiscretizer {
        KBinsDiscretizer { k, bounds: None }
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        self.k
    }

    /// Fitted `(min, max)` per column.
    pub fn bounds(&self) -> Option<&[(f64, f64)]> {
        self.bounds.as_deref()
    }

    /// Assign one value to a bin given `(min, max)` — the SQL formula:
    /// `LEAST(GREATEST(FLOOR((x - min) / step), 0), k - 1)`.
    pub fn bin(&self, x: f64, min: f64, max: f64) -> i64 {
        let step = (max - min) / self.k as f64;
        if step <= 0.0 {
            return 0;
        }
        (((x - min) / step).floor() as i64).clamp(0, self.k as i64 - 1)
    }
}

impl Transformer for KBinsDiscretizer {
    fn fit(&mut self, columns: &[Vec<Value>]) -> Result<()> {
        if self.k < 2 {
            return Err(SkError::Invalid("KBinsDiscretizer needs k >= 2".into()));
        }
        let mut bounds = Vec::with_capacity(columns.len());
        for col in columns {
            let nums: Vec<f64> = col
                .iter()
                .filter(|v| !v.is_null())
                .map(|v| v.as_f64())
                .collect::<etypes::Result<_>>()?;
            let min = nums.iter().copied().fold(f64::INFINITY, f64::min);
            let max = nums.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if nums.is_empty() {
                bounds.push((0.0, 0.0));
            } else {
                bounds.push((min, max));
            }
        }
        self.bounds = Some(bounds);
        Ok(())
    }

    fn transform(&self, columns: &[Vec<Value>]) -> Result<Vec<Vec<Value>>> {
        let bounds = self
            .bounds
            .as_ref()
            .ok_or(SkError::NotFitted("KBinsDiscretizer"))?;
        if bounds.len() != columns.len() {
            return Err(SkError::Shape(format!(
                "discretizer fitted on {} columns, given {}",
                bounds.len(),
                columns.len()
            )));
        }
        columns
            .iter()
            .zip(bounds)
            .map(|(col, (min, max))| {
                col.iter()
                    .map(|v| {
                        if v.is_null() {
                            Ok(Value::Null)
                        } else {
                            Ok(Value::Int(self.bin(v.as_f64()?, *min, *max)))
                        }
                    })
                    .collect::<Result<Vec<_>>>()
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "kbins_discretizer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn floats(vals: &[f64]) -> Vec<Value> {
        vals.iter().map(|&f| Value::Float(f)).collect()
    }

    #[test]
    fn uniform_bins_over_fitted_range() {
        let mut d = KBinsDiscretizer::new(4);
        let out = d
            .fit_transform(&[floats(&[0.0, 1.0, 2.0, 3.0, 4.0])])
            .unwrap();
        let bins: Vec<i64> = out[0].iter().map(|v| v.as_i64().unwrap()).collect();
        // step = 1.0; max value clamps into the last bin.
        assert_eq!(bins, vec![0, 1, 2, 3, 3]);
    }

    #[test]
    fn out_of_range_test_values_clamp() {
        // "the training data does not necessarily provide values smaller and
        // bigger than the testing set" (paper §5.2.4).
        let mut d = KBinsDiscretizer::new(4);
        d.fit(&[floats(&[0.0, 4.0])]).unwrap();
        let out = d.transform(&[floats(&[-100.0, 100.0])]).unwrap();
        assert_eq!(out[0], vec![Value::Int(0), Value::Int(3)]);
    }

    #[test]
    fn degenerate_range_goes_to_bin_zero() {
        let mut d = KBinsDiscretizer::new(4);
        let out = d.fit_transform(&[floats(&[7.0, 7.0])]).unwrap();
        assert_eq!(out[0], vec![Value::Int(0), Value::Int(0)]);
    }

    #[test]
    fn k_less_than_two_rejected() {
        let mut d = KBinsDiscretizer::new(1);
        assert!(d.fit(&[floats(&[1.0])]).is_err());
    }

    #[test]
    fn matches_sql_formula() {
        let d = {
            let mut d = KBinsDiscretizer::new(4);
            d.fit(&[floats(&[1.0, 2.0, 3.0, 4.0])]).unwrap();
            d
        };
        // Same outputs the engine test produced for Listing 18.
        let bins: Vec<i64> = [1.0, 2.0, 3.0, 4.0]
            .iter()
            .map(|&x| d.bin(x, 1.0, 4.0))
            .collect();
        assert_eq!(bins, vec![0, 1, 2, 3]);
    }
}
