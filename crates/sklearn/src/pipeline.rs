//! The `Transformer` trait and sequential `Pipeline`.

use crate::error::Result;
use etypes::Value;

/// A fit/transform preprocessing step over value columns.
///
/// `fit` learns parameters from the training columns; `transform` applies
/// them (possibly changing the number of columns — one-hot expands, most
/// others map 1:1). The split matters for correctness: "if fitting was
/// performed each time a transformation is applied, the results would not be
/// consistent" (paper §5.2).
pub trait Transformer {
    /// Learn fitting parameters from the given columns.
    fn fit(&mut self, columns: &[Vec<Value>]) -> Result<()>;

    /// Apply the fitted transformation.
    fn transform(&self, columns: &[Vec<Value>]) -> Result<Vec<Vec<Value>>>;

    /// Fit, then transform the same data.
    fn fit_transform(&mut self, columns: &[Vec<Value>]) -> Result<Vec<Vec<Value>>> {
        self.fit(columns)?;
        self.transform(columns)
    }

    /// Human-readable step name for inspection output.
    fn name(&self) -> &'static str;
}

/// A sequential chain of transformers (`sklearn.pipeline.Pipeline` restricted
/// to transformer steps; the final estimator lives outside, as in the paper's
/// end-to-end runs where training happens in Python/Keras).
#[derive(Default)]
pub struct Pipeline {
    steps: Vec<Box<dyn Transformer>>,
}

impl Pipeline {
    /// Empty pipeline.
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    /// Append a step (builder style).
    pub fn then(mut self, step: impl Transformer + 'static) -> Pipeline {
        self.steps.push(Box::new(step));
        self
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The step names, in order.
    pub fn step_names(&self) -> Vec<&'static str> {
        self.steps.iter().map(|s| s.name()).collect()
    }
}

impl Transformer for Pipeline {
    fn fit(&mut self, columns: &[Vec<Value>]) -> Result<()> {
        // Fitting a pipeline transforms through the prefix so each step sees
        // its predecessor's output, as sklearn does.
        let mut current: Vec<Vec<Value>> = columns.to_vec();
        for step in &mut self.steps {
            current = step.fit_transform(&current)?;
        }
        Ok(())
    }

    fn transform(&self, columns: &[Vec<Value>]) -> Result<Vec<Vec<Value>>> {
        let mut current: Vec<Vec<Value>> = columns.to_vec();
        for step in &self.steps {
            current = step.transform(&current)?;
        }
        Ok(current)
    }

    fn name(&self) -> &'static str {
        "pipeline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imputer::{ImputeStrategy, SimpleImputer};
    use crate::onehot::OneHotEncoder;

    #[test]
    fn impute_then_one_hot_composition() {
        // The healthcare featurisation: impute most_frequent, then one-hot.
        let col = vec![
            Value::text("a"),
            Value::Null,
            Value::text("b"),
            Value::text("a"),
        ];
        let mut p = Pipeline::new()
            .then(SimpleImputer::new(ImputeStrategy::MostFrequent))
            .then(OneHotEncoder::new());
        let out = p.fit_transform(&[col]).unwrap();
        // Two categories -> two 0/1 columns.
        assert_eq!(out.len(), 2);
        // Row 1 (the null) imputed to 'a' -> [1, 0].
        assert_eq!(out[0][1], Value::Int(1));
        assert_eq!(out[1][1], Value::Int(0));
    }

    #[test]
    fn transform_reuses_fit_parameters() {
        let train = vec![vec![Value::text("x"), Value::text("x"), Value::text("y")]];
        let test = vec![vec![Value::Null]];
        let mut p = Pipeline::new().then(SimpleImputer::new(ImputeStrategy::MostFrequent));
        p.fit(&train).unwrap();
        let out = p.transform(&test).unwrap();
        // Fill value comes from train ('x'), not from the test set.
        assert_eq!(out[0][0], Value::text("x"));
    }

    #[test]
    fn step_names() {
        let p = Pipeline::new()
            .then(SimpleImputer::new(ImputeStrategy::Mean))
            .then(OneHotEncoder::new());
        assert_eq!(p.step_names(), vec!["simple_imputer", "one_hot_encoder"]);
        assert_eq!(p.len(), 2);
    }
}
