//! Dense row-major `f64` matrix, the feature representation models consume.

use crate::error::{Result, SkError};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Build from dimensions and row-major data.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Result<Matrix> {
        if data.len() != rows * cols {
            return Err(SkError::Shape(format!(
                "data length {} != {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from per-column vectors (all must share a length).
    pub fn from_columns(columns: &[Vec<f64>]) -> Result<Matrix> {
        let cols = columns.len();
        let rows = columns.first().map_or(0, Vec::len);
        for c in columns {
            if c.len() != rows {
                return Err(SkError::Shape("ragged columns".to_string()));
            }
        }
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in columns {
                data.push(c[r]);
            }
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Row count.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Borrow one row.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One cell.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Set one cell.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Horizontally concatenate matrices with equal row counts.
    pub fn hcat(parts: &[Matrix]) -> Result<Matrix> {
        let rows = parts.first().map_or(0, Matrix::nrows);
        for p in parts {
            if p.nrows() != rows {
                return Err(SkError::Shape(format!(
                    "hcat row mismatch: {} vs {rows}",
                    p.nrows()
                )));
            }
        }
        let cols: usize = parts.iter().map(Matrix::ncols).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for p in parts {
                data.extend_from_slice(p.row(r));
            }
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Select a subset of rows (used by train/test splits on matrices).
    pub fn take_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_columns_row_major() {
        let m = Matrix::from_columns(&[vec![1.0, 2.0], vec![10.0, 20.0]]).unwrap();
        assert_eq!(m.row(0), &[1.0, 10.0]);
        assert_eq!(m.row(1), &[2.0, 20.0]);
    }

    #[test]
    fn hcat_concatenates() {
        let a = Matrix::from_columns(&[vec![1.0, 2.0]]).unwrap();
        let b = Matrix::from_columns(&[vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let m = Matrix::hcat(&[a, b]).unwrap();
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.row(1), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn shape_errors() {
        assert!(Matrix::new(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::from_columns(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        let a = Matrix::zeros(1, 1);
        let b = Matrix::zeros(2, 1);
        assert!(Matrix::hcat(&[a, b]).is_err());
    }

    #[test]
    fn take_rows() {
        let m = Matrix::from_columns(&[vec![1.0, 2.0, 3.0]]).unwrap();
        let t = m.take_rows(&[2, 0]);
        assert_eq!(t.row(0), &[3.0]);
        assert_eq!(t.row(1), &[1.0]);
    }
}
