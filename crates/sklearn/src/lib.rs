#![warn(missing_docs)]
//! Scikit-learn semantics in Rust.
//!
//! The paper's pipelines end in scikit-learn preprocessing plus a trainable
//! model (logistic regression, or a Keras neural network for the healthcare
//! and adult-complex pipelines). This crate re-implements exactly the
//! operators those pipelines use, with the same **fit / transform split**
//! the paper's §5.2 stresses: fitting parameters are computed once on the
//! training data and reused for every transform, so train and test sets see
//! identical substitutions.
//!
//! Preprocessing operators work on columns of [`etypes::Value`] so they can
//! run behind both backends (the pandas-like baseline and, via the SQL
//! translation in `mlinspect`, the database engine). Models consume a dense
//! `f64` [`Matrix`].

pub mod binarizer;
pub mod column_transformer;
pub mod discretizer;
pub mod error;
pub mod imputer;
pub mod logreg;
pub mod matrix;
pub mod metrics;
pub mod mlp;
pub mod onehot;
pub mod pipeline;
pub mod scaler;
pub mod split;

pub use binarizer::{label_binarize, Binarizer};
pub use column_transformer::ColumnTransformer;
pub use discretizer::KBinsDiscretizer;
pub use error::{Result, SkError};
pub use imputer::{ImputeStrategy, SimpleImputer};
pub use logreg::LogisticRegression;
pub use matrix::Matrix;
pub use metrics::accuracy;
pub use mlp::MlpClassifier;
pub use onehot::OneHotEncoder;
pub use pipeline::{Pipeline, Transformer};
pub use scaler::StandardScaler;
pub use split::train_test_split;
