//! Logistic regression (the compas/adult-simple classifier).

use crate::error::{Result, SkError};
use crate::matrix::Matrix;
use etypes::Prng;

/// Substream id for the epoch shuffler (distinct from split/MLP streams).
const STREAM_LOGREG: u64 = 2;

/// Binary logistic regression trained with mini-batch SGD.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Learning rate.
    pub learning_rate: f64,
    /// Training epochs.
    pub epochs: usize,
    /// L2 regularization strength.
    pub l2: f64,
    /// RNG seed for shuffling.
    pub seed: u64,
    weights: Vec<f64>,
    bias: f64,
    fitted: bool,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        LogisticRegression::new()
    }
}

impl LogisticRegression {
    /// Defaults comparable to sklearn's (lbfgs is replaced by SGD).
    pub fn new() -> LogisticRegression {
        LogisticRegression {
            learning_rate: 0.1,
            epochs: 100,
            l2: 1e-4,
            seed: 0,
            weights: Vec::new(),
            bias: 0.0,
            fitted: false,
        }
    }

    /// Override the RNG seed (Table 5 runs vary this).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Learned weights (after fit).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Train on features `x` and 0/1 labels `y`.
    pub fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        if x.nrows() != y.len() {
            return Err(SkError::Shape(format!(
                "{} rows vs {} labels",
                x.nrows(),
                y.len()
            )));
        }
        if x.nrows() == 0 {
            return Err(SkError::Invalid("empty training set".into()));
        }
        let d = x.ncols();
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        let mut order: Vec<usize> = (0..x.nrows()).collect();
        let mut rng = Prng::from_stream(self.seed, STREAM_LOGREG);
        for _ in 0..self.epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                let row = x.row(i);
                let p = sigmoid(dot(&self.weights, row) + self.bias);
                let err = p - y[i];
                for (w, &xi) in self.weights.iter_mut().zip(row) {
                    *w -= self.learning_rate * (err * xi + self.l2 * *w);
                }
                self.bias -= self.learning_rate * err;
            }
        }
        self.fitted = true;
        Ok(())
    }

    /// P(class 1) per row.
    pub fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        if !self.fitted {
            return Err(SkError::NotFitted("LogisticRegression"));
        }
        if x.ncols() != self.weights.len() {
            return Err(SkError::Shape(format!(
                "model has {} features, input has {}",
                self.weights.len(),
                x.ncols()
            )));
        }
        Ok((0..x.nrows())
            .map(|i| sigmoid(dot(&self.weights, x.row(i)) + self.bias))
            .collect())
    }

    /// Hard 0/1 predictions.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        Ok(self
            .predict_proba(x)?
            .into_iter()
            .map(|p| (p >= 0.5) as i64 as f64)
            .collect())
    }

    /// Mean accuracy on a labelled set (sklearn `score`).
    pub fn score(&self, x: &Matrix, y: &[f64]) -> Result<f64> {
        let preds = self.predict(x)?;
        Ok(crate::metrics::accuracy(&preds, y))
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearly_separable() -> (Matrix, Vec<f64>) {
        // y = 1 iff x0 > 0.
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(), Vec::new()];
        let mut ys = Vec::new();
        for i in 0..100 {
            let x0 = if i % 2 == 0 { 1.0 } else { -1.0 };
            let jitter = (i as f64 * 0.37).sin() * 0.3;
            cols[0].push(x0 + jitter * 0.1);
            cols[1].push(jitter);
            ys.push((x0 > 0.0) as i64 as f64);
        }
        (Matrix::from_columns(&cols).unwrap(), ys)
    }

    #[test]
    fn learns_linearly_separable_data() {
        let (x, y) = linearly_separable();
        let mut m = LogisticRegression::new();
        m.fit(&x, &y).unwrap();
        assert!(m.score(&x, &y).unwrap() > 0.95);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = linearly_separable();
        let mut a = LogisticRegression::new().with_seed(7);
        let mut b = LogisticRegression::new().with_seed(7);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn errors_on_misuse() {
        let m = LogisticRegression::new();
        assert!(m.predict(&Matrix::zeros(1, 1)).is_err());
        let mut m = LogisticRegression::new();
        assert!(m.fit(&Matrix::zeros(2, 1), &[1.0]).is_err());
        m.fit(&Matrix::zeros(2, 1), &[0.0, 1.0]).unwrap();
        assert!(m.predict(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let (x, y) = linearly_separable();
        let mut m = LogisticRegression::new();
        m.fit(&x, &y).unwrap();
        for p in m.predict_proba(&x).unwrap() {
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
