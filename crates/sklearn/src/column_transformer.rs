//! `ColumnTransformer`: applies different transformers to column subsets and
//! concatenates the results into one feature matrix.

use crate::error::{Result, SkError};
use crate::matrix::Matrix;
use crate::pipeline::Transformer;
use dataframe::DataFrame;
use etypes::Value;

/// One named transformer applied to a set of input columns (sklearn's
/// `(name, transformer, columns)` triple).
pub struct TransformerSpec {
    /// Step name (diagnostics).
    pub name: String,
    /// The transformer (often a [`crate::Pipeline`]).
    pub transformer: Box<dyn Transformer>,
    /// Input column names.
    pub columns: Vec<String>,
}

/// Applies each spec to its columns and horizontally concatenates all outputs
/// (remainder columns are dropped, matching the pipelines' `remainder='drop'`).
#[derive(Default)]
pub struct ColumnTransformer {
    specs: Vec<TransformerSpec>,
    fitted: bool,
}

impl ColumnTransformer {
    /// Empty transformer.
    pub fn new() -> ColumnTransformer {
        ColumnTransformer::default()
    }

    /// Add a named step (builder style).
    pub fn with(
        mut self,
        name: impl Into<String>,
        transformer: impl Transformer + 'static,
        columns: &[&str],
    ) -> ColumnTransformer {
        self.specs.push(TransformerSpec {
            name: name.into(),
            transformer: Box::new(transformer),
            columns: columns.iter().map(|c| c.to_string()).collect(),
        });
        self
    }

    /// Step names in order.
    pub fn step_names(&self) -> Vec<&str> {
        self.specs.iter().map(|s| s.name.as_str()).collect()
    }

    fn gather(&self, df: &DataFrame, spec: &TransformerSpec) -> Result<Vec<Vec<Value>>> {
        spec.columns
            .iter()
            .map(|c| Ok(df.column(c)?.values().to_vec()))
            .collect()
    }

    /// Fit every step on the training frame.
    pub fn fit(&mut self, df: &DataFrame) -> Result<()> {
        // Split borrows: gather needs &self, fit needs &mut spec.
        let inputs: Vec<Vec<Vec<Value>>> = self
            .specs
            .iter()
            .map(|spec| self.gather(df, spec))
            .collect::<Result<Vec<_>>>()?;
        for (spec, cols) in self.specs.iter_mut().zip(&inputs) {
            spec.transformer.fit(cols)?;
        }
        self.fitted = true;
        Ok(())
    }

    /// Transform a frame into the concatenated numeric feature matrix.
    pub fn transform(&self, df: &DataFrame) -> Result<Matrix> {
        if !self.fitted {
            return Err(SkError::NotFitted("ColumnTransformer"));
        }
        let mut parts = Vec::with_capacity(self.specs.len());
        for spec in &self.specs {
            let cols = self.gather(df, spec)?;
            let out = spec.transformer.transform(&cols)?;
            let numeric: Vec<Vec<f64>> = out
                .iter()
                .map(|col| {
                    col.iter()
                        .map(|v| {
                            if v.is_null() {
                                // NaN would poison training; preprocessing
                                // should have imputed. Surface it.
                                Err(SkError::Invalid(format!(
                                    "NULL reached feature matrix in step '{}'",
                                    spec.name
                                )))
                            } else {
                                Ok(v.as_f64()?)
                            }
                        })
                        .collect::<Result<Vec<f64>>>()
                })
                .collect::<Result<Vec<_>>>()?;
            parts.push(Matrix::from_columns(&numeric)?);
        }
        Matrix::hcat(&parts)
    }

    /// Fit and transform the same frame.
    pub fn fit_transform(&mut self, df: &DataFrame) -> Result<Matrix> {
        self.fit(df)?;
        self.transform(df)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imputer::{ImputeStrategy, SimpleImputer};
    use crate::onehot::OneHotEncoder;
    use crate::pipeline::Pipeline;
    use crate::scaler::StandardScaler;
    use dataframe::Series;

    fn frame() -> DataFrame {
        DataFrame::from_columns(vec![
            Series::new(
                "smoker",
                vec!["yes".into(), Value::Null, "no".into(), "yes".into()],
            ),
            Series::new(
                "income",
                vec![
                    Value::Float(100.0),
                    Value::Float(200.0),
                    Value::Float(300.0),
                    Value::Float(400.0),
                ],
            ),
            Series::new("dropped", vec![1.into(), 2.into(), 3.into(), 4.into()]),
        ])
        .unwrap()
    }

    #[test]
    fn healthcare_style_featurisation() {
        let mut ct = ColumnTransformer::new()
            .with(
                "impute_and_one_hot",
                Pipeline::new()
                    .then(SimpleImputer::new(ImputeStrategy::MostFrequent))
                    .then(OneHotEncoder::new()),
                &["smoker"],
            )
            .with("numeric", StandardScaler::new(), &["income"]);
        let m = ct.fit_transform(&frame()).unwrap();
        // smoker one-hot (2 categories) + scaled income = 3 columns.
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nrows(), 4);
        // Row 1's smoker was NULL, imputed to most frequent 'yes' -> [0, 1].
        assert_eq!(m.get(1, 0), 0.0);
        assert_eq!(m.get(1, 1), 1.0);
        // remainder='drop': 'dropped' contributes nothing.
    }

    #[test]
    fn transform_requires_fit() {
        let ct = ColumnTransformer::new().with("s", StandardScaler::new(), &["income"]);
        assert!(matches!(ct.transform(&frame()), Err(SkError::NotFitted(_))));
    }

    #[test]
    fn null_reaching_matrix_is_error() {
        let mut ct = ColumnTransformer::new().with("s", StandardScaler::new(), &["smoker"]);
        // StandardScaler passes NULL through; the matrix conversion rejects.
        let df = DataFrame::from_columns(vec![Series::new(
            "smoker",
            vec![Value::Float(1.0), Value::Null],
        )])
        .unwrap();
        assert!(ct.fit_transform(&df).is_err());
    }

    #[test]
    fn unknown_column_is_error() {
        let mut ct = ColumnTransformer::new().with("s", StandardScaler::new(), &["missing"]);
        assert!(ct.fit(&frame()).is_err());
    }
}
