//! Scoring metrics.

/// Fraction of predictions equal to the labels (sklearn `accuracy_score`).
/// Returns 0 for empty inputs.
pub fn accuracy(predictions: &[f64], labels: &[f64]) -> f64 {
    if predictions.is_empty() || predictions.len() != labels.len() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, y)| (**p - **y).abs() < 1e-9)
        .count();
    correct as f64 / predictions.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_matches() {
        assert_eq!(accuracy(&[1.0, 0.0, 1.0], &[1.0, 1.0, 1.0]), 2.0 / 3.0);
    }

    #[test]
    fn empty_and_mismatched_are_zero() {
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[1.0], &[]), 0.0);
    }

    #[test]
    fn perfect_score() {
        assert_eq!(accuracy(&[0.0, 1.0], &[0.0, 1.0]), 1.0);
    }
}
