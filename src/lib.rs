//! Blue Elephants Inspecting Pandas — Rust reproduction (EDBT 2023).
//!
//! This façade crate re-exports the whole workspace so examples and
//! integration tests can reach every layer through one dependency:
//!
//! - [`mlinspect`] — the paper's contribution: pipeline capture, SQL
//!   transpilation with tuple tracking, and bias inspection.
//! - [`sqlengine`] — the database substrate (PostgreSQL- and Umbra-like
//!   execution profiles).
//! - [`dataframe`] — the pandas-like baseline the paper benchmarks against.
//! - [`sklearn`] — scikit-learn preprocessing + simple trainable models.
//! - [`pyparser`] — the Python-subset parser feeding pipeline capture.
//! - [`datagen`] — synthetic healthcare / compas / adult / taxi datasets.
//! - [`etypes`] — shared scalar values, types and CSV.

pub use dataframe;
pub use datagen;
pub use elephant_server;
pub use etypes;
pub use mlinspect;
pub use pyparser;
pub use sklearn;
pub use sqlengine;
